# Developer entry points.  PYTHONPATH=src is how the repo is run
# everywhere (tests, benches, examples); no install step required.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint fuzz bench-homengine bench-cactus bench-batch bench-decomp bench-semiring bench-store bench-service bench-chaos bench check ci

## tier-1 test suite (the gate every PR must keep green)
test:
	$(PYTHON) -m pytest -x -q

## ruff lint (config in pyproject.toml); degrades to a syntax check
## when ruff is not installed (the offline dev container).  Also
## enforces the configuration architecture: os.environ may only be
## read in core/config.py (EngineConfig.from_env is the single
## env-var ingestion point).
lint: lint-env-gate lint-deprecated-gate
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests scripts benchmarks examples; \
	else \
		echo "ruff not installed; falling back to a compile check"; \
		$(PYTHON) -m compileall -q src tests scripts benchmarks examples; \
	fi

.PHONY: lint-env-gate
lint-env-gate:
	@hits=$$(grep -rnE "os\.environ|os\.getenv|from os import.*environ|getenv" src/repro --include='*.py' | grep -v "^src/repro/core/config\.py:"); \
	if [ -n "$$hits" ]; then \
		echo "env gate: environment read outside core/config.py:"; \
		echo "$$hits"; \
		exit 1; \
	else \
		echo "env gate: ok (environment reads confined to core/config.py)"; \
	fi

## deprecated-name gate: the semiring redesign deprecated the free
## count_homomorphisms() (use _count_homomorphisms internally or
## Session.evaluate(q, d, "count")) and dsirup.evaluate() (renamed
## evaluate_dsirup).  No in-repo caller may use the old names; the
## shims exist for external callers only.  Defining modules and the
## shim tests are the only exemptions.
.PHONY: lint-deprecated-gate
lint-deprecated-gate:
	@hits=$$(grep -rnE "(^|[^.[:alnum:]_])count_homomorphisms\(|[._]dsirup\.evaluate\(|homengine\.count_homomorphisms\(" \
			src tests scripts benchmarks examples --include='*.py' \
		| grep -v "^src/repro/core/homengine\.py:" \
		| grep -v "^src/repro/core/dsirup\.py:" \
		| grep -v "^src/repro/session\.py:" \
		| grep -v "^tests/test_deprecations\.py:"); \
	if [ -n "$$hits" ]; then \
		echo "deprecated-name gate: in-repo use of deprecated APIs:"; \
		echo "$$hits"; \
		exit 1; \
	else \
		echo "deprecated-name gate: ok (no in-repo deprecated calls)"; \
	fi

## differential fuzz smoke: seeded cross-check of all hom backends,
## serial-vs-parallel sharding, and governed-session sanity.  The
## fixed seed makes CI failures replayable locally with the same
## arguments; --seconds caps the job even on throttled runners.  The
## second leg reruns with the durable store enabled, cross-checking
## disk-replayed answers against the in-memory path and ending with a
## full checksum sweep.
fuzz:
	$(PYTHON) scripts/fuzz_differential.py --seed 0 --cases 2000 --seconds 25
	rm -rf /tmp/repro-fuzz-store
	$(PYTHON) scripts/fuzz_differential.py --seed 7 --cases 500 --seconds 15 \
		--cache-dir /tmp/repro-fuzz-store

## hom-engine backend comparison (naive vs bitset); writes BENCH_homengine.json
bench-homengine:
	$(PYTHON) scripts/bench_homengine.py

## incremental vs from-scratch cactus construction; writes BENCH_cactus.json
bench-cactus:
	$(PYTHON) scripts/bench_cactus.py

## matrix backend + sharded batch runtime; writes BENCH_batch.json
bench-batch:
	$(PYTHON) scripts/bench_batch.py

## decomp backend + delta warm-started probe; writes BENCH_decomp.json
bench-decomp:
	$(PYTHON) scripts/bench_decomp.py

## semiring surface: COUNT-via-decomp overhead + PROB matvec speedup;
## writes BENCH_semiring.json
bench-semiring:
	$(PYTHON) scripts/bench_semiring.py

## durable-store warm restarts across process boundaries; writes
## BENCH_store.json
bench-store:
	$(PYTHON) scripts/bench_store.py

## the job service under concurrent load + kill -9 resume; writes
## BENCH_service.json
bench-service:
	$(PYTHON) scripts/bench_service.py

## the job service under injected faults (worker/server kills, drain,
## bit-flips, cancel storms, poison jobs); writes BENCH_chaos.json
bench-chaos:
	$(PYTHON) scripts/bench_chaos.py

## all experiment benchmarks, default engine configuration
bench:
	$(PYTHON) -m pytest benchmarks -q

## tier-1 tests plus the engine perf criteria
check: test
	$(PYTHON) scripts/bench_homengine.py --check
	$(PYTHON) scripts/bench_cactus.py --check
	$(PYTHON) scripts/bench_batch.py --check
	$(PYTHON) scripts/bench_decomp.py --check
	$(PYTHON) scripts/bench_semiring.py --check
	$(PYTHON) scripts/bench_store.py --check
	$(PYTHON) scripts/bench_service.py --check
	$(PYTHON) scripts/bench_chaos.py --check

## everything the CI workflow runs (tests, lint, fuzz smoke, perf gates)
ci: test lint fuzz
	$(PYTHON) scripts/bench_homengine.py --check --output /tmp/BENCH_homengine.json
	$(PYTHON) scripts/bench_cactus.py --check --output /tmp/BENCH_cactus.json
	$(PYTHON) scripts/bench_batch.py --check --output /tmp/BENCH_batch.json
	$(PYTHON) scripts/bench_decomp.py --check --output /tmp/BENCH_decomp.json
	$(PYTHON) scripts/bench_semiring.py --check --output /tmp/BENCH_semiring.json
	$(PYTHON) scripts/bench_store.py --check --output /tmp/BENCH_store.json
	$(PYTHON) scripts/bench_service.py --check --output /tmp/BENCH_service.json
	$(PYTHON) scripts/bench_chaos.py --check --output /tmp/BENCH_chaos.json
