# Developer entry points.  PYTHONPATH=src is how the repo is run
# everywhere (tests, benches, examples); no install step required.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench-homengine bench check

## tier-1 test suite (the gate every PR must keep green)
test:
	$(PYTHON) -m pytest -x -q

## hom-engine backend comparison (naive vs bitset); writes BENCH_homengine.json
bench-homengine:
	$(PYTHON) scripts/bench_homengine.py

## all experiment benchmarks, default engine configuration
bench:
	$(PYTHON) -m pytest benchmarks -q

## tier-1 tests plus the engine perf criteria
check: test
	$(PYTHON) scripts/bench_homengine.py --check
