"""One-call boundedness decisions, dispatching to the best machinery.

The paper leaves deciding boundedness of general monadic sirups at
2ExpTime-complete, but identifies large fragments with exact, tractable
procedures.  This module routes a query to the strongest decider that
applies:

1. no solitary T nodes: ``K_q`` is finite, trivially bounded;
2. a Lambda-CQ (ditree, solitary Ts incomparable with the focus): the
   exact Theorem 9 decider (FO iff not L-hard);
3. anything else: the depth-bounded Proposition 2 probe, reported with
   its evidence status rather than as a definite answer.

``decide_boundedness`` therefore returns a verdict plus the *method*
that produced it, so callers can distinguish proofs from evidence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .core.boundedness import ProbeResult, Verdict, probe_boundedness
from .core.cq import OneCQ, is_one_cq
from .core.structure import Structure
from .ditree.lambda_cq import LambdaDecision, decide_lambda
from .ditree.structure import DitreeCQ


class Method(enum.Enum):
    """Which decision procedure produced the verdict."""

    TRIVIAL_SPAN_ZERO = "span-0 (finite expansion set)"
    LAMBDA_EXACT = "Theorem 9 exact Lambda-CQ decider"
    PROBE = "Proposition 2 depth-bounded probe"


@dataclass(frozen=True)
class BoundednessDecision:
    """Outcome of :func:`decide_boundedness`.

    ``bounded`` is None when only inconclusive probe evidence exists.
    ``exact`` tells whether the verdict is a proof (the span-0 and
    Lambda cases) or probe evidence.
    """

    bounded: bool | None
    method: Method
    exact: bool
    lambda_decision: LambdaDecision | None = None
    probe: ProbeResult | None = None

    def describe(self) -> str:
        if self.bounded is None:
            status = "inconclusive"
        elif self.bounded:
            status = "bounded (FO-rewritable)"
        else:
            status = "unbounded (L-hard for Lambda-CQs)"
        certainty = "exact" if self.exact else "evidence"
        return f"{status} [{certainty}; {self.method.value}]"


def _is_lambda(one_cq: OneCQ) -> bool:
    try:
        cq = DitreeCQ.from_structure(one_cq.query)
    except ValueError:
        return False
    return cq.is_lambda_cq()


def decide_boundedness(
    q: Structure | OneCQ,
    probe_depth: int = 3,
    session=None,
) -> BoundednessDecision:
    """Decide (or probe) boundedness of ``(Pi_q, G)`` for a 1-CQ ``q``.

    Raises :class:`ValueError` when ``q`` is not a 1-CQ; use the d-sirup
    evaluators directly for multi-F queries (their boundedness is not
    covered by the paper's positive results).
    """
    one_cq = q if isinstance(q, OneCQ) else OneCQ.from_structure(q)
    if one_cq.span == 0:
        return BoundednessDecision(
            bounded=True, method=Method.TRIVIAL_SPAN_ZERO, exact=True
        )
    if _is_lambda(one_cq):
        # The decider's hom checks and interned segment copies run in
        # the calling session (PR 4 leftover closed: reached through
        # Session.decide_boundedness they now fill *that* session's
        # caches, not the default session's).
        decision = decide_lambda(one_cq, session=session)
        return BoundednessDecision(
            bounded=decision.fo_rewritable,
            method=Method.LAMBDA_EXACT,
            exact=True,
            lambda_decision=decision,
        )
    # The probe draws its cactuses from the query's pooled incremental
    # factory, shared with whatever the caller does next (rewriting
    # extraction, re-probing deeper).
    probe = probe_boundedness(one_cq, probe_depth, session=session)
    if probe.verdict is Verdict.BOUNDED:
        bounded: bool | None = True
    elif probe.verdict is Verdict.UNBOUNDED_EVIDENCE:
        bounded = False
    else:
        bounded = None
    return BoundednessDecision(
        bounded=bounded, method=Method.PROBE, exact=False, probe=probe
    )


def is_d_sirup_fo_rewritable(
    q: Structure, probe_depth: int = 3, session=None
) -> bool | None:
    """Convenience wrapper for d-sirups with a 1-CQ ``q``.

    For 1-CQs, FO-rewritability of ``(Delta_q, G)`` coincides with
    boundedness of ``(Pi_q, G)`` (Sec. 2); returns None when only
    inconclusive probe evidence is available.
    """
    if not is_one_cq(q):
        raise ValueError(
            "only 1-CQs are supported; general d-sirups are open territory"
        )
    return decide_boundedness(q, probe_depth, session).bounded
