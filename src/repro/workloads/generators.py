"""Deterministic workload generators for tests and benchmarks.

Everything takes an explicit ``seed`` so experiment tables are
reproducible run to run.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..core.cq import solitary_f_nodes, solitary_t_nodes
from ..core.structure import A, F, Structure, StructureBuilder, T


def random_instance(
    n: int,
    edge_count: int,
    seed: int,
    label_weights: dict[str, int] | None = None,
    preds: tuple[str, ...] = ("R",),
) -> Structure:
    """A random labelled digraph data instance.

    ``label_weights`` gives relative weights for node labels among
    ``T``, ``F``, ``A``, ``FT`` and ``""`` (no label).
    """
    rng = random.Random(seed)
    weights = label_weights or {"T": 2, "F": 2, "A": 3, "": 3, "FT": 1}
    population = [lab for lab, w in weights.items() for _ in range(w)]
    b = StructureBuilder()
    for i in range(n):
        label = rng.choice(population)
        if label == "FT":
            b.add_node(i, F, T)
        elif label:
            b.add_node(i, label)
        else:
            b.add_node(i)
    for _ in range(edge_count):
        b.add_edge(rng.randrange(n), rng.randrange(n), rng.choice(preds))
    return b.build()


def instance_family(
    count: int,
    n: int,
    edge_count: int,
    seed: int,
    label_weights: dict[str, int] | None = None,
    preds: tuple[str, ...] = ("R",),
) -> list[Structure]:
    """A reproducible family of random instances — the batch-evaluation
    workload shape consumed by
    :func:`repro.core.boundedness.ucq_certain_answers` (one query
    screened over many instances)."""
    return [
        random_instance(
            n, edge_count, seed * 60013 + i, label_weights, preds
        )
        for i in range(count)
    ]


def block_dag_instance(n: int, block: int, seed: int) -> Structure:
    """A DAG of disjoint ``block``-node chains with random forward
    shortcuts inside each block.

    Its longest directed walk has ``block - 1`` edges, so an unlabelled
    path query longer than that is unsatisfiable — but refuting it
    takes a full arc-consistency pass over near-full domains (no labels
    to prune on).  This is the adversarial counterpart of
    :func:`random_instance` for benchmarking the hom engine's
    propagation machinery (``scripts/bench_batch.py``) and for building
    ``covers_any`` batches that can never early-exit.
    """
    rng = random.Random(seed)
    b = StructureBuilder()
    for i in range(n):
        b.add_node(i)
    if block < 2:
        return b.build()  # walk length 0: an edge-free instance
    for start in range(0, n - block + 1, block):
        for i in range(block - 1):
            b.add_edge(start + i, start + i + 1)
        for _ in range(block):
            lo = rng.randrange(block - 1)
            hi = rng.randrange(lo + 1, block)
            b.add_edge(start + lo, start + hi)
    return b.build()


def random_path_instance(n: int, seed: int, a_fraction: float = 0.4) -> Structure:
    """A path-shaped instance with F at the left end, T at the right and
    a random mixture of A/blank labels inside — the shape that exercises
    the d-sirup case distinction."""
    rng = random.Random(seed)
    labels: list[str] = []
    for i in range(n):
        if i == 0:
            labels.append(F)
        elif i == n - 1:
            labels.append(T)
        elif rng.random() < a_fraction:
            labels.append(A)
        else:
            labels.append("")
    b = StructureBuilder()
    for i, lab in enumerate(labels):
        if lab:
            b.add_node(i, lab)
        else:
            b.add_node(i)
    for i in range(n - 1):
        b.add_edge(i, i + 1)
    return b.build()


def random_ditree_cq(
    n: int,
    seed: int,
    twin_weight: int = 2,
    force_one_f_one_t: bool = True,
) -> Structure | None:
    """A random ditree CQ; with ``force_one_f_one_t`` it has exactly one
    solitary F and one solitary T (the Theorem 11 fragment); returns
    ``None`` when the draw degenerates."""
    rng = random.Random(seed)
    parents = {i: rng.randrange(i) for i in range(1, n)}
    weights = {"": 3, "FT": twin_weight}
    population = [lab for lab, w in weights.items() for _ in range(w)]
    labels = {i: rng.choice(population) for i in range(n)}
    if force_one_f_one_t:
        nodes = list(range(n))
        rng.shuffle(nodes)
        labels[nodes[0]] = F
        labels[nodes[1]] = T
    b = StructureBuilder()
    for i in range(n):
        lab = labels[i]
        if lab == "FT":
            b.add_node(i, F, T)
        elif lab:
            b.add_node(i, lab)
        else:
            b.add_node(i)
    for i, parent in parents.items():
        b.add_edge(parent, i)
    q = b.build()
    if force_one_f_one_t:
        if len(solitary_f_nodes(q)) != 1 or len(solitary_t_nodes(q)) != 1:
            return None
    return q


def random_lambda_cq(n: int, seed: int, span: int = 1) -> Structure | None:
    """A random Λ-CQ: ditree, one solitary F, ``span`` solitary Ts, all
    ≺-incomparable with the F node; ``None`` when the draw degenerates."""
    rng = random.Random(seed)
    parents = {i: rng.randrange(i) for i in range(1, n)}

    def ancestors(i: int) -> set[int]:
        out: set[int] = set()
        while i in parents:
            i = parents[i]
            out.add(i)
        return out

    candidates = list(range(1, n))
    rng.shuffle(candidates)
    f_node = None
    t_nodes: list[int] = []
    for i in candidates:
        if f_node is None:
            f_node = i
            continue
        if f_node not in ancestors(i) and i not in ancestors(f_node):
            t_nodes.append(i)
        if len(t_nodes) == span:
            break
    if f_node is None or len(t_nodes) < span:
        return None
    labels = {i: rng.choice(["", "FT", "FT", ""]) for i in range(n)}
    labels[f_node] = F
    for t in t_nodes:
        labels[t] = T
    b = StructureBuilder()
    for i in range(n):
        lab = labels[i]
        if lab == "FT":
            b.add_node(i, F, T)
        elif lab:
            b.add_node(i, lab)
        else:
            b.add_node(i)
    for i, parent in parents.items():
        b.add_edge(parent, i)
    q = b.build()
    if len(solitary_f_nodes(q)) != 1 or len(solitary_t_nodes(q)) != span:
        return None
    return q


def iter_lambda_cqs(
    count: int, size: int, seed: int, span: int = 1
) -> Iterator[Structure]:
    """Up to ``count`` valid random Λ-CQs (skipping degenerate draws)."""
    produced = 0
    attempt = 0
    while produced < count and attempt < count * 50:
        q = random_lambda_cq(size, seed * 100003 + attempt, span)
        attempt += 1
        if q is not None:
            produced += 1
            yield q
