"""Deterministic workload generators for tests and benchmarks.

Everything takes an explicit ``seed`` so experiment tables are
reproducible run to run.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..core.cq import solitary_f_nodes, solitary_t_nodes
from ..core.structure import A, F, Structure, StructureBuilder, T


def random_instance(
    n: int,
    edge_count: int,
    seed: int,
    label_weights: dict[str, int] | None = None,
    preds: tuple[str, ...] = ("R",),
) -> Structure:
    """A random labelled digraph data instance.

    ``label_weights`` gives relative weights for node labels among
    ``T``, ``F``, ``A``, ``FT`` and ``""`` (no label).
    """
    rng = random.Random(seed)
    weights = label_weights or {"T": 2, "F": 2, "A": 3, "": 3, "FT": 1}
    population = [lab for lab, w in weights.items() for _ in range(w)]
    b = StructureBuilder()
    for i in range(n):
        label = rng.choice(population)
        if label == "FT":
            b.add_node(i, F, T)
        elif label:
            b.add_node(i, label)
        else:
            b.add_node(i)
    for _ in range(edge_count):
        b.add_edge(rng.randrange(n), rng.randrange(n), rng.choice(preds))
    return b.build()


def instance_family(
    count: int,
    n: int,
    edge_count: int,
    seed: int,
    label_weights: dict[str, int] | None = None,
    preds: tuple[str, ...] = ("R",),
) -> list[Structure]:
    """A reproducible family of random instances — the batch-evaluation
    workload shape consumed by
    :func:`repro.core.boundedness.ucq_certain_answers` (one query
    screened over many instances)."""
    return [
        random_instance(
            n, edge_count, seed * 60013 + i, label_weights, preds
        )
        for i in range(count)
    ]


def block_dag_instance(n: int, block: int, seed: int) -> Structure:
    """A DAG of disjoint ``block``-node chains with random forward
    shortcuts inside each block.

    Its longest directed walk has ``block - 1`` edges, so an unlabelled
    path query longer than that is unsatisfiable — but refuting it
    takes a full arc-consistency pass over near-full domains (no labels
    to prune on).  This is the adversarial counterpart of
    :func:`random_instance` for benchmarking the hom engine's
    propagation machinery (``scripts/bench_batch.py``) and for building
    ``covers_any`` batches that can never early-exit.
    """
    rng = random.Random(seed)
    b = StructureBuilder()
    for i in range(n):
        b.add_node(i)
    if block < 2:
        return b.build()  # walk length 0: an edge-free instance
    for start in range(0, n - block + 1, block):
        for i in range(block - 1):
            b.add_edge(start + i, start + i + 1)
        for _ in range(block):
            lo = rng.randrange(block - 1)
            hi = rng.randrange(lo + 1, block)
            b.add_edge(start + lo, start + hi)
    return b.build()


def random_path_instance(n: int, seed: int, a_fraction: float = 0.4) -> Structure:
    """A path-shaped instance with F at the left end, T at the right and
    a random mixture of A/blank labels inside — the shape that exercises
    the d-sirup case distinction."""
    rng = random.Random(seed)
    labels: list[str] = []
    for i in range(n):
        if i == 0:
            labels.append(F)
        elif i == n - 1:
            labels.append(T)
        elif rng.random() < a_fraction:
            labels.append(A)
        else:
            labels.append("")
    b = StructureBuilder()
    for i, lab in enumerate(labels):
        if lab:
            b.add_node(i, lab)
        else:
            b.add_node(i)
    for i in range(n - 1):
        b.add_edge(i, i + 1)
    return b.build()


def random_ditree_cq(
    n: int,
    seed: int,
    twin_weight: int = 2,
    force_one_f_one_t: bool = True,
) -> Structure | None:
    """A random ditree CQ; with ``force_one_f_one_t`` it has exactly one
    solitary F and one solitary T (the Theorem 11 fragment); returns
    ``None`` when the draw degenerates."""
    rng = random.Random(seed)
    parents = {i: rng.randrange(i) for i in range(1, n)}
    weights = {"": 3, "FT": twin_weight}
    population = [lab for lab, w in weights.items() for _ in range(w)]
    labels = {i: rng.choice(population) for i in range(n)}
    if force_one_f_one_t:
        nodes = list(range(n))
        rng.shuffle(nodes)
        labels[nodes[0]] = F
        labels[nodes[1]] = T
    b = StructureBuilder()
    for i in range(n):
        lab = labels[i]
        if lab == "FT":
            b.add_node(i, F, T)
        elif lab:
            b.add_node(i, lab)
        else:
            b.add_node(i)
    for i, parent in parents.items():
        b.add_edge(parent, i)
    q = b.build()
    if force_one_f_one_t:
        if len(solitary_f_nodes(q)) != 1 or len(solitary_t_nodes(q)) != 1:
            return None
    return q


def random_ktree_cq(
    n: int,
    seed: int,
    width: int = 3,
    preds: tuple[str, ...] = ("R",),
) -> Structure:
    """A hostile high-treewidth CQ: a randomly oriented partial
    ``width``-tree.

    Built by the textbook k-tree construction — start from a
    ``(width + 1)``-clique, then attach each new node to all members of
    a randomly chosen existing ``width``-clique — so the underlying
    graph has treewidth exactly ``width``; every edge gets a random
    orientation and predicate.  For ``width >= 3`` this lands the
    query squarely past the decomp backend's exact-decomposition range
    ("an upper bound above 2, exact below"), forcing the min-fill
    fallback heuristic and giving every backtracking backend dense,
    cyclic constraint structure with no tree shortcut.  One solitary F
    and one solitary T (on distinct nodes) keep it a well-formed
    sirup body.
    """
    if n < width + 1:
        n = width + 1
    rng = random.Random(seed)
    b = StructureBuilder()
    f_node, t_node = rng.sample(range(n), 2)
    for i in range(n):
        if i == f_node:
            b.add_node(i, F)
        elif i == t_node:
            b.add_node(i, T)
        else:
            b.add_node(i)

    def orient(u: int, v: int) -> None:
        if rng.random() < 0.5:
            u, v = v, u
        b.add_edge(u, v, rng.choice(preds))

    base = list(range(width + 1))
    for ai in range(len(base)):
        for bi in range(ai + 1, len(base)):
            orient(base[ai], base[bi])
    # Every width-subset of the initial clique is a clique to grow from.
    cliques: list[tuple[int, ...]] = [
        tuple(c for c in base if c != drop) for drop in base
    ]
    for i in range(width + 1, n):
        attach = rng.choice(cliques)
        for v in attach:
            orient(v, i)
        # The new node forms a fresh width-clique with each
        # (width-1)-subset of its attachment clique.
        for drop in attach:
            cliques.append(
                tuple(c for c in attach if c != drop) + (i,)
            )
    return b.build()


def dense_multigraph_instance(
    n: int,
    seed: int,
    preds: tuple[str, ...] = ("R", "S"),
    density: float = 6.0,
    label_weights: dict[str, int] | None = None,
) -> Structure:
    """A hostile dense, high-multiplicity data instance.

    Draws ``~density * n`` node pairs and gives each a random
    *non-empty subset* of ``preds`` (parallel edges under different
    predicates — the multiplicity), plus a sprinkling of self-loops.
    High edge density keeps per-variable domains large through AC-3
    (little to prune), and multi-predicate parallel edges defeat
    single-relation index tricks — the worst-case traffic shape for
    the backtracking backends and the matrix backend's dense home
    turf.
    """
    rng = random.Random(seed)
    weights = label_weights or {"T": 2, "F": 2, "A": 3, "": 3, "FT": 1}
    population = [lab for lab, w in weights.items() for _ in range(w)]
    b = StructureBuilder()
    for i in range(n):
        label = rng.choice(population)
        if label == "FT":
            b.add_node(i, F, T)
        elif label:
            b.add_node(i, label)
        else:
            b.add_node(i)
    for _ in range(int(density * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        chosen = [p for p in preds if rng.random() < 0.6] or [
            rng.choice(preds)
        ]
        for p in chosen:
            b.add_edge(u, v, p)
    for _ in range(max(1, n // 8)):
        u = rng.randrange(n)
        b.add_edge(u, u, rng.choice(preds))
    return b.build()


def hostile_family(
    count: int,
    n: int,
    seed: int,
    preds: tuple[str, ...] = ("R", "S"),
    density: float = 6.0,
) -> list[Structure]:
    """A reproducible family of :func:`dense_multigraph_instance`
    targets (the hostile counterpart of :func:`instance_family`)."""
    return [
        dense_multigraph_instance(n, seed * 71993 + i, preds, density)
        for i in range(count)
    ]


def random_lambda_cq(n: int, seed: int, span: int = 1) -> Structure | None:
    """A random Λ-CQ: ditree, one solitary F, ``span`` solitary Ts, all
    ≺-incomparable with the F node; ``None`` when the draw degenerates."""
    rng = random.Random(seed)
    parents = {i: rng.randrange(i) for i in range(1, n)}

    def ancestors(i: int) -> set[int]:
        out: set[int] = set()
        while i in parents:
            i = parents[i]
            out.add(i)
        return out

    candidates = list(range(1, n))
    rng.shuffle(candidates)
    f_node = None
    t_nodes: list[int] = []
    for i in candidates:
        if f_node is None:
            f_node = i
            continue
        if f_node not in ancestors(i) and i not in ancestors(f_node):
            t_nodes.append(i)
        if len(t_nodes) == span:
            break
    if f_node is None or len(t_nodes) < span:
        return None
    labels = {i: rng.choice(["", "FT", "FT", ""]) for i in range(n)}
    labels[f_node] = F
    for t in t_nodes:
        labels[t] = T
    b = StructureBuilder()
    for i in range(n):
        lab = labels[i]
        if lab == "FT":
            b.add_node(i, F, T)
        elif lab:
            b.add_node(i, lab)
        else:
            b.add_node(i)
    for i, parent in parents.items():
        b.add_edge(parent, i)
    q = b.build()
    if len(solitary_f_nodes(q)) != 1 or len(solitary_t_nodes(q)) != span:
        return None
    return q


def iter_lambda_cqs(
    count: int, size: int, seed: int, span: int = 1
) -> Iterator[Structure]:
    """Up to ``count`` valid random Λ-CQs (skipping degenerate draws)."""
    produced = 0
    attempt = 0
    while produced < count and attempt < count * 50:
        q = random_lambda_cq(size, seed * 100003 + attempt, span)
        attempt += 1
        if q is not None:
            produced += 1
            yield q
