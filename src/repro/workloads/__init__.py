"""Reproducible workload generators for tests and benchmarks."""

from .generators import (
    block_dag_instance,
    instance_family,
    iter_lambda_cqs,
    random_ditree_cq,
    random_instance,
    random_lambda_cq,
    random_path_instance,
)

__all__ = [
    "block_dag_instance",
    "instance_family",
    "iter_lambda_cqs",
    "random_ditree_cq",
    "random_instance",
    "random_lambda_cq",
    "random_path_instance",
]
