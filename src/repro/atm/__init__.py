"""Alternating Turing machines and the Theorem 3 construction.

This subpackage implements the machinery of Section 3 of the paper:

* :mod:`repro.atm.machine` -- alternating Turing machines, configurations,
  the full computation space ``T_{M,w}`` and computation trees;
* :mod:`repro.atm.params` -- the bit-level encoding parameters (``d``,
  ``p``, ``n_Q``, ``n_Gamma``) and configuration (de)serialisation;
* :mod:`repro.atm.encoding` -- 01-trees, configuration trees ``gamma_c``,
  the trees ``beta_T`` / ``beta^+_T``, ideal and desired trees, ``M``-cuts
  and the node-correctness predicates of Claim 4.1;
* :mod:`repro.atm.reduction` -- the polynomial-size 1-CQ ``q`` built from
  an ATM and an input word (base block, gadget frames, gate gadgets,
  input and gathering blocks).
"""

from .machine import (
    ATM,
    Action,
    ComputationTree,
    Configuration,
    accepts,
    computation_space,
    find_accepting_tree,
    initial_configuration,
    iter_computation_trees,
    successors,
    toy_accept_machine,
    toy_alternation_machine,
    toy_reject_machine,
)
from .params import (
    EncodingParams,
    decode_configuration,
    encode_configuration,
)
from .encoding import (
    ZeroOneTree,
    beta_tree,
    beta_plus_cut,
    desired_tree_cut,
    gamma_tree,
    incorrect_nodes,
    is_correct,
    node_correctness_report,
    suffix_decomposition,
)
from .reduction import (
    GadgetSpec,
    ReductionResult,
    build_query,
    gadget_inventory,
    segment_verdict,
    skeleton_boundedness_semantics,
)

__all__ = [
    "ATM",
    "Action",
    "ComputationTree",
    "Configuration",
    "EncodingParams",
    "GadgetSpec",
    "ReductionResult",
    "ZeroOneTree",
    "accepts",
    "beta_plus_cut",
    "beta_tree",
    "build_query",
    "computation_space",
    "decode_configuration",
    "desired_tree_cut",
    "encode_configuration",
    "find_accepting_tree",
    "gadget_inventory",
    "gamma_tree",
    "incorrect_nodes",
    "initial_configuration",
    "is_correct",
    "iter_computation_trees",
    "node_correctness_report",
    "segment_verdict",
    "skeleton_boundedness_semantics",
    "successors",
    "suffix_decomposition",
    "toy_accept_machine",
    "toy_alternation_machine",
    "toy_reject_machine",
]
