"""Alternating Turing machines with binary branching.

The Theorem 3 reduction starts from an ATM ``M`` deciding a language in
``AExpSpace = 2ExpTime``.  The paper assumes a normal form which we adopt
verbatim:

* ``q_init``, ``q_accept`` and ``q_reject`` are OR-states;
* every non-halting configuration has exactly two successors;
* AND- and OR-configurations strictly alternate along every branch;
* halting configurations repeat forever (modelled by ``beta^+`` trees).

A *computation tree* keeps exactly one child of every OR-configuration
and both children of every AND-configuration; it is rejecting iff it
contains a ``q_reject`` leaf.  ``M`` rejects ``w`` iff every computation
tree is rejecting.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, Mapping, Sequence

OR = "or"
AND = "and"

#: Tape head movements: left, stay, right.
LEFT, STAY, RIGHT = -1, 0, 1


@dataclass(frozen=True)
class Action:
    """One branch of the transition function: write, move, switch state."""

    new_state: str
    write: str
    move: int

    def __post_init__(self) -> None:
        if self.move not in (LEFT, STAY, RIGHT):
            raise ValueError(f"move must be -1, 0 or 1, got {self.move}")


@dataclass(frozen=True)
class ATM:
    """An alternating Turing machine in the paper's normal form.

    ``delta`` maps ``(state, symbol)`` to exactly two actions (the 0- and
    1-branch).  States absent from ``delta``'s domain for every symbol are
    halting; only ``q_accept`` and ``q_reject`` may halt.
    """

    states: tuple[str, ...]
    alphabet: tuple[str, ...]
    blank: str
    delta: Mapping[tuple[str, str], tuple[Action, Action]]
    mode: Mapping[str, str]
    q_init: str
    q_accept: str
    q_reject: str

    def __post_init__(self) -> None:
        if self.blank not in self.alphabet:
            raise ValueError("blank symbol must be in the alphabet")
        for q in (self.q_init, self.q_accept, self.q_reject):
            if q not in self.states:
                raise ValueError(f"distinguished state {q!r} not in states")
            if self.mode.get(q) != OR:
                raise ValueError(f"state {q!r} must be an OR-state")
        for state in self.states:
            if self.mode.get(state) not in (OR, AND):
                raise ValueError(f"state {state!r} has no OR/AND mode")
        for (state, symbol), branches in self.delta.items():
            if state in (self.q_accept, self.q_reject):
                raise ValueError("halting states cannot have transitions")
            if state not in self.states or symbol not in self.alphabet:
                raise ValueError(f"bad transition key ({state!r}, {symbol!r})")
            if len(branches) != 2:
                raise ValueError("binary branching requires exactly 2 actions")
            for action in branches:
                if action.new_state not in self.states:
                    raise ValueError(f"unknown target state {action.new_state!r}")
                if action.write not in self.alphabet:
                    raise ValueError(f"unknown write symbol {action.write!r}")
                if self.mode[action.new_state] == self.mode[state]:
                    if action.new_state not in (self.q_accept, self.q_reject):
                        raise ValueError(
                            "AND/OR modes must alternate along transitions "
                            f"({state!r} -> {action.new_state!r})"
                        )

    def is_halting(self, state: str) -> bool:
        return state in (self.q_accept, self.q_reject)

    def branches(self, state: str, symbol: str) -> tuple[Action, Action] | None:
        """The two actions for ``(state, symbol)``, or None if halting."""
        if self.is_halting(state):
            return None
        try:
            return self.delta[(state, symbol)]
        except KeyError:
            raise ValueError(
                f"no transition for non-halting ({state!r}, {symbol!r})"
            ) from None

    def describe(self) -> str:
        lines = [
            f"ATM with {len(self.states)} states over {len(self.alphabet)} "
            f"symbols (init={self.q_init}, accept={self.q_accept}, "
            f"reject={self.q_reject})"
        ]
        for (state, symbol), (a0, a1) in sorted(self.delta.items()):
            lines.append(
                f"  delta({state}, {symbol}) = "
                f"[{a0.new_state}/{a0.write}/{a0.move:+d}, "
                f"{a1.new_state}/{a1.write}/{a1.move:+d}]"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class Configuration:
    """A machine configuration: state, head position, full tape content."""

    state: str
    head: int
    tape: tuple[str, ...]

    def __post_init__(self) -> None:
        if not 0 <= self.head < len(self.tape):
            raise ValueError(
                f"head {self.head} out of tape range 0..{len(self.tape) - 1}"
            )

    @property
    def scanned(self) -> str:
        return self.tape[self.head]

    def write_and_move(self, action: Action) -> "Configuration":
        """The configuration after applying one action (head clamped)."""
        tape = list(self.tape)
        tape[self.head] = action.write
        head = min(max(self.head + action.move, 0), len(tape) - 1)
        return Configuration(action.new_state, head, tuple(tape))

    def describe(self) -> str:
        cells = [
            f"[{sym}]" if i == self.head else f" {sym} "
            for i, sym in enumerate(self.tape)
        ]
        return f"{self.state}: {''.join(cells)}"


def initial_configuration(machine: ATM, word: Sequence[str], cells: int) -> Configuration:
    """``c_init(w)``: state ``q_init``, head on cell 0, ``w`` then blanks."""
    if len(word) > cells:
        raise ValueError(f"word of length {len(word)} exceeds {cells} cells")
    for symbol in word:
        if symbol not in machine.alphabet:
            raise ValueError(f"input symbol {symbol!r} not in alphabet")
    tape = tuple(word) + (machine.blank,) * (cells - len(word))
    return Configuration(machine.q_init, 0, tape)


def successors(machine: ATM, config: Configuration) -> tuple[Configuration, ...]:
    """The 0- and 1-successor configurations (empty tuple when halting)."""
    branches = machine.branches(config.state, config.scanned)
    if branches is None:
        return ()
    return tuple(config.write_and_move(action) for action in branches)


@dataclass(frozen=True)
class SpaceNode:
    """A node of the full computation space ``T_{M,w}``."""

    config: Configuration
    children: tuple["SpaceNode", ...]

    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    def count(self) -> int:
        return 1 + sum(child.count() for child in self.children)


def computation_space(
    machine: ATM,
    word: Sequence[str],
    cells: int,
    max_depth: int,
) -> SpaceNode:
    """The full computation space ``T_{M,w}`` truncated at ``max_depth``.

    Non-halting nodes at the depth limit are kept as leaves; callers that
    need a complete space should pick ``max_depth`` past the machine's
    halting horizon (toy machines halt within a handful of steps).
    """

    def expand(config: Configuration, budget: int) -> SpaceNode:
        if budget == 0:
            return SpaceNode(config, ())
        kids = successors(machine, config)
        return SpaceNode(config, tuple(expand(c, budget - 1) for c in kids))

    return expand(initial_configuration(machine, word, cells), max_depth)


# ---------------------------------------------------------------------------
# Computation trees: one child per OR node, both children per AND node.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ComputationTree:
    """A computation tree of ``M`` on ``w`` (a pruned computation space)."""

    config: Configuration
    # For an OR node: ((choice, subtree),); for an AND node: both subtrees
    # keyed 0 and 1; for a halting leaf: empty.
    children: tuple[tuple[int, "ComputationTree"], ...]

    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(sub.depth() for _, sub in self.children)

    def leaves(self) -> Iterator[Configuration]:
        if not self.children:
            yield self.config
            return
        for _, sub in self.children:
            yield from sub.leaves()

    def is_rejecting(self, machine: ATM) -> bool:
        """True iff some leaf is a ``q_reject`` configuration."""
        return any(leaf.state == machine.q_reject for leaf in self.leaves())

    def or_configurations(self) -> Iterator[Configuration]:
        """All OR-configurations of the tree, in preorder.

        Assumes the root is an OR node and modes alternate, so OR nodes
        sit at even depths.
        """
        yield self.config
        for _, and_node in self.children:
            for _, or_node in and_node.children:
                yield from or_node.or_configurations()

    def count(self) -> int:
        return 1 + sum(sub.count() for _, sub in self.children)


def iter_computation_trees(
    machine: ATM,
    word: Sequence[str],
    cells: int,
    max_depth: int,
    limit: int | None = None,
) -> Iterator[ComputationTree]:
    """Enumerate computation trees of ``M`` on ``w`` (toy sizes only).

    Trees whose branches do not halt within ``max_depth`` are skipped,
    so with a large enough ``max_depth`` this is the complete set.
    """

    def expand(config: Configuration, budget: int) -> Iterator[ComputationTree]:
        kids = successors(machine, config)
        if not kids:
            yield ComputationTree(config, ())
            return
        if budget == 0:
            return
        if machine.mode[config.state] == OR:
            for choice, child in enumerate(kids):
                for sub in expand(child, budget - 1):
                    yield ComputationTree(config, ((choice, sub),))
        else:
            subs0 = list(expand(kids[0], budget - 1))
            subs1 = list(expand(kids[1], budget - 1))
            for sub0, sub1 in itertools.product(subs0, subs1):
                yield ComputationTree(config, ((0, sub0), (1, sub1)))

    start = initial_configuration(machine, word, cells)
    trees = expand(start, max_depth)
    if limit is not None:
        trees = itertools.islice(trees, limit)
    yield from trees


def find_accepting_tree(
    machine: ATM,
    word: Sequence[str],
    cells: int,
    max_depth: int,
) -> ComputationTree | None:
    """An accepting computation tree, or None if ``M`` rejects ``w``.

    Works top-down with memoisation instead of enumerating all trees, so
    it scales beyond :func:`iter_computation_trees`.
    """

    @lru_cache(maxsize=None)
    def solve(config: Configuration, budget: int) -> ComputationTree | None:
        kids = successors(machine, config)
        if not kids:
            if config.state == machine.q_accept:
                return ComputationTree(config, ())
            return None
        if budget == 0:
            return None
        if machine.mode[config.state] == OR:
            for choice, child in enumerate(kids):
                sub = solve(child, budget - 1)
                if sub is not None:
                    return ComputationTree(config, ((choice, sub),))
            return None
        sub0 = solve(kids[0], budget - 1)
        if sub0 is None:
            return None
        sub1 = solve(kids[1], budget - 1)
        if sub1 is None:
            return None
        return ComputationTree(config, ((0, sub0), (1, sub1)))

    start = initial_configuration(machine, word, cells)
    result = solve(start, max_depth)
    solve.cache_clear()
    return result


def accepts(machine: ATM, word: Sequence[str], cells: int, max_depth: int) -> bool:
    """True iff ``M`` accepts ``w`` within the given space/depth budget."""
    return find_accepting_tree(machine, word, cells, max_depth) is not None


# ---------------------------------------------------------------------------
# Toy machines used by tests, examples and benchmarks.
# ---------------------------------------------------------------------------


def _round_trip_states(prefix: str) -> dict[str, str]:
    """OR/AND assignment for the two-phase states of the toy machines."""
    return {f"{prefix}_or": OR, f"{prefix}_and": AND}


def toy_accept_machine() -> ATM:
    """Accepts every input: one OR step, one AND step, then accept."""
    states = ("q_or", "q_and", "acc", "rej")
    mode = {"q_or": OR, "q_and": AND, "acc": OR, "rej": OR}
    delta = {}
    for symbol in ("0", "1", "_"):
        delta[("q_or", symbol)] = (
            Action("q_and", symbol, STAY),
            Action("q_and", symbol, STAY),
        )
        delta[("q_and", symbol)] = (
            Action("acc", symbol, STAY),
            Action("acc", symbol, STAY),
        )
    return ATM(
        states=states,
        alphabet=("0", "1", "_"),
        blank="_",
        delta=delta,
        mode=mode,
        q_init="q_or",
        q_accept="acc",
        q_reject="rej",
    )


def toy_reject_machine() -> ATM:
    """Rejects every input: both AND branches reach ``q_reject``."""
    states = ("q_or", "q_and", "acc", "rej")
    mode = {"q_or": OR, "q_and": AND, "acc": OR, "rej": OR}
    delta = {}
    for symbol in ("0", "1", "_"):
        delta[("q_or", symbol)] = (
            Action("q_and", symbol, STAY),
            Action("q_and", symbol, STAY),
        )
        delta[("q_and", symbol)] = (
            Action("rej", symbol, STAY),
            Action("rej", symbol, STAY),
        )
    return ATM(
        states=states,
        alphabet=("0", "1", "_"),
        blank="_",
        delta=delta,
        mode=mode,
        q_init="q_or",
        q_accept="acc",
        q_reject="rej",
    )


def toy_scanner_machine() -> ATM:
    """Accepts iff every tape cell holds ``1``; the head really moves.

    The scanner marks each visited ``1`` with ``X`` and steps right;
    thanks to boundary clamping it eventually re-reads its own mark,
    which signals that the whole tape was scanned.  Any ``0`` or blank
    forces rejection.  This is the machine that exercises the head
    arithmetic of the Step formula (increments and clamping) on tapes
    with more than two cells.
    """
    states = ("scan", "move", "done", "bad", "acc", "rej")
    mode = {
        "scan": OR,
        "move": AND,
        "done": AND,
        "bad": AND,
        "acc": OR,
        "rej": OR,
    }
    delta: dict[tuple[str, str], tuple[Action, Action]] = {}
    alphabet = ("0", "1", "_", "X")
    delta[("scan", "1")] = (
        Action("move", "X", RIGHT),
        Action("move", "X", RIGHT),
    )
    delta[("scan", "X")] = (
        Action("done", "X", STAY),
        Action("done", "X", STAY),
    )
    for symbol in ("0", "_"):
        delta[("scan", symbol)] = (
            Action("bad", symbol, STAY),
            Action("bad", symbol, STAY),
        )
    for symbol in alphabet:
        delta[("move", symbol)] = (
            Action("scan", symbol, STAY),
            Action("scan", symbol, STAY),
        )
        delta[("done", symbol)] = (
            Action("acc", symbol, STAY),
            Action("acc", symbol, STAY),
        )
        delta[("bad", symbol)] = (
            Action("rej", symbol, STAY),
            Action("rej", symbol, STAY),
        )
    return ATM(
        states=states,
        alphabet=alphabet,
        blank="_",
        delta=delta,
        mode=mode,
        q_init="scan",
        q_accept="acc",
        q_reject="rej",
    )


def toy_zigzag_machine() -> ATM:
    """Steps right then back left, accepting iff cell 0 holds ``1``.

    The only toy machine with a LEFT move: it exercises the decrement
    (and left-boundary clamping) branches of the Step formula's head
    arithmetic.
    """
    states = ("r_or", "r_and", "l_or", "l_and", "acc", "rej")
    mode = {
        "r_or": OR,
        "r_and": AND,
        "l_or": OR,
        "l_and": AND,
        "acc": OR,
        "rej": OR,
    }
    alphabet = ("0", "1", "_")
    delta: dict[tuple[str, str], tuple[Action, Action]] = {}
    for symbol in alphabet:
        delta[("r_or", symbol)] = (
            Action("r_and", symbol, RIGHT),
            Action("r_and", symbol, RIGHT),
        )
        delta[("r_and", symbol)] = (
            Action("l_or", symbol, STAY),
            Action("l_or", symbol, STAY),
        )
        delta[("l_or", symbol)] = (
            Action("l_and", symbol, LEFT),
            Action("l_and", symbol, LEFT),
        )
    delta[("l_and", "1")] = (
        Action("acc", "1", STAY),
        Action("acc", "1", STAY),
    )
    for symbol in ("0", "_"):
        delta[("l_and", symbol)] = (
            Action("rej", symbol, STAY),
            Action("rej", symbol, STAY),
        )
    return ATM(
        states=states,
        alphabet=alphabet,
        blank="_",
        delta=delta,
        mode=mode,
        q_init="r_or",
        q_accept="acc",
        q_reject="rej",
    )


def toy_alternation_machine() -> ATM:
    """Accepts iff the first tape symbol is ``1``.

    From ``q_or`` reading ``1`` both branches lead (via an AND state whose
    branches both accept) to acceptance; reading ``0`` or blank forces a
    rejecting AND branch, so the machine rejects.  This gives toy inputs
    on which acceptance genuinely depends on ``w``.
    """
    states = ("q_or", "q_yes", "q_no", "acc", "rej")
    mode = {"q_or": OR, "q_yes": AND, "q_no": AND, "acc": OR, "rej": OR}
    delta: dict[tuple[str, str], tuple[Action, Action]] = {}
    delta[("q_or", "1")] = (
        Action("q_yes", "1", STAY),
        Action("q_yes", "1", STAY),
    )
    for symbol in ("0", "_"):
        delta[("q_or", symbol)] = (
            Action("q_no", symbol, STAY),
            Action("q_no", symbol, STAY),
        )
    for symbol in ("0", "1", "_"):
        delta[("q_yes", symbol)] = (
            Action("acc", symbol, STAY),
            Action("acc", symbol, STAY),
        )
        delta[("q_no", symbol)] = (
            Action("acc", symbol, STAY),
            Action("rej", symbol, STAY),
        )
    return ATM(
        states=states,
        alphabet=("0", "1", "_"),
        blank="_",
        delta=delta,
        mode=mode,
        q_init="q_or",
        q_accept="acc",
        q_reject="rej",
    )
