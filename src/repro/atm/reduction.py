"""The Theorem 3 construction: from an ATM and input to a 1-CQ.

Given an ATM ``M`` and input ``w``, Sec. 3.5 assembles a dag-shaped
focused 1-CQ ``q`` with one solitary F node, two solitary T nodes
``t_0``/``t_1`` and one FT-twin per gadget, such that boundedness of the
sirup ``(Sigma_q, P)`` encodes whether ``M`` rejects ``w`` (Lemma 4).

What this module delivers, and at which fidelity level:

* **Query rendering** (:func:`build_query`): the base block, a frame of
  type AA/AT/TA per gadget, gate gadgets for every AND/NOT gate of the
  gadget's formula, input blocks with per-branch chains and gathering
  blocks, and the inter-gadget wiring of Sec. 3.5.1 (``U_g`` guards and
  the extra ``R_g`` arrows from ``rho'_g`` to every ``tau``).  The
  figures of the paper pin the wiring only up to drawing conventions;
  our rendering preserves every *measurable* property used by the proof:
  the label/shape inventory, the solitary/twin census, dag-ness,
  structural focusedness, and polynomial size in ``|M| + |w|``
  (benchmark E6).
* **Trigger semantics** (:func:`segment_verdict`): which gadgets fire at
  a skeleton node, decided by gathering inputs for the gadget's formula
  (Claim 4.2 reduces homomorphism triggering to exactly this).
* **Lemma 4 semantics** (:func:`skeleton_boundedness_semantics`): the
  operational content of the boundedness argument, checked on real
  encodings of toy machines -- if ``M`` accepts, the ideal tree built
  from an accepting computation is everywhere correct and reject-free;
  if ``M`` rejects, every deep-enough desired tree exposes an incorrect
  or rejecting segment within a uniform depth ``K``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..circuits.formula import Formula, And, Not, Var, branches as formula_branches
from ..circuits.formula import formula_size
from ..circuits.gather import CheckFormula, fires_at
from ..circuits.library import FormulaLibrary, build_library
from ..core.cq import OneCQ
from ..core.structure import F, Node, Structure, StructureBuilder, T
from .encoding import (
    Path,
    ZeroOneTree,
    desired_tree_cut,
    gamma_depth,
    ideal_tree_cut,
    incorrect_nodes,
    reject_main_nodes,
)
from .machine import ATM, find_accepting_tree, iter_computation_trees
from .params import EncodingParams

FRAME_AA = "AA"
FRAME_AT = "AT"
FRAME_TA = "TA"


@dataclass(frozen=True)
class GadgetSpec:
    """One gadget of the query: a formula in a frame of a given type."""

    name: str
    kind: str  # "g1" .. "g7", the inventory of Sec. 3.5.1
    frame_type: str
    check: CheckFormula

    def describe(self) -> str:
        return (
            f"{self.name} [{self.kind}, frame {self.frame_type}]: "
            f"{self.check.describe()}"
        )


def gadget_inventory(library: FormulaLibrary) -> list[GadgetSpec]:
    """The full gadget list (g1)-(g7) for a formula library.

    Every ``MustBranch_k`` appears twice -- once per frame type AT and
    TA -- exactly as in the paper; all other gadgets are of type AA.
    """
    gadgets = [GadgetSpec("Good", "g1", FRAME_AA, library.good)]
    for check in library.must_branch:
        gadgets.append(
            GadgetSpec(f"{check.name}/AT", "g2", FRAME_AT, check)
        )
        gadgets.append(
            GadgetSpec(f"{check.name}/TA", "g2", FRAME_TA, check)
        )
    for check in library.no_branch_zero:
        gadgets.append(GadgetSpec(check.name, "g3", FRAME_AA, check))
    for check in library.no_branch_one:
        gadgets.append(GadgetSpec(check.name, "g3", FRAME_AA, check))
    gadgets.append(
        GadgetSpec(library.no_branch_pair.name, "g4", FRAME_AA, library.no_branch_pair)
    )
    gadgets.append(GadgetSpec("Step", "g5", FRAME_AA, library.step))
    gadgets.append(GadgetSpec("Init", "g6", FRAME_AA, library.init))
    gadgets.append(GadgetSpec("Reject", "g7", FRAME_AA, library.reject))
    return gadgets


# ---------------------------------------------------------------------------
# Query rendering
# ---------------------------------------------------------------------------


class _QueryBuilder:
    """StructureBuilder wrapper with the paper's label-arrow shorthand."""

    def __init__(self) -> None:
        self.builder = StructureBuilder()
        self._mark_counter = 0

    def node(self, name: Node, *labels: str) -> Node:
        return self.builder.add_node(name, *labels)

    def edge(self, src: Node, dst: Node, pred: str) -> None:
        self.builder.add_edge(src, dst, pred)

    def mark(self, node: Node, label: str) -> None:
        """A ``label``-arrow to a fresh sink (labels-as-edges shorthand)."""
        self._mark_counter += 1
        sink = f"mark#{self._mark_counter}"
        self.builder.add_node(sink)
        self.builder.add_edge(node, sink, label)

    def build(self) -> Structure:
        return self.builder.build()


def _render_gate_blocks(
    qb: _QueryBuilder,
    gadget_id: str,
    block_id: str,
    formula: Formula,
) -> dict[int, Node]:
    """The gate gadgets of one main block ``M_g`` (or its copy).

    Returns, per formula branch index, the node where that branch's leaf
    plugs in (the gate input the leaf feeds).  NOT gates contribute an
    S-chain, AND gates the seven-node pattern of Sec. 3.5.2; the root
    gate carries the ``D`` mark.
    """
    prefix = f"{gadget_id}:{block_id}"
    counter = {"n": 0}
    leaf_ports: dict[int, Node] = {}
    branch_index = {"i": 0}

    def fresh(tag: str) -> Node:
        counter["n"] += 1
        return f"{prefix}:{tag}#{counter['n']}"

    def render(f: Formula, is_root: bool) -> Node:
        """Returns the output node ``o`` of the gate for ``f``."""
        if isinstance(f, Var):
            port = fresh("leaf")
            leaf_ports[branch_index["i"]] = port
            branch_index["i"] += 1
            qb.node(port)
            return port
        if isinstance(f, Not):
            i_node = render(f.child, False)
            o_node = qb.node(fresh("not-o"))
            qb.edge(i_node, o_node, "S")
            if is_root:
                qb.mark(o_node, "D")
            return o_node
        if isinstance(f, And):
            i1 = render(f.left, False)
            i2 = render(f.right, False)
            b = qb.node(fresh("and-b"))
            o = qb.node(fresh("and-o"))
            c1 = qb.node(fresh("and-c1"))
            c2 = qb.node(fresh("and-c2"))
            c3 = qb.node(fresh("and-c3"))
            qb.edge(i1, b, "S")
            qb.edge(i2, b, "S")
            qb.edge(i1, c1, "S")
            qb.edge(i2, c2, "S")
            qb.edge(c1, c3, "E")
            qb.edge(c2, c3, "E")
            qb.edge(c3, o, "S")
            if is_root:
                qb.mark(b, "D")
            return o
        raise TypeError(f"gate rendering needs a normalised formula: {f!r}")

    render(formula, True)
    return leaf_ports


def _render_main_block(
    qb: _QueryBuilder,
    gadget_id: str,
    block_id: str,
    check: CheckFormula,
    anchor: Node,
    rho: Node,
    pred: str,
) -> None:
    """One main block: the ``B_i`` ladder plus the gate gadgets.

    ``anchor`` is the base node the block hangs from (``alpha`` for
    ``M_g``, ``tau_g`` for ``M'_g``); ``rho`` is its ``R_g`` entry point.
    """
    qb.edge(anchor, rho, pred)
    leaf_ports = _render_gate_blocks(qb, gadget_id, block_id, check.formula)
    all_branches = formula_branches(check.formula)
    beta_f = qb.node(f"{gadget_id}:{block_id}:betaF")
    qb.edge(rho, beta_f, "S")
    variables = sorted(check.formula.variables())
    for i in variables:
        qb.mark(beta_f, f"B{i}")
        beta_t = qb.node(f"{gadget_id}:{block_id}:betaT{i}")
        qb.edge(rho, beta_t, "S")
        qb.mark(beta_t, f"B{i}")
    for index, branch in enumerate(all_branches):
        upper = qb.node(f"{gadget_id}:{block_id}:Bij-up#{index}")
        lower = qb.node(f"{gadget_id}:{block_id}:Bij-dn#{index}")
        qb.mark(upper, f"B{branch.variable}o{branch.occurrence}")
        qb.mark(lower, f"B{branch.variable}o{branch.occurrence}")
        qb.edge(upper, lower, "R")
        port = leaf_ports[index]
        qb.edge(lower, port, "S")
        qb.edge(beta_f, upper, "S")


def _render_input_block(
    qb: _QueryBuilder,
    gadget_id: str,
    check: CheckFormula,
    pi: Node,
    iota: Node,
    w_node: Node,
    pred: str,
) -> None:
    """The input block ``I_g`` with per-variable gathering blocks.

    Up-type variables get an S-chain positioning them on the uppath;
    down-type variables share the ``W`` successor that forces all bits
    of one group onto a single downpath.  Each branch ``(i, j)`` gets
    its RSR chain towards ``pi``.
    """
    qb.edge(pi, iota, pred)
    offsets = check.spec.group_offsets()
    variable_group: dict[int, tuple[int, str, int]] = {}
    for group_index, group in enumerate(check.spec.groups):
        start = offsets[group_index]
        for local in range(group.length):
            variable_group[start + local] = (group_index, group.kind, local)

    for i in sorted(check.formula.variables()):
        group_index, kind, local = variable_group[i]
        group = check.spec.groups[group_index]
        gamma_node = qb.node(f"{gadget_id}:I:gamma{i}")
        eta = qb.node(f"{gadget_id}:I:eta{i}")
        qb.mark(eta, f"B{i}")
        qb.edge(pi, gamma_node, "S")
        if kind == "up":
            # Position within the uppath: local steps above, rest below.
            chain = gamma_node
            for step in range(local + 1):
                nxt = qb.node(f"{gadget_id}:I:up{i}#{step}")
                qb.edge(chain, nxt, "S")
                chain = nxt
            qb.edge(chain, eta, "S")
        else:
            qb.edge(gamma_node, eta, "S")
            qb.edge(eta, w_node, "S")
    branch_counter = 0
    for branch in formula_branches(check.formula):
        chain = qb.node(f"{gadget_id}:I:p{branch_counter}#0")
        qb.edge(pi, chain, "R")
        for level, gate in enumerate(branch.gates_leaf_to_root):
            nxt = qb.node(f"{gadget_id}:I:p{branch_counter}#{level + 1}")
            qb.edge(chain, nxt, "S")
            qb.mark(nxt, "E")
            chain = nxt
        qb.mark(chain, "D")
        branch_counter += 1


@dataclass(frozen=True)
class ReductionResult:
    """The rendered query together with everything it was built from."""

    machine: ATM
    word: tuple[str, ...]
    params: EncodingParams
    library: FormulaLibrary
    gadgets: tuple[GadgetSpec, ...]
    query: Structure
    one_cq: OneCQ

    def size_stats(self) -> dict[str, int]:
        return {
            "nodes": len(self.query),
            "atoms": self.query.size(),
            "gadgets": len(self.gadgets),
            "formula_gates": sum(
                formula_size(g.check.formula) for g in self.gadgets
            ),
            "twins": len(self.one_cq.twins),
            "solitary_ts": self.one_cq.span,
        }

    def describe(self) -> str:
        stats = self.size_stats()
        return (
            f"Theorem 3 query for |w|={len(self.word)}: "
            f"{stats['nodes']} nodes, {stats['atoms']} atoms, "
            f"{stats['gadgets']} gadgets, {stats['twins']} twins"
        )


def build_query(
    machine: ATM, word: Sequence[str], cells: int | None = None
) -> ReductionResult:
    """Assemble the Theorem 3 1-CQ for ``M`` and ``w``.

    ``cells`` defaults to the smallest power of two covering the input
    (the paper uses ``2^{p(|w|)}``; toy instantiations keep it small so
    that cactus-level checks remain feasible).
    """
    if cells is None:
        cells = 1
        while cells < max(len(word), 2):
            cells *= 2
    params = EncodingParams.from_machine(machine, cells)
    library = build_library(params, machine, list(word))
    gadgets = gadget_inventory(library)

    qb = _QueryBuilder()
    xi = qb.node("xi", F)
    alpha = qb.node("alpha")
    t0 = qb.node("t0", T)
    t1 = qb.node("t1", T)
    w_node = qb.node("w")
    xi_prime = qb.node("xi'")
    qb.edge(xi, alpha, "R")
    qb.edge(alpha, t0, "S")
    qb.edge(alpha, t1, "S")
    qb.edge(xi, xi_prime, "S")
    qb.mark(w_node, "W")

    taus: dict[str, Node] = {}
    iotas: dict[str, Node] = {}
    frames: list[tuple[GadgetSpec, str]] = []
    for index, gadget in enumerate(gadgets):
        gid = f"g{index}"
        pred = f"Rg{index}"
        tau = qb.node(f"{gid}:tau")
        rho = qb.node(f"{gid}:rho")
        rho_prime = qb.node(f"{gid}:rho'")
        iota = qb.node(f"{gid}:iota")
        pi = qb.node(f"{gid}:pi")
        twin = qb.node(f"{gid}:twin", F, T)
        taus[gid] = tau
        iotas[gid] = iota

        # Frame wiring: the twin guards the frame; U_g forces any hom
        # that sends alpha to tau_g to send iota_g to alpha.
        qb.edge(tau, twin, "S")
        guard = qb.node(f"{gid}:guard")
        qb.mark(guard, f"Ug{index}")
        qb.edge(iota, guard, "S")
        qb.edge(guard, tau, "S")
        if gadget.frame_type == FRAME_AT:
            qb.edge(t1, tau, "S")
        elif gadget.frame_type == FRAME_TA:
            qb.edge(t0, tau, "S")
        else:
            qb.edge(alpha, tau, "S")

        _render_main_block(qb, gid, "M", gadget.check, alpha, rho, pred)
        _render_main_block(
            qb, gid, "M'", gadget.check, tau, rho_prime, pred
        )
        _render_input_block(qb, gid, gadget.check, pi, iota, w_node, pred)
        qb.edge(pi, alpha, pred)
        frames.append((gadget, gid))

    # Inter-gadget regulation: iota_gj reaches every other tau via a
    # U_gj-marked guard, and rho'_gj is R_gj-linked to every tau.
    for gadget, gid in frames:
        index = gid[1:]
        for other_gadget, other_gid in frames:
            if other_gid == gid:
                continue
            guard = qb.node(f"{gid}:xguard:{other_gid}")
            qb.mark(guard, f"Ug{index}")
            qb.edge(iotas[gid], guard, "S")
            qb.edge(guard, taus[other_gid], "S")
            qb.edge(taus[other_gid], qb.node(f"{gid}:rho'"), f"Rg{index}")

    query = qb.build()
    one_cq = OneCQ.from_structure(query)
    return ReductionResult(
        machine=machine,
        word=tuple(word),
        params=params,
        library=library,
        gadgets=tuple(gadgets),
        query=query,
        one_cq=one_cq,
    )


# ---------------------------------------------------------------------------
# Trigger semantics (Claim 4.2) and the Lemma 4 skeleton argument
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SegmentVerdict:
    """Which gadget formulas fire at a skeleton node, and what it means."""

    node: Path
    fired: tuple[str, ...]
    incorrect: bool
    reject: bool

    @property
    def cuttable(self) -> bool:
        """A branch may be cut at this segment in the Lemma 4 argument."""
        return self.incorrect or self.reject


def gadget_applies_at(
    gadget: GadgetSpec, tree: ZeroOneTree, node: Path
) -> bool:
    """Whether a gadget's frame type matches the segment type of ``node``.

    A skeleton node with only a 0-child is a segment of the form
    ``q^-_AT`` (only ``t_0`` was budded), one with only a 1-child is
    ``q^-_TA``; gadgets of type AT/TA can only be triggered at segments
    of their own type, while type-AA gadgets trigger anywhere.
    """
    if gadget.frame_type == FRAME_AA:
        return True
    kids = tree.children(node)
    if gadget.frame_type == FRAME_AT:
        return kids == (0,)
    return kids == (1,)


def segment_verdict(
    library: FormulaLibrary,
    machine: ATM,
    word: Sequence[str],
    tree: ZeroOneTree,
    node: Path,
    gadgets: Sequence[GadgetSpec] | None = None,
) -> SegmentVerdict:
    """Evaluate every gadget formula at ``node`` by input gathering.

    By Claim 4.2 this is exactly "some homomorphism maps ``q^-_TT`` into
    the segment triggering that gadget"; (leaf) then says the segment is
    cuttable iff it is incorrect or represents ``q_reject``.
    """
    if gadgets is None:
        gadgets = gadget_inventory(library)
    fired = []
    for gadget in gadgets:
        if not gadget_applies_at(gadget, tree, node):
            continue
        if fires_at(gadget.check, tree, node):
            fired.append(gadget.name)
    reject = any(name == "Reject" for name in fired)
    incorrect = any(name != "Reject" for name in fired)
    return SegmentVerdict(tuple(node), tuple(fired), incorrect, reject)


def formula_incorrectness(
    library: FormulaLibrary,
    machine: ATM,
    word: Sequence[str],
    tree: ZeroOneTree,
    frontier: int,
) -> list[Path]:
    """Nodes below the frontier flagged incorrect by the gadget formulas.

    Premature leaves are flagged directly: the paper's "leaves are never
    properly branching" clause (a leaf segment inside the probed region
    cannot be part of a desired tree), which no formula can witness
    because there is nothing to gather below a leaf.
    """
    gadgets = [
        gadget
        for gadget in gadget_inventory(library)
        if gadget.kind != "g7"
    ]
    flagged = []
    for node in tree.nodes():
        if len(node) >= frontier:
            continue
        if not tree.children(node):
            flagged.append(node)
            continue
        applicable = [
            g for g in gadgets if gadget_applies_at(g, tree, node)
        ]
        if any(fires_at(g.check, tree, node) for g in applicable):
            flagged.append(node)
    return sorted(flagged)


@dataclass(frozen=True)
class BoundednessReport:
    """Outcome of the operational Lemma 4 check for one machine/input."""

    rejects: bool
    cut_bound: int | None
    accepting_clean_depth: int | None
    details: tuple[str, ...]

    def describe(self) -> str:
        lines = [
            "machine rejects input -> sirup bounded"
            if self.rejects
            else "machine accepts input -> sirup unbounded",
        ]
        lines.extend(self.details)
        return "\n".join(lines)


def skeleton_boundedness_semantics(
    machine: ATM,
    word: Sequence[str],
    cells: int | None = None,
    depth_margin: int = 8,
    tree_limit: int = 16,
) -> BoundednessReport:
    """The Lemma 4 argument, run on real encodings of a toy machine.

    * If ``M`` accepts ``w``: the ideal tree built from an accepting
      computation tree is everywhere correct and contains no rejecting
      segment, so arbitrarily deep cactuses admit no cut -- the sirup is
      unbounded.
    * If ``M`` rejects ``w``: every computation tree is rejecting, and
      each desired tree exposes a ``q_reject`` main node within a depth
      ``K`` uniform over the trees probed -- the sirup is bounded.
    """
    if cells is None:
        cells = 1
        while cells < max(len(word), 2):
            cells *= 2
    params = EncodingParams.from_machine(machine, cells)
    details: list[str] = []

    # Main nodes sit 4 edges apart, so a computation tree with k OR-levels
    # spans skeleton depth 4k; reading any configuration takes a further
    # gamma_depth, and Step checks one more main-node hop.  Probing past
    # that is pure exponential blow-up (binary branching every 4 edges).
    read_depth = gamma_depth(params) + 4

    accepting = find_accepting_tree(machine, word, cells, max_depth=64)
    if accepting is not None:
        frontier = 4 * (accepting.depth() // 2 + 2) + 1
        probe_depth = frontier + read_depth + depth_margin
        tree = ideal_tree_cut(
            params, machine, word, lambda _i: accepting, probe_depth
        )
        bad = incorrect_nodes(params, machine, word, tree, frontier)
        rejects_seen = reject_main_nodes(params, machine, word, tree, frontier)
        details.append(
            f"accepting ideal tree cut at {probe_depth}: "
            f"{len(bad)} incorrect, {len(rejects_seen)} rejecting segments"
        )
        return BoundednessReport(
            rejects=False,
            cut_bound=None,
            accepting_clean_depth=frontier if not bad and not rejects_seen else None,
            details=tuple(details),
        )

    # Rejecting case: probe each computation tree's desired tree for a
    # rejecting segment; K is the max depth at which one was found.
    worst = 0
    for tree_index, comp in enumerate(
        iter_computation_trees(machine, word, cells, max_depth=64, limit=tree_limit)
    ):
        frontier = 4 * (comp.depth() // 2) + 5
        probe_depth = frontier + read_depth + depth_margin
        tree = desired_tree_cut(params, machine, word, comp, probe_depth)
        rejecting = reject_main_nodes(params, machine, word, tree, frontier)
        if not rejecting:
            details.append(
                f"computation tree #{tree_index}: no rejecting segment "
                f"within depth {frontier} -- inconclusive probe"
            )
            return BoundednessReport(False, None, None, tuple(details))
        shallowest = min(len(node) for node in rejecting)
        worst = max(worst, shallowest)
        details.append(
            f"computation tree #{tree_index}: rejecting segment at depth "
            f"{shallowest}"
        )
    return BoundednessReport(
        rejects=True,
        cut_bound=worst,
        accepting_clean_depth=None,
        details=tuple(details),
    )
