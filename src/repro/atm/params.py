"""Bit-level encoding parameters for the Theorem 3 construction.

The paper encodes an OR-configuration as a ``2^d``-long 01-sequence:
a state block, then one block per tape cell, then a final *parent bit*
recording whether the configuration's parent AND-configuration is the
0- or 1-child of its own parent.

Reproduction note (documented in DESIGN.md): the paper marks the active
cell with a per-cell head-marker bit and appeals to the technique of
Bjorklund--Martens--Schwentick for the locality of the transition check.
We instead store the head position *explicitly in binary inside the state
block*.  This keeps every consistency check of Sec. 3.4.3 local to the
gathered inputs (state/head of ``c``, ``c0``, ``c1`` plus one common cell)
and preserves the polynomial size of all formulas, which is the property
the proof needs.  Both ``n_Q`` and ``n_Gamma`` are rounded to powers of
two so that "is this address the first bit of a cell block?" is a small
fixed-pattern formula, the paper's "easy to locate" assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..bitops import Bits, bits_to_int, int_to_bits
from .machine import ATM, Configuration


def _next_power_of_two(n: int) -> int:
    power = 1
    while power < n:
        power *= 2
    return power


def _bit_length_for(count: int) -> int:
    """Bits needed to give ``count`` distinct codes (at least 1)."""
    bits = 1
    while (1 << bits) < count:
        bits += 1
    return bits


@dataclass(frozen=True)
class EncodingParams:
    """All derived sizes of the configuration encoding for one ATM.

    Attributes mirror the paper's notation: ``p`` with ``2^p`` tape
    cells, ``n_q`` state-code bits, ``n_gamma`` bits per cell block
    (``sym_bits`` of which encode the symbol), ``n_state_block`` (the
    paper's ``n_Q``) bits for the state block, and ``d`` with the whole
    configuration packed into ``2^d`` bits.
    """

    machine: ATM
    p: int
    n_q: int
    sym_bits: int
    n_gamma: int
    n_state_block: int
    d: int

    @classmethod
    def from_machine(cls, machine: ATM, cells: int) -> "EncodingParams":
        if cells < 1 or cells & (cells - 1):
            raise ValueError(f"cells must be a power of two, got {cells}")
        p = cells.bit_length() - 1
        n_q = _bit_length_for(len(machine.states))
        sym_bits = _bit_length_for(len(machine.alphabet))
        n_gamma = _next_power_of_two(sym_bits + 1)
        # Aligning the cell region at a power-of-two boundary past
        # ``cells * n_gamma`` makes the cell index appear verbatim in the
        # address bits, so the formulas of Sec. 3.4.3 can compare it with
        # the head position by plain bit equality.
        n_state_block = _next_power_of_two(max(n_q + p, cells * n_gamma))
        d = 1
        while (1 << d) < n_state_block + cells * n_gamma + 1:
            d += 1
        return cls(machine, p, n_q, sym_bits, n_gamma, n_state_block, d)

    # ------------------------------------------------------------------
    # Sizes and offsets
    # ------------------------------------------------------------------

    @property
    def cells(self) -> int:
        return 1 << self.p

    @property
    def seq_len(self) -> int:
        return 1 << self.d

    @property
    def parent_bit_position(self) -> int:
        return self.seq_len - 1

    def cell_offset(self, index: int) -> int:
        """Address of the first bit of cell ``index``'s block."""
        if not 0 <= index < self.cells:
            raise ValueError(f"cell index {index} out of range")
        return self.n_state_block + index * self.n_gamma

    @property
    def cells_end(self) -> int:
        return self.n_state_block + self.cells * self.n_gamma

    def is_cell_start(self, address: int) -> bool:
        return (
            self.n_state_block <= address < self.cells_end
            and (address - self.n_state_block) % self.n_gamma == 0
        )

    def cell_index_of(self, address: int) -> int:
        if not self.is_cell_start(address):
            raise ValueError(f"{address} is not a cell-start address")
        return (address - self.n_state_block) // self.n_gamma

    @property
    def gamma_log(self) -> int:
        """``log2(n_gamma)``: width of the within-block offset."""
        return self.n_gamma.bit_length() - 1

    def cell_index_bit_positions(self) -> list[int]:
        """MSB-first positions of the cell index within a d-bit address.

        With the power-of-two alignment of ``n_state_block``, the address
        of bit ``offset`` of cell ``i`` is ``n_state_block + i * n_gamma
        + offset``, so ``i`` occupies ``p`` consecutive address bits.
        """
        g = self.gamma_log
        return [self.d - g - self.p + b for b in range(self.p)]

    def cell_address_bits(
        self, offset: int, index: int | None = None
    ) -> list[int | None]:
        """The d address bits (MSB first) of cell-block position ``offset``.

        With ``index=None`` the cell-index bits are left as ``None``
        (free); otherwise they are filled in.
        """
        if not 0 <= offset < self.n_gamma:
            raise ValueError(f"offset {offset} out of block range")
        base = self.n_state_block + offset
        bits: list[int | None] = list(int_to_bits(base, self.d))
        for b, position in enumerate(self.cell_index_bit_positions()):
            if index is None:
                bits[position] = None
            else:
                bits[position] = (index >> (self.p - 1 - b)) & 1
        return bits

    def meaningful_addresses(self) -> frozenset[int]:
        """Addresses that carry configuration content.

        State code, head position, all cell blocks and the parent bit;
        padding positions are unconstrained throughout the library (they
        never influence the Lemma 4 argument).
        """
        addresses = set(range(self.n_q + self.p))
        addresses.update(range(self.n_state_block, self.cells_end))
        addresses.add(self.parent_bit_position)
        return frozenset(addresses)

    def expected_bit(
        self, config: Configuration, parent_bit: int, address: int
    ) -> int | None:
        """The bit a desired tree stores at ``address`` (None if padding)."""
        bits = encode_configuration(self, config, parent_bit)
        if address not in self.meaningful_addresses():
            return None
        return bits[address]

    # ------------------------------------------------------------------
    # Codes
    # ------------------------------------------------------------------

    def state_code(self, state: str) -> int:
        return self.machine.states.index(state)

    def symbol_code(self, symbol: str) -> int:
        return self.machine.alphabet.index(symbol)

    def state_block(self, state: str, head: int) -> Bits:
        """State code then head position, zero-padded to the block size."""
        if not 0 <= head < self.cells:
            raise ValueError(f"head {head} out of range")
        bits = int_to_bits(self.state_code(state), self.n_q)
        bits += int_to_bits(head, self.p)
        return bits + (0,) * (self.n_state_block - len(bits))

    def cell_block(self, symbol: str) -> Bits:
        """A zero pad bit then the symbol code, padded to ``n_gamma``."""
        code = int_to_bits(self.symbol_code(symbol), self.sym_bits)
        return (0,) * (self.n_gamma - self.sym_bits) + code

    def read_state_block(self, bits: Sequence[int]) -> tuple[str, int]:
        state_idx = bits_to_int(bits[: self.n_q])
        head = bits_to_int(bits[self.n_q : self.n_q + self.p])
        if state_idx >= len(self.machine.states):
            raise ValueError(f"state code {state_idx} out of range")
        return self.machine.states[state_idx], head

    def read_cell_block(self, bits: Sequence[int]) -> str:
        code = bits_to_int(bits[self.n_gamma - self.sym_bits :])
        if code >= len(self.machine.alphabet):
            raise ValueError(f"symbol code {code} out of range")
        return self.machine.alphabet[code]

    def describe(self) -> str:
        return (
            f"EncodingParams(p={self.p}, cells={self.cells}, n_q={self.n_q}, "
            f"sym_bits={self.sym_bits}, n_gamma={self.n_gamma}, "
            f"n_state_block={self.n_state_block}, d={self.d}, "
            f"seq_len={self.seq_len})"
        )


def encode_configuration(
    params: EncodingParams, config: Configuration, parent_bit: int
) -> Bits:
    """The ``2^d``-long 01-sequence representing an OR-configuration."""
    if parent_bit not in (0, 1):
        raise ValueError("parent_bit must be 0 or 1")
    if len(config.tape) != params.cells:
        raise ValueError(
            f"tape has {len(config.tape)} cells, expected {params.cells}"
        )
    bits = list(params.state_block(config.state, config.head))
    for symbol in config.tape:
        bits.extend(params.cell_block(symbol))
    bits.extend([0] * (params.seq_len - len(bits) - 1))
    bits.append(parent_bit)
    return tuple(bits)


def decode_configuration(
    params: EncodingParams, bits: Sequence[int]
) -> tuple[Configuration, int]:
    """Invert :func:`encode_configuration`."""
    if len(bits) != params.seq_len:
        raise ValueError(
            f"sequence has {len(bits)} bits, expected {params.seq_len}"
        )
    state, head = params.read_state_block(bits[: params.n_state_block])
    tape = []
    for index in range(params.cells):
        offset = params.cell_offset(index)
        tape.append(params.read_cell_block(bits[offset : offset + params.n_gamma]))
    return Configuration(state, head, tuple(tape)), bits[params.seq_len - 1]
