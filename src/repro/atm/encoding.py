"""01-trees encoding ATM computations (Sec. 3.3 of the paper).

A *01-tree* is a binary ditree whose edges are labelled 0 or 1 with
siblings labelled differently; we represent a node by the tuple of edge
labels on the path from the root, so the tree itself is a prefix-closed
set of bit tuples.

The encoding pipeline follows the paper:

* a configuration ``c`` becomes a ``2^d``-bit sequence
  (:mod:`repro.atm.params`) and then a *configuration tree* ``gamma_c``
  of depth ``4(d+1)``: a full binary address tree whose every original
  edge ``b`` is replaced by the edge pattern ``1,1,1,b``;
* a computation tree ``T`` becomes ``beta_T``: below the *main node* of
  every OR-configuration hang its ``gamma`` tree (first edge 1) and an
  outgoing chain ``0,0,1`` branching to the main nodes of the two
  successor OR-configurations;
* ``beta^+_T`` repeats halting configurations forever, and *ideal trees*
  restart fresh computation trees below every bit-leaf of a
  configuration tree;
* a *desired tree* is a subtree of an ideal tree rooted at a main node.

Self-consistent conventions (the paper leaves the block indexing of
(pb1)--(pb4) implicit; ours is spelled out here and cross-validated by
the tests): anchored at the most recent ``0,0,1,*`` pattern, a path
decomposes as ``001* (111*)^l w``; blocks ``l = 1..d`` carry address
bits, block ``d+1`` carries the content bit, ``w`` is a proper prefix of
``111`` (inside gamma) or of ``001`` (on a downward chain).  Halting
main nodes repeat their configuration with the parent bit reset to the
branch index, and new computation trees attach below *both* children of
the post-``001`` node under a bit-leaf, with the new root's parent bit
equal to its incoming branch bit.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from .machine import ATM, ComputationTree, Configuration, initial_configuration, successors
from .params import Bits, EncodingParams, encode_configuration

Path = tuple[int, ...]

#: Edge patterns of the construction.
GAMMA_PREFIX = (1, 1, 1)
CHAIN_PREFIX = (0, 0, 1)


class ZeroOneTree:
    """An immutable 01-tree: a prefix-closed set of 0/1 paths.

    The empty tuple is the root.  ``context`` is a virtual edge-label
    prefix *above* the root, used when the tree is a subtree of a larger
    one (e.g. a desired tree whose root's incoming pattern is ``001*``);
    the correctness predicates read suffixes through it.
    """

    __slots__ = ("_paths", "_context")

    def __init__(
        self,
        paths: Iterable[Path],
        context: Path = (),
        assume_closed: bool = False,
    ) -> None:
        if assume_closed:
            closed = set(paths)
            closed.add(())
        else:
            closed = set()
            for path in paths:
                path = tuple(path)
                while path not in closed:
                    closed.add(path)
                    path = path[:-1]
            closed.add(())
        self._paths = frozenset(closed)
        self._context = tuple(context)

    @property
    def paths(self) -> frozenset[Path]:
        return self._paths

    @property
    def context(self) -> Path:
        return self._context

    def __contains__(self, path: Path) -> bool:
        return tuple(path) in self._paths

    def __len__(self) -> int:
        return len(self._paths)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ZeroOneTree):
            return NotImplemented
        return self._paths == other._paths and self._context == other._context

    def __hash__(self) -> int:
        return hash((self._paths, self._context))

    def __repr__(self) -> str:
        return f"ZeroOneTree(|nodes|={len(self._paths)}, depth={self.depth()})"

    def children(self, node: Path) -> tuple[int, ...]:
        """The child edge labels present below ``node`` (subset of (0, 1))."""
        return tuple(b for b in (0, 1) if node + (b,) in self._paths)

    def is_leaf(self, node: Path) -> bool:
        return not self.children(node)

    def depth(self) -> int:
        return max((len(p) for p in self._paths), default=0)

    def nodes(self) -> Iterator[Path]:
        return iter(self._paths)

    def nodes_at_depth(self, depth: int) -> list[Path]:
        return [p for p in self._paths if len(p) == depth]

    def full_label_path(self, node: Path) -> Path:
        """Edge labels from the (virtual) top of the context to ``node``."""
        return self._context + node

    def cut(self, max_depth: int) -> "ZeroOneTree":
        """The ``M``-cut: drop everything strictly below ``max_depth``."""
        return ZeroOneTree(
            (p for p in self._paths if len(p) <= max_depth),
            self._context,
            assume_closed=True,
        )

    def subtree(self, node: Path) -> "ZeroOneTree":
        """Re-root at ``node``; the context absorbs the path above."""
        offset = len(node)
        paths = (
            p[offset:] for p in self._paths if p[:offset] == tuple(node)
        )
        return ZeroOneTree(
            paths, self._context + tuple(node), assume_closed=True
        )

    def with_context(self, context: Path) -> "ZeroOneTree":
        return ZeroOneTree(self._paths, context, assume_closed=True)

    def add_paths(self, extra: Iterable[Path]) -> "ZeroOneTree":
        return ZeroOneTree(itertools.chain(self._paths, extra), self._context)

    def remove_subtree(self, node: Path) -> "ZeroOneTree":
        """Drop ``node`` and everything below it (for mutation tests)."""
        node = tuple(node)
        return ZeroOneTree(
            (p for p in self._paths if p[: len(node)] != node),
            self._context,
            assume_closed=True,
        )


class TreeBuilder:
    """Mutable accumulator of paths for building a :class:`ZeroOneTree`.

    All operations keep the path set prefix-closed, so building the
    final tree is a plain copy.
    """

    def __init__(self) -> None:
        self._paths: set[Path] = {()}

    def __len__(self) -> int:
        return len(self._paths)

    def add_chain(self, base: Path, labels: Sequence[int]) -> Path:
        node = tuple(base)
        for bit in labels:
            node = node + (bit,)
            self._paths.add(node)
        return node

    def add_path(self, path: Path) -> None:
        path = tuple(path)
        while path not in self._paths:
            self._paths.add(path)
            path = path[:-1]

    def graft(self, base: Path, relative_paths: Iterable[Path]) -> None:
        base = tuple(base)
        for path in relative_paths:
            self.add_path(base + tuple(path))

    def build(self, context: Path = ()) -> ZeroOneTree:
        return ZeroOneTree(self._paths, context, assume_closed=True)


# ---------------------------------------------------------------------------
# Configuration trees and computation trees as 01-trees
# ---------------------------------------------------------------------------


def gamma_paths(params: EncodingParams, bits: Bits) -> list[Path]:
    """The maximal paths of ``gamma_c`` for the bit sequence of ``c``.

    One path per address: ``(111 a_1) .. (111 a_d) (111 v)`` where
    ``a_1 .. a_d`` is the address in binary (MSB first) and ``v`` the bit
    stored there.
    """
    if len(bits) != params.seq_len:
        raise ValueError(f"need {params.seq_len} bits, got {len(bits)}")
    paths = []
    for address, value in enumerate(bits):
        path: list[int] = []
        for i in range(params.d):
            path.extend(GAMMA_PREFIX)
            path.append((address >> (params.d - 1 - i)) & 1)
        path.extend(GAMMA_PREFIX)
        path.append(value)
        paths.append(tuple(path))
    return paths


def gamma_tree(params: EncodingParams, bits: Bits) -> ZeroOneTree:
    """``gamma_c`` as a standalone 01-tree rooted at the main node."""
    return ZeroOneTree(gamma_paths(params, bits))


def gamma_depth(params: EncodingParams) -> int:
    """Depth ``4(d+1)`` of every configuration tree."""
    return 4 * (params.d + 1)


def main_node_gap() -> int:
    """Edges between a main node and its children main nodes (``001*``)."""
    return 4


@dataclass(frozen=True)
class MainNode:
    """Bookkeeping for one main node materialised in a 01-tree."""

    path: Path
    config: Configuration
    parent_bit: int
    halting: bool


def _halting_repetition_children(
    config: Configuration,
) -> tuple[tuple[Configuration, int], tuple[Configuration, int]]:
    """Children of a halting main: same configuration, parent bit = branch."""
    return ((config, 0), (config, 1))


def _computation_children(
    machine: ATM, tree: ComputationTree
) -> list[tuple[int, ComputationTree, int]]:
    """(branch bit, OR-grandchild subtree, recorded parent bit) triples.

    The OR node keeps one AND child (the choice ``z``); the AND node
    keeps both OR grandchildren.  Each grandchild records ``z`` as its
    parent bit, and its branch bit in ``beta_T`` is its index below the
    AND node.
    """
    if not tree.children:
        return []
    ((choice, and_node),) = tree.children
    result = []
    for branch, or_node in and_node.children:
        result.append((branch, or_node, choice))
    return result


def beta_tree(
    params: EncodingParams,
    machine: ATM,
    tree: ComputationTree,
    root_parent_bit: int = 0,
) -> ZeroOneTree:
    """``beta_T`` rooted at the main node of the root configuration.

    The incoming ``0010`` pattern above the root is *not* materialised;
    use ``with_context((0, 0, 1, 0))`` when an ambient context is needed.
    """
    builder = TreeBuilder()

    def attach(base: Path, node: ComputationTree, parent_bit: int) -> None:
        bits = encode_configuration(params, node.config, parent_bit)
        builder.graft(base, gamma_paths(params, bits))
        kids = _computation_children(machine, node)
        if not kids:
            return
        chain_end = builder.add_chain(base, CHAIN_PREFIX)
        for branch, sub, recorded in kids:
            child_main = builder.add_chain(chain_end, (branch,))
            attach(child_main, sub, recorded)

    attach((), tree, root_parent_bit)
    return builder.build()


def beta_plus_cut(
    params: EncodingParams,
    machine: ATM,
    tree: ComputationTree,
    max_depth: int,
    root_parent_bit: int = 0,
) -> ZeroOneTree:
    """The ``max_depth``-cut of ``beta^+_T`` (halting configs repeated)."""
    builder = TreeBuilder()

    def attach(base: Path, node: ComputationTree, parent_bit: int) -> None:
        if len(base) > max_depth:
            return
        bits = encode_configuration(params, node.config, parent_bit)
        builder.graft(
            base,
            (p for p in gamma_paths(params, bits) if len(base) + len(p) <= max_depth),
        )
        if len(base) + len(CHAIN_PREFIX) + 1 > max_depth:
            return
        chain_end = builder.add_chain(base, CHAIN_PREFIX)
        kids = _computation_children(machine, node)
        if kids:
            for branch, sub, recorded in kids:
                attach(chain_end + (branch,), sub, recorded)
        else:
            for config, bit in _halting_repetition_children(node.config):
                attach(chain_end + (bit,), ComputationTree(config, ()), bit)

    attach((), tree, root_parent_bit)
    return builder.build(context=(0, 0, 1, 0)).cut(max_depth)


def ideal_tree_cut(
    params: EncodingParams,
    machine: ATM,
    word: Sequence[str],
    tree_chooser: Callable[[int], ComputationTree],
    max_depth: int,
    root_parent_bit: int = 0,
) -> ZeroOneTree:
    """The ``max_depth``-cut of an ideal tree.

    ``tree_chooser(i)`` supplies the ``i``-th computation tree used (the
    root uses index 0; restarts below bit-leaves use increasing indices,
    so a constant function realises the single-tree ideal trees used in
    the Lemma 4 argument).
    """
    builder = TreeBuilder()
    counter = itertools.count(1)

    def attach_config_tree(
        base: Path, node: ComputationTree, parent_bit: int
    ) -> None:
        if len(base) > max_depth:
            return
        bits = encode_configuration(params, node.config, parent_bit)
        for gpath in gamma_paths(params, bits):
            if len(base) + len(gpath) > max_depth:
                builder.add_path(base + gpath[: max_depth - len(base)])
                continue
            leaf = base + gpath
            builder.add_path(leaf)
            restart(leaf)
        if len(base) + len(CHAIN_PREFIX) + 1 > max_depth:
            if len(base) < max_depth:
                builder.add_chain(base, CHAIN_PREFIX[: max_depth - len(base)])
            return
        chain_end = builder.add_chain(base, CHAIN_PREFIX)
        kids = _computation_children(machine, node)
        if kids:
            for branch, sub, recorded in kids:
                attach_config_tree(chain_end + (branch,), sub, recorded)
        else:
            for config, bit in _halting_repetition_children(node.config):
                attach_config_tree(
                    chain_end + (bit,), ComputationTree(config, ()), bit
                )

    def restart(bit_leaf: Path) -> None:
        """Attach fresh computation trees below a configuration bit-leaf."""
        if len(bit_leaf) + len(CHAIN_PREFIX) + 1 > max_depth:
            if len(bit_leaf) < max_depth:
                builder.add_chain(
                    bit_leaf, CHAIN_PREFIX[: max_depth - len(bit_leaf)]
                )
            return
        chain_end = builder.add_chain(bit_leaf, CHAIN_PREFIX)
        for bit in (0, 1):
            attach_config_tree(
                chain_end + (bit,), tree_chooser(next(counter)), bit
            )

    attach_config_tree((), tree_chooser(0), root_parent_bit)
    return builder.build(context=(0, 0, 1, 0)).cut(max_depth)


def desired_tree_cut(
    params: EncodingParams,
    machine: ATM,
    word: Sequence[str],
    tree: ComputationTree,
    max_depth: int,
) -> ZeroOneTree:
    """An ``max_depth``-cut of the desired tree repeating ``tree``."""
    return ideal_tree_cut(
        params, machine, word, lambda _i: tree, max_depth
    )


# ---------------------------------------------------------------------------
# Suffix decomposition and node-correctness predicates (Sec. 3.3.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SuffixShape:
    """The unique ``001* (111*)^l w`` decomposition of a path suffix.

    ``blocks`` is the paper's ``l`` (complete ``111*`` blocks after the
    anchor) and ``tail`` is ``w``.  ``valid`` is False when the remainder
    does not parse, which in a desired tree never happens.
    """

    blocks: int
    tail: Path
    anchor: int
    valid: bool

    def k(self) -> int:
        """The suffix length ``k = 4 + 4l + |w|``."""
        return 4 + 4 * self.blocks + len(self.tail)


def suffix_decomposition(labels: Sequence[int]) -> SuffixShape | None:
    """Decompose ``labels`` (a full root-to-node edge path) at the last
    ``0,0,1,*`` anchor.  Returns None when no anchor exists."""
    labels = tuple(labels)
    anchor = -1
    for j in range(len(labels) - 4, -1, -1):
        if labels[j : j + 3] == CHAIN_PREFIX:
            anchor = j
            break
    if anchor < 0:
        return None
    rest = labels[anchor + 4 :]
    blocks = 0
    while len(rest) >= 4 and rest[:3] == GAMMA_PREFIX:
        blocks += 1
        rest = rest[4:]
    is_prefix = rest == GAMMA_PREFIX[: len(rest)] or rest == CHAIN_PREFIX[: len(rest)]
    return SuffixShape(blocks, rest, anchor, len(rest) <= 3 and is_prefix)


def is_main_path(labels: Sequence[int]) -> bool:
    """True iff the path ends with a ``0,0,1,*`` pattern (a main node)."""
    labels = tuple(labels)
    return len(labels) >= 4 and labels[-4:-1] == CHAIN_PREFIX


def is_good(params: EncodingParams, tree: ZeroOneTree, node: Path) -> bool:
    """Goodness: shallow, or a ``001*`` pattern within the last 4d+11 edges."""
    window_len = 4 * params.d + 11
    labels = tree.full_label_path(node)
    if len(labels) < window_len:
        return True
    window = labels[-window_len:]
    return any(
        window[j : j + 3] == CHAIN_PREFIX for j in range(len(window) - 3)
    )


def _branching_requirement(
    params: EncodingParams, shape: SuffixShape
) -> str:
    """What children a node with this suffix shape must have.

    One of ``"both"``, ``"only0"``, ``"only1"``, ``"one"`` (exactly one
    child of either label) or ``"invalid"``.
    """
    d = params.d
    l, w = shape.blocks, shape.tail
    if not shape.valid:
        return "invalid"
    if w == ():
        if l == 0:
            return "both"          # a main node branches into gamma and chain
        if l <= d:
            return "only1"         # between address blocks: continue 111
        if l == d + 1:
            return "only0"         # a bit-leaf: continue into the 001 chain
        return "invalid"
    if w in ((1,), (1, 1)):
        return "only1"
    if w == (1, 1, 1):
        if l < d:
            return "both"          # address bit: both children
        if l == d:
            return "one"           # content bit: exactly one child
        return "invalid"
    if w == (0,):
        return "only0"
    if w == (0, 0):
        return "only1"
    if w == (0, 0, 1):
        return "both"              # chain end branches to two main nodes
    return "invalid"


def is_properly_branching(
    params: EncodingParams, tree: ZeroOneTree, node: Path
) -> bool:
    """Conditions (pb1)--(pb4) in our block-indexing convention.

    Leaves are never properly branching (the caller exempts nodes at the
    cut frontier).
    """
    children = tree.children(node)
    if not children:
        return False
    shape = suffix_decomposition(tree.full_label_path(node))
    if shape is None:
        # No anchor above: only the virtual top of a desired tree; treat
        # as unconstrained except for being a non-leaf.
        return True
    requirement = _branching_requirement(params, shape)
    if requirement == "both":
        return children == (0, 1)
    if requirement == "only0":
        return children == (0,)
    if requirement == "only1":
        return children == (1,)
    if requirement == "one":
        return len(children) == 1
    return False


def read_config_bits(
    params: EncodingParams, tree: ZeroOneTree, main: Path
) -> dict[int, int]:
    """The readable bits of the configuration represented at ``main``.

    Follows every complete ``(111 a)^d 111 v`` path below ``main``;
    addresses whose value edge is cut off are absent from the result.
    """
    found: dict[int, int] = {}
    # Walk the gamma portion: nodes reached by alternating 111 / bit.
    def walk(node: Path, address_bits: list[int], level: int) -> None:
        if level == params.d + 1:
            address = 0
            for bit in address_bits[:-1]:
                address = (address << 1) | bit
            found[address] = address_bits[-1]
            return
        probe = node
        for bit in GAMMA_PREFIX:
            probe = probe + (bit,)
            if probe not in tree:
                return
        for value in tree.children(probe):
            walk(probe + (value,), address_bits + [value], level + 1)

    walk(main, [], 0)
    return found


def read_full_configuration(
    params: EncodingParams, tree: ZeroOneTree, main: Path
) -> tuple[Configuration, int] | None:
    """Decode the configuration at ``main`` if its content is readable.

    All *meaningful* addresses (state, head, cells, parent bit) must have
    their value edge present; padding addresses are ignored, matching the
    convention that desired trees leave them unconstrained.
    """
    bits = read_config_bits(params, tree, main)
    meaningful = params.meaningful_addresses()
    if not meaningful <= bits.keys():
        return None
    sequence = tuple(
        bits.get(i, 0) if i in meaningful else 0 for i in range(params.seq_len)
    )
    from .params import decode_configuration

    try:
        return decode_configuration(params, sequence)
    except ValueError:
        return None


def read_configuration_status(
    params: EncodingParams, tree: ZeroOneTree, main: Path
) -> tuple[str, tuple[Configuration, int] | None]:
    """Like :func:`read_full_configuration` but distinguishing failures.

    Returns ``("ok", (config, parent_bit))``, ``("cut", None)`` when some
    meaningful bit is missing from the (possibly cut) tree, or
    ``("invalid", None)`` when all bits are present but do not decode
    (an out-of-range state or symbol code).
    """
    bits = read_config_bits(params, tree, main)
    meaningful = params.meaningful_addresses()
    if not meaningful <= bits.keys():
        return "cut", None
    sequence = tuple(
        bits.get(i, 0) if i in meaningful else 0 for i in range(params.seq_len)
    )
    from .params import decode_configuration

    try:
        decoded = decode_configuration(params, sequence)
    except ValueError:
        return "invalid", None
    # Decoding ignores in-block padding; re-encode to catch garbage
    # there (the formulas check those bits, so the reference must too).
    config, parent_bit = decoded
    expected = encode_configuration(params, config, parent_bit)
    if any(expected[a] != bits[a] for a in meaningful):
        return "invalid", None
    return "ok", decoded


def _expected_grandchildren(
    machine: ATM, config: Configuration, choice: int
) -> tuple[Configuration, Configuration] | None:
    """OR-grandchildren of ``config`` via AND-child ``choice``."""
    kids = successors(machine, config)
    if not kids:
        return None
    and_config = kids[choice]
    grand = successors(machine, and_config)
    if not grand:
        return None
    return grand[0], grand[1]


def is_properly_computing(
    params: EncodingParams, machine: ATM, tree: ZeroOneTree, node: Path
) -> bool:
    """Transition consistency at a main node (vacuous if bits are cut off).

    For a halting configuration the children must repeat it with parent
    bits 0 and 1; otherwise both children must be the OR-grandchildren
    through a common AND-choice ``z`` recorded in both parent bits.
    """
    labels = tree.full_label_path(node)
    if not is_main_path(labels):
        return True
    status, decoded = read_configuration_status(params, tree, node)
    if status == "cut":
        return True
    if status == "invalid":
        return False
    config, _parent = decoded
    child_mains = {}
    chain = node + CHAIN_PREFIX
    for branch in (0, 1):
        main = chain + (branch,)
        if main not in tree:
            continue
        child_status, child = read_configuration_status(params, tree, main)
        if child_status == "invalid":
            return False
        if child_status == "cut":
            continue
        child_mains[branch] = child
    if len(child_mains) < 2:
        return True
    (c0, bit0), (c1, bit1) = child_mains[0], child_mains[1]
    if machine.is_halting(config.state):
        return c0 == config and c1 == config and bit0 == 0 and bit1 == 1
    if bit0 != bit1:
        return False
    expected = _expected_grandchildren(machine, config, bit0)
    if expected is None:
        return False
    return (c0, c1) == expected


def is_properly_initialising(
    params: EncodingParams,
    machine: ATM,
    word: Sequence[str],
    tree: ZeroOneTree,
    node: Path,
) -> bool:
    """Restart check: a main node after a bit-leaf must carry ``c_init(w)``.

    Such nodes are recognised by ``P^8 = 111* 001*``; the recorded parent
    bit must equal the incoming branch bit, and every readable bit must
    agree with the encoding of the initial configuration.
    """
    labels = tree.full_label_path(node)
    if len(labels) < 8:
        return True
    p8 = labels[-8:]
    if not (p8[0:3] == GAMMA_PREFIX and p8[4:7] == CHAIN_PREFIX):
        return True
    incoming = labels[-1]
    init = initial_configuration(machine, word, params.cells)
    expected = encode_configuration(params, init, incoming)
    meaningful = params.meaningful_addresses()
    readable = read_config_bits(params, tree, node)
    return all(
        expected[addr] == bit
        for addr, bit in readable.items()
        if addr in meaningful
    )


def represents_reject(
    params: EncodingParams, machine: ATM, tree: ZeroOneTree, node: Path
) -> bool:
    """True iff ``node`` is a main node whose state bits decode q_reject."""
    if not is_main_path(tree.full_label_path(node)):
        return False
    readable = read_config_bits(params, tree, node)
    state_bits = []
    for i in range(params.n_q):
        if i not in readable:
            return False
        state_bits.append(readable[i])
    code = 0
    for bit in state_bits:
        code = (code << 1) | bit
    if code >= len(machine.states):
        return False
    return machine.states[code] == machine.q_reject


def is_correct(
    params: EncodingParams,
    machine: ATM,
    word: Sequence[str],
    tree: ZeroOneTree,
    node: Path,
) -> bool:
    """Correctness = good, properly branching, initialising and computing."""
    return (
        is_good(params, tree, node)
        and is_properly_branching(params, tree, node)
        and is_properly_initialising(params, machine, word, tree, node)
        and is_properly_computing(params, machine, tree, node)
    )


def incorrect_nodes(
    params: EncodingParams,
    machine: ATM,
    word: Sequence[str],
    tree: ZeroOneTree,
    frontier: int,
) -> list[Path]:
    """All nodes of depth < ``frontier`` that are incorrect in ``tree``."""
    bad = [
        node
        for node in tree.nodes()
        if len(node) < frontier
        and not is_correct(params, machine, word, tree, node)
    ]
    return sorted(bad)


def reject_main_nodes(
    params: EncodingParams,
    machine: ATM,
    word: Sequence[str],
    tree: ZeroOneTree,
    frontier: int,
) -> list[Path]:
    """Main nodes of depth < ``frontier`` representing q_reject."""
    return sorted(
        node
        for node in tree.nodes()
        if len(node) < frontier
        and represents_reject(params, machine, tree, node)
    )


def node_correctness_report(
    params: EncodingParams,
    machine: ATM,
    word: Sequence[str],
    tree: ZeroOneTree,
    node: Path,
) -> dict[str, bool]:
    """Per-property verdicts for one node (diagnostics and tests)."""
    return {
        "good": is_good(params, tree, node),
        "properly_branching": is_properly_branching(params, tree, node),
        "properly_initialising": is_properly_initialising(
            params, machine, word, tree, node
        ),
        "properly_computing": is_properly_computing(params, machine, tree, node),
        "represents_reject": represents_reject(params, machine, tree, node),
    }
