"""The :class:`Session` facade: one typed configuration + execution
context for the whole engine.

A session owns a frozen :class:`~repro.core.config.EngineConfig` and
*all* mutable engine state that used to live in module globals: the hom
backend choice and LRU hom-cache
(:class:`~repro.core.homengine.HomEngine`), the cactus factory pool and
cross-factory structure intern
(:class:`~repro.core.cactus.CactusState`), and the shard executor with
its parallel thresholds (:class:`~repro.core.runtime.PoolRuntime`).
Two sessions never share state, so two differently-configured
evaluations — say ``backend="naive"`` against ``backend="bitset"``,
or a big pool against a serial run — can live side by side in one
process::

    from repro import EngineConfig, Session

    fast = Session(EngineConfig(backend="bitset"))
    oracle = Session(EngineConfig(backend="naive", hom_cache=False))
    assert fast.certain_answer(q, d) == oracle.certain_answer(q, d)

Configuration precedence is ``env < config < per-call kwarg``: the
environment is only read by :meth:`EngineConfig.from_env` (which backs
the default session), an explicit config overrides it, and per-call
keywords (``backend=``, ``workers=`` ...) override the config for one
call.

The module-level :func:`default_session` preserves the pre-Session
behaviour: it is created lazily from the environment on first use, and
every free function in the package (``certain_answer``, ``decide``,
``ucq_certain_answers``, ``screen_zoo``, ``find_homomorphism``, the
``configure_*`` knobs ...) is a thin shim over it.  Code that never
constructs a session keeps working unchanged.
"""

from __future__ import annotations

import threading
import warnings
from typing import Iterable, Sequence

from .core import boundedness as _boundedness
from .core import cactus as _cactus
from .core import decomp as _decomp
from .core import dsirup as _dsirup
from .core import errors as _errors
from .core import homengine as _homengine
from .core import runtime as _runtime
from .core import semiring as _semiring
from .core import store as _store
from .core.config import EngineConfig
from .core.structure import Structure

__all__ = [
    "EngineConfig",
    "Session",
    "default_session",
    "reset_default_session",
    "set_default_session",
]


class Session:
    """An isolated engine instance: config + caches + pools.

    Construct with an :class:`EngineConfig` (or nothing, for the
    hardcoded defaults — note that, unlike :func:`default_session`,
    ``Session()`` deliberately ignores the environment; use
    ``Session(EngineConfig.from_env())`` to honour it).  Sessions are
    cheap: state is created eagerly but empty, caches fill on use.

    The paper's end-to-end operations are methods —
    :meth:`certain_answer`, :meth:`decide_boundedness`,
    :meth:`evaluate`, :meth:`screen` — alongside the engine-level
    entry points (:meth:`find_homomorphism`, :meth:`evaluate_batch`,
    :meth:`probe_boundedness`, ...).  Every method accepts the same
    per-call overrides as the free functions.
    """

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config or EngineConfig()
        self.hom = _homengine.HomEngine(self.config)
        self.cactus = _cactus.CactusState(self.config)
        self.pool = _runtime.PoolRuntime(self.config)
        # Durable disk tier (None unless cache_dir is configured):
        # layered under the hom LRU and the decomp plan intern, and the
        # home of screen/probe checkpoint rows.  Workers build their
        # own Session from the shipped config and thus open the same
        # store file (sqlite WAL makes that safe).
        self.store = _store.DurableStore.open(
            self.config.cache_dir,
            self.config.cache_bytes,
            self.config.durability,
        )
        if self.store is not None:
            self.hom.attach_store(self.store)
            _decomp.set_plan_store(self.store)
        # The operation-wide budget installed by governed_scope() (or
        # the service tier's per-job scope) while a top-level governed
        # operation runs on the *current thread*; None otherwise.  The
        # slot is thread-local: concurrent operations on one session —
        # e.g. two same-tenant service jobs on executor threads — each
        # govern their own budget, so one job's cancel hook, deadline
        # or fuel can never leak into a sibling's kernels.
        self._budget_slot = threading.local()
        self._closed = False

    @property
    def active_budget(self):
        """The budget governing the current thread's in-flight
        operation (None when ungoverned).  Per-thread by design — see
        ``__init__``; read and written by
        :func:`~repro.core.errors.governed_scope` /
        :func:`~repro.core.errors.call_budget`."""
        return getattr(self._budget_slot, "budget", None)

    @active_budget.setter
    def active_budget(self, budget) -> None:
        self._budget_slot.budget = budget

    def __repr__(self) -> str:
        return (
            f"Session(backend={self.hom.default_backend!r}, "
            f"workers={self.pool.workers}, "
            f"hom_cache={self.hom.cache_maxsize if self.hom.cache_enabled else 'off'})"
        )

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release worker processes and drop every cache.

        Idempotent: closing an already-closed session is a no-op unless
        the session was used again in between (pools respawn lazily and
        engine use refills caches, so renewed use re-arms ``close``).
        Scoped usage — ``with session:`` — therefore never leaks
        process pools and double-``close`` never trips.
        """
        if self._closed and not self.pool.info().running:
            return
        self.pool.shutdown()
        self.clear_caches()
        if self.store is not None:
            self.store.close()
            _decomp.clear_plan_store(self.store)
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def clear_caches(self) -> None:
        """Drop the hom-cache, the factory pool and the intern table."""
        self.hom.clear_cache()
        self.cactus.clear()

    def resolve_backend(
        self,
        backend: str | None = None,
        target: Structure | None = None,
        source: Structure | None = None,
    ) -> str:
        """The concrete backend a call would use: per-call ``backend``
        beats the config default; ``auto`` resolves per call from the
        ``source``'s cached decomposition width (tree-shaped queries
        route to ``decomp``) and the ``target``'s size/density."""
        return self.hom.resolve_backend(backend, target, source)

    # -- engine-level entry points --------------------------------------

    def find_homomorphism(self, source, target, *args, **kwargs):
        """:func:`repro.core.homengine.find_homomorphism` in this session."""
        return _homengine.find_homomorphism(
            source, target, *args, session=self, **kwargs
        )

    def has_homomorphism(self, source, target, *args, **kwargs) -> bool:
        """:func:`repro.core.homengine.has_homomorphism` in this session."""
        return _homengine.has_homomorphism(
            source, target, *args, session=self, **kwargs
        )

    def iter_homomorphisms(self, source, target, *args, **kwargs):
        """:func:`repro.core.homengine.iter_homomorphisms` in this session."""
        return _homengine.iter_homomorphisms(
            source, target, *args, session=self, **kwargs
        )

    def count_homomorphisms(self, source, target, *args, **kwargs) -> int:
        """The number of homomorphisms ``source -> target`` — a thin
        wrapper over the COUNT instance of the semiring surface
        (``self.evaluate(source, target, semiring="count")``), kept as
        a method because exact integer counting is the engine's most
        common non-Boolean ask.  Ungoverned sessions return a plain
        int; a governed budget that trips *raises*
        :class:`~repro.core.errors.ResourceExhausted` (counts have no
        partial value — use :meth:`evaluate` for the tri-state view).
        """
        return _homengine._count_homomorphisms(
            source, target, *args, session=self, **kwargs
        )

    def covers_any(self, target, sources, *args, **kwargs) -> bool:
        """:func:`repro.core.homengine.covers_any` in this session."""
        return _homengine.covers_any(
            target, sources, *args, session=self, **kwargs
        )

    def evaluate_batch(self, query, instances, *, semiring=None, **kwargs):
        """Sharded one-query/many-instances evaluation.

        With ``semiring=None`` (default), the Boolean fast path
        (:func:`repro.core.runtime.parallel_evaluate_batch`): a list of
        bools — on a governed session, settled entries stay plain bools
        and entries after a tripped budget are ``Answer`` UNKNOWNs
        (the outermost-surface contract).  With a ``semiring=`` (name
        or instance, plus optional ``weights=``), one
        :class:`~repro.core.semiring.Evaluation` per instance via
        :func:`repro.core.runtime.parallel_semiring_batch`, tripped
        entries carrying ``reason`` instead.
        """
        if semiring is None:
            return _runtime.parallel_evaluate_batch(
                query, instances, session=self, **kwargs
            )
        return _runtime.parallel_semiring_batch(
            query, instances, semiring, session=self, **kwargs
        )

    def cactus_factory(self, one_cq):
        """This session's pooled cactus factory for ``one_cq``."""
        return self.cactus.factory(one_cq)

    def iter_cactuses(self, one_cq, max_depth: int, max_count=None):
        """Stream cactuses out of this session's pooled factory."""
        return _cactus.iter_cactuses(
            one_cq, max_depth, max_count, session=self
        )

    def probe_boundedness(self, one_cq, probe_depth: int, **kwargs):
        """:func:`repro.core.boundedness.probe_boundedness` here."""
        return _boundedness.probe_boundedness(
            one_cq, probe_depth, session=self, **kwargs
        )

    def ucq_rewriting(self, one_cq, depth: int) -> list[Structure]:
        """:func:`repro.core.boundedness.ucq_rewriting` here."""
        return _boundedness.ucq_rewriting(one_cq, depth, session=self)

    def ucq_certain_answers(self, ucq, instances, **kwargs) -> list[bool]:
        """:func:`repro.core.boundedness.ucq_certain_answers` here."""
        return _boundedness.ucq_certain_answers(
            ucq, instances, session=self, **kwargs
        )

    def hom_cache_info(self):
        """Hit/miss counters and occupancy of this session's hom-cache."""
        return self.hom.cache_info()

    def pool_info(self):
        """Configuration and liveness of this session's shard executor."""
        return self.pool.info()

    def metrics(self) -> dict:
        """Every engine counter of this session as one plain-data dict:
        hom-cache hits/misses/occupancy, pool configuration/liveness/
        failure bookkeeping, and (when a durable store is attached) the
        store's lifetime traffic and occupancy.  JSON-serialisable by
        construction — the payload behind the service tier's
        ``GET /v1/metrics``."""
        cache = self.hom.cache_info()
        pool = self.pool.info()
        out = {
            "hom_cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "size": cache.size,
                "maxsize": cache.maxsize,
                "enabled": cache.enabled,
            },
            "pool": {
                "workers": pool.workers,
                "min_batch": pool.min_batch,
                "running": pool.running,
                "quarantined": pool.broken,
                "failures": pool.failures,
                "last_fallback": pool.last_fallback,
            },
            "store": None,
        }
        if self.store is not None:
            stats = self.store.stats()
            out["store"] = {
                "path": stats.path,
                "enabled": stats.enabled,
                "entries": stats.entries,
                "bytes": stats.total_bytes,
                "hits": stats.hits,
                "misses": stats.misses,
                "writes": stats.writes,
                "corrupt_dropped": stats.corrupt_dropped,
                "quarantined_files": stats.quarantined,
                "namespaces": {ns: n for ns, n in stats.namespaces},
            }
        return out

    # -- the paper's end-to-end operations ------------------------------

    def certain_answer(
        self, q: Structure, data: Structure, strategy: str = "auto"
    ) -> "bool | _errors.Answer":
        """Certain answer to the d-sirup ``(Δ_q, G)`` over ``data``
        (:func:`repro.core.dsirup.certain_answer`).

        Outermost-surface contract: on a governed session
        (``deadline_ms`` / ``hom_fuel`` set) a tripped budget yields
        ``Answer.unknown(reason)`` instead of an exception or a hang;
        ungoverned sessions always return a plain bool.
        """
        try:
            return _dsirup.evaluate_dsirup(
                q, data, strategy, session=self
            ).certain
        except _errors.ResourceExhausted as exc:
            return _errors.Answer.unknown(exc.reason)

    def evaluate(
        self,
        q: Structure,
        data: Structure,
        semiring: "str | _semiring.Semiring" = "bool",
        *,
        weights=None,
        backend: str | None = None,
        seed=None,
        restrict_image=None,
        use_cache: bool | None = None,
        strategy: str | None = None,
    ) -> "_semiring.Evaluation":
        """Evaluate the CQ ``q`` over ``data`` under a commutative
        semiring — the unified evaluation surface.

        ``semiring`` is a registered name (``"bool"``, ``"count"``,
        ``"prob"``, ``"minplus"``, ``"maxplus"``, ``"why"``) or a
        :class:`~repro.core.semiring.Semiring` instance; ``weights``
        optionally annotates individual facts of ``data``.  Returns a
        typed :class:`~repro.core.semiring.Evaluation` whose ``value``
        is ``⊕`` over all homomorphisms of the ``⊗`` of per-atom fact
        weights, with ``.answer`` giving the
        :class:`~repro.core.errors.Answer`-compatible tri-state view.

        Outermost-surface contract: on a governed session a tripped
        budget never raises — the returned ``Evaluation`` has
        ``value=None`` and ``reason`` set (so ``.answer`` is
        UNKNOWN(reason)); ungoverned sessions always return a settled
        value.

        .. deprecated::
            ``Session.evaluate(q, data, strategy)`` (the d-sirup
            certain-answer procedure) moved to
            :meth:`evaluate_dsirup`; passing a d-sirup strategy name or
            a ``strategy=`` keyword here warns and delegates.
        """
        if strategy is not None or (
            isinstance(semiring, str)
            and semiring in _dsirup.DSIRUP_STRATEGIES
        ):
            warnings.warn(
                "Session.evaluate(q, data, strategy) is deprecated; "
                "use Session.evaluate_dsirup(q, data, strategy) — "
                "evaluate() now takes a semiring",
                DeprecationWarning,
                stacklevel=2,
            )
            return self.evaluate_dsirup(
                q, data, strategy if strategy is not None else semiring
            )
        sr = _semiring.resolve_semiring(semiring)
        try:
            with _errors.governed_scope(self):
                return _homengine.semiring_evaluate(
                    q,
                    data,
                    sr,
                    seed,
                    restrict_image,
                    weights=weights,
                    backend=backend,
                    use_cache=use_cache,
                    session=self,
                )
        except _errors.ResourceExhausted as exc:
            return _semiring.Evaluation(
                None,
                sr.name,
                backend if backend is not None else self.hom.default_backend,
                reason=exc.reason,
            )

    def evaluate_dsirup(
        self, q: Structure, data: Structure, strategy: str = "auto"
    ):
        """Full d-sirup certain-answer evaluation with countermodel
        bookkeeping (:func:`repro.core.dsirup.evaluate_dsirup`) — the
        renamed former ``Session.evaluate``.

        An *inner* structured surface: a governed budget that trips
        raises :class:`~repro.core.errors.ResourceExhausted`; use
        :meth:`certain_answer` for the tri-state outermost view.
        """
        return _dsirup.evaluate_dsirup(q, data, strategy, session=self)

    def decide_boundedness(self, q, probe_depth: int = 3):
        """Route ``q`` to the strongest boundedness decider
        (:func:`repro.decide.decide_boundedness`)."""
        from .decide import decide_boundedness

        return decide_boundedness(q, probe_depth, session=self)

    def screen(
        self,
        queries: Sequence[Structure],
        instances: Iterable[Structure],
        *,
        stream: bool = False,
        backend: str | None = None,
        workers: int | None = None,
        min_batch: int | None = None,
        on_shard=None,
    ):
        """Screen a pool of Boolean CQs over one instance family.

        With ``stream=False`` (default) returns the full answer matrix
        ``result[qi][di]`` (:func:`repro.core.runtime.parallel_screen`).
        With ``stream=True`` returns a *completion-ordered* iterator of
        :class:`~repro.core.runtime.ScreenShard` results — each shard
        covers a contiguous instance range and arrives as soon as its
        worker finishes, so a long screen surfaces answers early
        instead of blocking until the slowest shard.

        ``on_shard(shard)`` (non-streaming only) is the shard-completion
        hook: it fires with each settled
        :class:`~repro.core.runtime.ScreenShard` while the full matrix
        is still being assembled — progress reporting for callers (the
        service tier's job manager) that want the matrix *and* early
        visibility, without consuming a stream.
        """
        kwargs = dict(
            backend=backend,
            workers=workers,
            min_batch=min_batch,
            session=self,
        )
        if stream:
            if on_shard is not None:
                raise ValueError(
                    "on_shard= is for the non-streaming screen; a "
                    "stream=True consumer already sees every shard"
                )
            return _runtime.parallel_screen_stream(
                queries, instances, **kwargs
            )
        return _runtime.parallel_screen(
            queries, instances, on_shard=on_shard, **kwargs
        )

    def screen_zoo(self, instances: list[Structure], probe_depth: int = 3):
        """Bulk-classify the paper's query zoo and screen ``instances``
        (:func:`repro.zoo.screen_zoo`) inside this session."""
        from .zoo import screen_zoo

        return screen_zoo(instances, probe_depth, session=self)


# ----------------------------------------------------------------------
# The default session
# ----------------------------------------------------------------------

_DEFAULT: Session | None = None


def default_session() -> Session:
    """The process-wide default session backing every free function.

    Created lazily from :meth:`EngineConfig.from_env` on first use —
    *not* at import time, so tests that monkeypatch ``REPRO_*``
    variables before first engine use see them honoured, and
    :func:`reset_default_session` re-reads a changed environment.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Session(EngineConfig.from_env())
    return _DEFAULT


def set_default_session(session: Session) -> Session | None:
    """Install ``session`` as the process default; returns the previous
    default (which keeps its state and can be re-installed, but is no
    longer shut down automatically)."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = session
    return previous


def reset_default_session() -> None:
    """Drop the default session (shutting down its pool); the next free
    -function call builds a fresh one from the current environment."""
    global _DEFAULT
    if _DEFAULT is not None:
        _DEFAULT.pool.shutdown()
    _DEFAULT = None
