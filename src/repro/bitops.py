"""Tiny MSB-first bit-vector helpers shared across subpackages.

Kept dependency-free so that both :mod:`repro.atm` (configuration
encodings) and :mod:`repro.circuits` (formula builders) can use them
without import cycles.
"""

from __future__ import annotations

from typing import Sequence

Bits = tuple[int, ...]


def int_to_bits(value: int, width: int) -> Bits:
    """``value`` as ``width`` bits, most significant first."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"{value} does not fit in {width} bits")
    return tuple((value >> (width - 1 - i)) & 1 for i in range(width))


def bits_to_int(bits: Sequence[int]) -> int:
    """Interpret an MSB-first bit sequence as an integer."""
    value = 0
    for bit in bits:
        value = (value << 1) | (bit & 1)
    return value
