"""repro: a reproduction of "Deciding Boundedness of Monadic Sirups"
(Kikot, Kurucz, Podolskii, Zakharyaschev; PODS 2021).

The package implements, from scratch:

* the paper's query classes (CQs with F/T labels, 1-CQs, d-sirups),
* a monadic datalog engine and the programs ``Pi_q`` / ``Sigma_q``,
* cactus expansions and the boundedness criterion of Proposition 2,
* the ditree classification of Section 4 (Theorems 7, 9, 11) with the
  exact Lambda-CQ FO/L decider of Appendix F,
* the Theorem 3 2ExpTime-hardness construction (ATMs, 01-tree encodings,
  Boolean-circuit gadget queries),
* the Schema.org / DL-Lite_bool bridge of Proposition 5.

Quick start::

    from repro import zoo, certain_answer
    print(certain_answer(zoo.q2(), zoo.d2()))   # True (Example 2)

For anything beyond one-off calls, build an explicit execution
context — a :class:`~repro.session.Session` owning a frozen
:class:`~repro.core.config.EngineConfig` (backend, caches, process
pool)::

    from repro import EngineConfig, Session
    with Session(EngineConfig(backend="auto", workers=8)) as s:
        print(s.certain_answer(zoo.q2(), zoo.d2()))

The free functions above remain supported shims over the default
session (configured from the ``REPRO_*`` environment on first use).

Subpackages (imported on demand): :mod:`repro.core` (structures,
datalog, cactuses, boundedness), :mod:`repro.ditree` (Section 4
classifiers and the Lambda-CQ decider), :mod:`repro.circuits` and
:mod:`repro.atm` (the Theorem 3 construction), :mod:`repro.obda`
(Proposition 5), :mod:`repro.workloads` (generators).
"""

from .core import (
    A,
    Answer,
    BOOL,
    Budget,
    COUNT,
    CactusBudgetExceeded,
    DeadlineExceeded,
    EngineConfig,
    EngineError,
    Evaluation,
    F,
    FuelExhausted,
    MAXPLUS,
    MINPLUS,
    OneCQ,
    PROB,
    Program,
    R,
    ResourceExhausted,
    Rule,
    S,
    Semiring,
    Structure,
    StructureBuilder,
    T,
    UnknownSemiring,
    Verdict,
    WHY,
    WorkerFailure,
    cactus_factory,
    certain_answer,
    compile_programs,
    covers_any,
    evaluate_batch,
    find_homomorphism,
    full_cactus,
    get_default_backend,
    has_homomorphism,
    initial_cactus,
    is_one_cq,
    iter_cactuses,
    path_structure,
    probe_boundedness,
    register_semiring,
    registered_semirings,
    resolve_semiring,
    semiring_evaluate,
    set_default_backend,
    ucq_certain_answers,
    ucq_rewriting,
)
from .session import (
    Session,
    default_session,
    reset_default_session,
    set_default_session,
)

__version__ = "1.1.0"

__all__ = [
    "A",
    "Answer",
    "BOOL",
    "Budget",
    "COUNT",
    "CactusBudgetExceeded",
    "DeadlineExceeded",
    "EngineConfig",
    "EngineError",
    "Evaluation",
    "F",
    "FuelExhausted",
    "MAXPLUS",
    "MINPLUS",
    "OneCQ",
    "PROB",
    "Program",
    "R",
    "ResourceExhausted",
    "Rule",
    "S",
    "Semiring",
    "UnknownSemiring",
    "WHY",
    "WorkerFailure",
    "Session",
    "Structure",
    "StructureBuilder",
    "T",
    "Verdict",
    "cactus_factory",
    "certain_answer",
    "compile_programs",
    "covers_any",
    "default_session",
    "evaluate_batch",
    "find_homomorphism",
    "full_cactus",
    "get_default_backend",
    "has_homomorphism",
    "initial_cactus",
    "is_one_cq",
    "iter_cactuses",
    "path_structure",
    "probe_boundedness",
    "register_semiring",
    "registered_semirings",
    "reset_default_session",
    "resolve_semiring",
    "semiring_evaluate",
    "set_default_backend",
    "set_default_session",
    "ucq_certain_answers",
    "ucq_rewriting",
    "__version__",
]
