"""Commutative semirings: one algebra, every evaluation mode.

The engine's two structural backends were always one abstraction step
away from weighted query evaluation: the ``decomp`` DP counts by bag
*products* and *sums*, and the ``matrix`` backend's AC-3 support step is
a *boolean-semiring* matrix-vector product.  This module supplies the
missing abstraction — a :class:`Semiring` protocol plus a registry of
instances — so one evaluation surface (``Session.evaluate(q, data,
semiring=...)``) answers

* Boolean certain answers (``bool``, the classic hom-existence check),
* homomorphism counts (``count``, exact python ints),
* expected witness mass over tuple-independent probabilistic instances
  (``prob``, float64),
* cheapest / most expensive witness cost (``minplus`` / ``maxplus``),
* and why-provenance (``why``: the polynomial of fact sets whose
  presence supports the answer).

Semantics
=========

A query ``q`` evaluated over data ``D`` under semiring ``K`` with a
fact annotation ``w : facts(D) -> K`` has value

    ``val(q, D) = ⊕_h ⊗_{atom a of q} w(h(a))``

summed over all homomorphisms ``h : q -> D`` — the standard K-relation
provenance semantics.  With every fact annotated ``one`` (the default)
this degenerates to the hom count mapped into ``K``: existence under
``bool``, the exact count under ``count``, ``0.0`` vs ``inf`` under
``minplus``.  Pass ``weights={fact: value, ...}`` to annotate facts
individually; unannotated facts default to :meth:`Semiring.annotate`
(``one`` everywhere except ``why``, where a fact annotates to its own
singleton witness set).

Note for ``prob``: ``⊕ = +`` over homomorphisms computes the *expected
number of witnesses* of a tuple-independent instance (exact, by
linearity of expectation), not the query probability — witnesses
sharing facts are not disjoint events.  It is the standard
sum-of-products provenance evaluation and an upper bound on the query
probability.

Every instance is commutative and satisfies the semiring axioms
(associativity, commutativity, identities, distributivity,
annihilation); ``tests/test_semiring.py`` property-checks all of them
for every registered instance.

Instances are *values*: pass either the registered name (``"count"``)
or a :class:`Semiring` object anywhere a ``semiring=`` argument is
accepted; :func:`resolve_semiring` normalises.  Third-party semirings
register via :func:`register_semiring`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from .errors import Answer, UnknownSemiring
from .structure import BinaryFact, Node, Structure, UnaryFact, _canonical_key

__all__ = [
    "BOOL",
    "COUNT",
    "Evaluation",
    "MAXPLUS",
    "MINPLUS",
    "PROB",
    "Semiring",
    "WHY",
    "hom_weight",
    "register_semiring",
    "registered_semirings",
    "resolve_semiring",
]


@dataclass(frozen=True)
class Semiring:
    """A commutative semiring ``(K, ⊕, ⊗, zero, one)``.

    ``plus``/``times`` are the binary operations, ``zero``/``one`` their
    identities; ``zero`` must annihilate (``x ⊗ zero = zero``).
    ``dtype`` names the numpy-compatible carrier for the matrix
    backend's dtype dispatch (``"bool"``, ``"int"``, ``"float"``) or
    ``"object"`` for carriers with no dense representation (``why``).
    ``is_idempotent`` marks ``x ⊕ x = x`` (safe to skip duplicate
    work); ``is_selective`` marks the stronger ``x ⊕ y ∈ {x, y}``
    (min/max — an enumeration can carry an arg-best witness along).
    """

    name: str
    zero: Any
    one: Any
    plus: Callable[[Any, Any], Any]
    times: Callable[[Any, Any], Any]
    dtype: str = "object"
    is_idempotent: bool = False
    is_selective: bool = False
    # Default per-fact annotation; ``None`` means "constant one", which
    # the hot paths special-case (no lookups at all).
    annotate_fact: Callable[[Any], Any] | None = field(default=None, repr=False)
    # Per-dtype wire codecs for pool shards; identity unless the carrier
    # needs canonicalisation (``why`` sorts its witness sets so shard
    # answers are deterministic across worker processes).
    encode: Callable[[Any], Any] = field(default=lambda v: v, repr=False)
    decode: Callable[[Any], Any] = field(default=lambda v: v, repr=False)

    def annotate(self, fact) -> Any:
        """The default annotation of one fact (``one`` unless the
        instance overrides — ``why`` maps a fact to ``{{fact}}``)."""
        if self.annotate_fact is None:
            return self.one
        return self.annotate_fact(fact)

    def weight_of(self, fact, weights: Mapping | None) -> Any:
        """``weights[fact]`` when annotated, else the default."""
        if weights is not None:
            w = weights.get(fact)
            if w is not None:
                return w
        return self.annotate(fact)

    def sum(self, values) -> Any:
        total = self.zero
        for v in values:
            total = self.plus(total, v)
        return total

    def product(self, values) -> Any:
        total = self.one
        for v in values:
            total = self.times(total, v)
        return total

    def __repr__(self) -> str:  # the dataclass repr drowns in lambdas
        return f"Semiring({self.name!r})"


# ----------------------------------------------------------------------
# Registered instances
# ----------------------------------------------------------------------


BOOL = Semiring(
    name="bool",
    zero=False,
    one=True,
    plus=lambda a, b: a or b,
    times=lambda a, b: a and b,
    dtype="bool",
    is_idempotent=True,
    is_selective=True,
)

# Exact python ints (arbitrary precision); the matrix tier's int64
# dispatch is only used when explicitly routed there.
COUNT = Semiring(
    name="count",
    zero=0,
    one=1,
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
    dtype="int",
)

# Tuple-independent probabilistic instances: annotate each fact with its
# marginal probability; the value is the expected witness count.
PROB = Semiring(
    name="prob",
    zero=0.0,
    one=1.0,
    plus=lambda a, b: a + b,
    times=lambda a, b: a * b,
    dtype="float",
)

# Cost semirings: annotate facts with costs, read off the cheapest
# (resp. most expensive) witness.  ``zero`` is the empty ⊕ (no witness).
MINPLUS = Semiring(
    name="minplus",
    zero=math.inf,
    one=0.0,
    plus=min,
    times=lambda a, b: a + b,
    dtype="float",
    is_idempotent=True,
    is_selective=True,
)

MAXPLUS = Semiring(
    name="maxplus",
    zero=-math.inf,
    one=0.0,
    plus=max,
    times=lambda a, b: a + b,
    dtype="float",
    is_idempotent=True,
    is_selective=True,
)


def _why_times(a: frozenset, b: frozenset) -> frozenset:
    return frozenset(x | y for x in a for y in b)


def _fact_wire(fact) -> tuple:
    if isinstance(fact, UnaryFact):
        return ("u", fact.label, fact.node)
    return ("b", fact.pred, fact.src, fact.dst)


def _fact_unwire(wire: tuple):
    if wire[0] == "u":
        return UnaryFact(wire[1], wire[2])
    return BinaryFact(wire[1], wire[2], wire[3])


def _why_encode(value: frozenset) -> tuple:
    # Canonical (sorted) nested tuples: shard answers compare equal
    # across workers regardless of set iteration order.
    return tuple(
        sorted(
            (
                tuple(sorted((_fact_wire(f) for f in witness), key=repr))
                for witness in value
            ),
            key=repr,
        )
    )


def _why_decode(wire: tuple) -> frozenset:
    return frozenset(
        frozenset(_fact_unwire(w) for w in witness) for witness in wire
    )


# Why-provenance: values are sets of witness fact-sets (the positive
# provenance polynomial with idempotent + and absorbing-free x).
WHY = Semiring(
    name="why",
    zero=frozenset(),
    one=frozenset({frozenset()}),
    plus=lambda a, b: a | b,
    times=_why_times,
    dtype="object",
    is_idempotent=True,
    annotate_fact=lambda fact: frozenset({frozenset({fact})}),
    encode=_why_encode,
    decode=_why_decode,
)


_REGISTRY: dict[str, Semiring] = {}


def register_semiring(semiring: Semiring) -> Semiring:
    """Register ``semiring`` under its name (overwriting is an error:
    pick a fresh name for a variant instance)."""
    if semiring.name in _REGISTRY:
        raise ValueError(f"semiring {semiring.name!r} already registered")
    _REGISTRY[semiring.name] = semiring
    return semiring


for _sr in (BOOL, COUNT, PROB, MINPLUS, MAXPLUS, WHY):
    register_semiring(_sr)


def registered_semirings() -> tuple[Semiring, ...]:
    """Every registered instance, registration order."""
    return tuple(_REGISTRY.values())


def resolve_semiring(semiring: "str | Semiring") -> Semiring:
    """Normalise a ``semiring=`` argument: a :class:`Semiring` instance
    passes through, a registered name resolves, anything else raises
    :class:`~repro.core.errors.UnknownSemiring`."""
    if isinstance(semiring, Semiring):
        return semiring
    found = _REGISTRY.get(semiring)
    if found is None:
        raise UnknownSemiring(
            f"unknown semiring {semiring!r}; registered: "
            f"{sorted(_REGISTRY)} (register_semiring adds more)"
        )
    return found


# ----------------------------------------------------------------------
# Shared evaluation helpers
# ----------------------------------------------------------------------


def hom_weight(
    source: Structure,
    hom: Mapping[Node, Node],
    semiring: Semiring,
    weights: Mapping | None,
) -> Any:
    """``⊗`` over the atoms of ``source`` of the image fact's weight —
    the value one homomorphism contributes (the enumeration oracle's
    inner product; the DP backends factor the same product over bags)."""
    sr = semiring
    if weights is None and sr.annotate_fact is None:
        return sr.one
    total = sr.one
    for fact in source.unary_facts:
        total = sr.times(
            total, sr.weight_of(UnaryFact(fact.label, hom[fact.node]), weights)
        )
    for fact in source.binary_facts:
        total = sr.times(
            total,
            sr.weight_of(
                BinaryFact(fact.pred, hom[fact.src], hom[fact.dst]), weights
            ),
        )
    return total


def freeze_weights(weights: Mapping | None) -> tuple | None:
    """A hashable, order-independent form of a fact-annotation mapping
    (for semiring-tagged hom-cache keys); ``None`` when the values are
    unhashable (the call then simply bypasses the cache)."""
    if weights is None:
        return None
    try:
        frozen = tuple(
            sorted(
                ((fact, value) for fact, value in weights.items()),
                key=lambda kv: _canonical_key(_fact_wire(kv[0])),
            )
        )
        hash(frozen)  # unhashable values must bypass the cache
    except TypeError:
        return None
    return frozen


# ----------------------------------------------------------------------
# The typed evaluation result
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Evaluation:
    """Outcome of one ``Session.evaluate`` call.

    ``value`` is the semiring value (``None`` when a governed budget
    tripped — then ``reason`` carries the exhaustion tag);
    ``semiring``/``backend`` record what produced it.  ``witness`` is a
    homomorphism when one came out of the evaluation for free: the
    first witness on existence-style paths, an arg-best witness on
    selective semirings evaluated by enumeration, ``None`` otherwise.
    """

    value: Any
    semiring: str
    backend: str
    witness: Mapping[Node, Node] | None = None
    reason: str | None = None

    @property
    def known(self) -> bool:
        return self.reason is None

    @property
    def answer(self) -> Answer:
        """The :class:`~repro.core.errors.Answer`-compatible view (the
        unified outermost-surface contract): TRUE iff the value is not
        the semiring's zero — "some witness contributes" — FALSE iff it
        is, UNKNOWN(reason) when governance tripped."""
        if self.reason is not None:
            return Answer.unknown(self.reason)
        zero = resolve_semiring(self.semiring).zero
        return Answer(bool(self.value != zero))
