"""Certain-answer evaluation of monadic disjunctive sirups ``(Δ_q, G)``.

``Δ_q`` consists of the covering rule ``T(x) ∨ F(x) <- A(x)`` and the goal
rule ``G <- q``.  The certain answer over a data instance ``D`` is 'yes'
iff *every* completion of ``D`` that labels each A-node with T or F
contains a homomorphic image of ``q``.

Three evaluation strategies are provided:

* :func:`evaluate_exhaustive` — tries all ``2^n`` labelings (the literal
  semantics; used as ground truth in tests and as an ablation baseline);
* :func:`evaluate_branching` — branch-and-prune: repeatedly splits on an
  A-node only when the current partial completion admits no forced match,
  with memoisation of refuted labelings via countermodel certificates;
* :func:`evaluate_via_pi` — for 1-CQs, evaluates the equivalent monadic
  datalog program ``Π_q`` instead (Section 2 of the paper);
* :func:`evaluate_via_cactuses` — for 1-CQs, Proposition 1 directly:
  stream the incrementally-built cactuses of ``𝔎_q`` against the data
  until one embeds (the datalog-free evaluation path).

``evaluate_dsirup`` picks the fastest sound strategy automatically
(``evaluate`` is its deprecated former name — ``Session.evaluate`` now
names the semiring evaluation surface).

The variant ``Δ⁺_q`` adds the disjointness constraint
``⊥ <- T(x), F(x)``; under it, data instances containing an FT-twin node
are inconsistent and every query is trivially entailed.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass
from typing import Iterator

from .cactus import count_shapes, goal_certain_via_cactuses
from .cq import OneCQ, is_one_cq
from .datalog import GOAL, goal_holds
from .errors import governed_scope
from .homomorphism import has_homomorphism
from .sirup import compile_programs
from .structure import A, F, Node, Structure, T, UnaryFact


def maximal_completion(data: Structure) -> Structure:
    """The completion labelling every A-node with *both* T and F.

    Every completion's facts are a subset of this one's, so a query with
    no homomorphism into the maximal completion has none into any
    completion — the quick-reject used by :func:`evaluate_branching`.
    """
    unary = set(data.unary_facts)
    for node in a_nodes(data):
        unary.add(UnaryFact(T, node))
        unary.add(UnaryFact(F, node))
    return Structure(data.nodes, unary, data.binary_facts)


@dataclass(frozen=True)
class DSirupAnswer:
    """Outcome of a certain-answer computation.

    ``certain`` is the answer; ``countermodel`` (when the answer is 'no')
    is a completion of the data with no embedding of ``q``; ``labelings
    _checked`` counts the completions the strategy actually examined.
    """

    certain: bool
    countermodel: Structure | None
    labelings_checked: int


def a_nodes(data: Structure) -> tuple[Node, ...]:
    """The A-labelled nodes of a data instance, in stable order."""
    return tuple(sorted(data.nodes_with_label(A), key=str))


def complete(data: Structure, labeling: dict[Node, str]) -> Structure:
    """The completion of ``data`` adding label ``labeling[v]`` to each v.

    A-labels are kept (models of the covering axiom still satisfy A), and
    nodes may end up with both T and F if the data already had one of them.
    """
    unary = set(data.unary_facts)
    unary |= {UnaryFact(label, node) for node, label in labeling.items()}
    return Structure(data.nodes, unary, data.binary_facts)


def iter_completions(data: Structure) -> Iterator[Structure]:
    """All ``2^n`` completions of the A-nodes of ``data``."""
    nodes = a_nodes(data)
    n = len(nodes)
    for mask in range(1 << n):
        labeling = {
            nodes[i]: (T if mask & (1 << i) else F) for i in range(n)
        }
        yield complete(data, labeling)


def evaluate_exhaustive(
    q: Structure, data: Structure, session=None
) -> DSirupAnswer:
    """Ground-truth semantics: check every completion."""
    checked = 0
    for model in iter_completions(data):
        checked += 1
        if not has_homomorphism(q, model, session=session):
            return DSirupAnswer(False, model, checked)
    return DSirupAnswer(True, None, checked)


def evaluate_branching(
    q: Structure, data: Structure, session=None
) -> DSirupAnswer:
    """Branch-and-prune search for a countermodel.

    Depth-first over partial labelings; at each step, if the partial
    completion (with remaining A-nodes unlabelled and hence unusable as
    T/F witnesses) already embeds ``q``, the whole subtree is pruned.
    Returns 'yes' iff no completion avoids ``q``.

    Starts with a quick-reject: if ``q`` does not embed into the
    :func:`maximal_completion`, no completion embeds it and any single
    completion (we return the all-T one) is a countermodel — one
    homomorphism check instead of a branch-and-prune search.
    """
    nodes = a_nodes(data)
    if not has_homomorphism(q, maximal_completion(data), session=session):
        countermodel = complete(data, {node: T for node in nodes})
        return DSirupAnswer(False, countermodel, 1)
    checked = 0

    def search(index: int, labeling: dict[Node, str]) -> Structure | None:
        nonlocal checked
        current = complete(data, labeling)
        checked += 1
        if has_homomorphism(q, current, session=session):
            # q already matches using only committed labels: every
            # extension of this branch satisfies q.
            return None
        if index == len(nodes):
            return current
        node = nodes[index]
        for label in (T, F):
            labeling[node] = label
            result = search(index + 1, labeling)
            if result is not None:
                return result
            del labeling[node]
        return None

    countermodel = search(0, {})
    return DSirupAnswer(countermodel is None, countermodel, checked)


def evaluate_via_pi(
    q: Structure, data: Structure, session=None
) -> DSirupAnswer:
    """Evaluate a 1-CQ d-sirup through the equivalent program ``Π_q``."""
    if not is_one_cq(q):
        raise ValueError("Π_q is only defined for 1-CQs")
    compiled = compile_programs(q)
    certain = goal_holds(compiled.pi, data, GOAL, session)
    return DSirupAnswer(certain, None, 0)


def evaluate_via_cactuses(
    q: Structure,
    data: Structure,
    max_depth: int | None = None,
    session=None,
) -> DSirupAnswer:
    """Evaluate a 1-CQ d-sirup by Proposition 1: the answer is 'yes'
    iff some cactus of ``𝔎_q`` maps homomorphically into ``data``.

    ``max_depth`` defaults to the number of A-labelled nodes plus one:
    ``P``-facts only ever attach to A-nodes, every derivation stage of
    ``Π_q`` adds at least one new ``P``-fact, so the goal is derivable
    iff a cactus within that depth embeds — the probe is exact.  The
    cactuses stream lazily out of the pooled incremental factory with
    first-success early exit, so 'yes' answers rarely pay for the full
    enumeration; for instances with many A-nodes and span >= 2 the
    enumeration explodes, and rather than hang the call refuses
    up front (use :func:`evaluate_branching` or :func:`evaluate_via_pi`
    there — ``evaluate(strategy="auto")`` never routes here).
    """
    if not is_one_cq(q):
        raise ValueError("𝔎_q is only defined for 1-CQs")
    one_cq = OneCQ.from_structure(q)
    if max_depth is None:
        max_depth = len(data.nodes_with_label(A)) + 1
    if count_shapes(one_cq.span, max_depth) > 100_000:
        raise ValueError(
            f"𝔎_q up to depth {max_depth} holds over 100000 cactuses "
            f"(span {one_cq.span}); pass a smaller max_depth or use the "
            "branching/pi strategies"
        )
    certain = goal_certain_via_cactuses(one_cq, data, max_depth, session)
    return DSirupAnswer(certain, None, 0)


DSIRUP_STRATEGIES = ("auto", "exhaustive", "branching", "pi", "cactus")


def evaluate_dsirup(
    q: Structure, data: Structure, strategy: str = "auto", session=None
) -> DSirupAnswer:
    """Certain answer to ``(Δ_q, G)`` over ``data``.

    ``strategy`` is one of ``auto``, ``exhaustive``, ``branching``,
    ``pi``, ``cactus``.  ``auto`` uses ``Π_q`` for 1-CQs and
    branch-and-prune otherwise.

    A governed session (``deadline_ms`` / ``hom_fuel`` set) shares one
    operation-wide budget across every nested homomorphism check; on
    exhaustion the typed :class:`~.errors.ResourceExhausted` propagates
    to the caller (``Session.certain_answer`` converts it to an
    ``Answer.unknown``).
    """
    if strategy not in DSIRUP_STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}")
    with governed_scope(session):
        if strategy == "exhaustive":
            return evaluate_exhaustive(q, data, session)
        if strategy == "branching":
            return evaluate_branching(q, data, session)
        if strategy == "pi":
            return evaluate_via_pi(q, data, session)
        if strategy == "cactus":
            return evaluate_via_cactuses(q, data, session=session)
        if is_one_cq(q):
            return evaluate_via_pi(q, data, session)
        return evaluate_branching(q, data, session)


def evaluate(
    q: Structure, data: Structure, strategy: str = "auto", session=None
) -> DSirupAnswer:
    """Deprecated spelling of :func:`evaluate_dsirup`.

    .. deprecated::
        ``evaluate`` now names the semiring surface
        (``Session.evaluate(q, data, semiring=...)``); the d-sirup
        certain-answer procedure is ``Session.evaluate_dsirup`` /
        :func:`evaluate_dsirup`.
    """
    warnings.warn(
        "dsirup.evaluate() is deprecated; use Session.evaluate_dsirup"
        "(q, data, strategy) — Session.evaluate(q, data, semiring=...) "
        "is now the semiring evaluation surface",
        DeprecationWarning,
        stacklevel=2,
    )
    return evaluate_dsirup(q, data, strategy, session)


def certain_answer(q: Structure, data: Structure, session=None) -> bool:
    """Boolean convenience wrapper over :func:`evaluate_dsirup`."""
    return evaluate_dsirup(q, data, session=session).certain


# ----------------------------------------------------------------------
# Δ⁺: covering plus disjointness (Corollary 8)
# ----------------------------------------------------------------------


def data_consistent_with_disjointness(data: Structure) -> bool:
    """Under ``⊥ <- T(x), F(x)``: no node may carry both T and F."""
    return not (data.nodes_with_label(T) & data.nodes_with_label(F))


def iter_disjoint_completions(data: Structure) -> Iterator[Structure]:
    """Completions consistent with disjointness.

    A-nodes already labelled T (resp. F) in the data are forced; labeling
    them the other way would be inconsistent and such models are skipped.
    """
    nodes = a_nodes(data)
    choices: list[tuple[str, ...]] = []
    for node in nodes:
        labels = data.labels(node)
        if T in labels and F in labels:
            return  # data itself inconsistent: no models at all
        if T in labels:
            choices.append((T,))
        elif F in labels:
            choices.append((F,))
        else:
            choices.append((T, F))
    for combo in itertools.product(*choices):
        labeling = dict(zip(nodes, combo))
        yield complete(data, labeling)


def evaluate_with_disjointness(
    q: Structure, data: Structure, session=None
) -> DSirupAnswer:
    """Certain answer to ``(Δ⁺_q, G)``.

    If the data is inconsistent (some node labelled both T and F), the
    certain answer is trivially 'yes'.
    """
    if not data_consistent_with_disjointness(data):
        return DSirupAnswer(True, None, 0)
    checked = 0
    for model in iter_disjoint_completions(data):
        checked += 1
        if not has_homomorphism(q, model, session=session):
            return DSirupAnswer(False, model, checked)
    return DSirupAnswer(True, None, checked)
