"""Structural hom backend: tree-decomposition DP with compiled plans.

Every hot path of this library — the boundedness probe, UCQ rewriting
evaluation, ``screen_zoo`` — bottoms out in homomorphism checks whose
*sources* are trees or near-trees: cactuses are tree-shaped by
construction and the dominant bench queries are paths and ditrees of
treewidth 1.  The backtracking backends (``naive``/``bitset``/
``matrix``) are worst-case exponential on exactly those inputs; this
module supplies the classic polynomial algorithm instead —
acyclic/bounded-treewidth CQ evaluation by semijoin dynamic programming
(Yannakakis-style) over a tree decomposition of the *query*.

Three layers:

Decomposition
    :func:`tree_decomposition` builds a tree decomposition of a
    structure's primal graph by vertex elimination — always preferring
    degree-``<= 2`` vertices (that pass alone is *exact* for treewidth
    ``<= 2``: simplicial / series-parallel elimination), falling back
    to greedy min-fill with the achieved width reported as an upper
    bound (``exact=False``).  The result is cached on the
    :class:`~repro.core.structure.Structure` like ``matrix_index``.

Compiled plans
    :func:`decomp_plan` compiles a reusable :class:`DecompPlan` — bag
    order, semijoin schedule, per-bag atom constraints and per-variable
    label/predicate masks — cached on the structure *and* interned per
    content fingerprint (bounded LRU), so a plan is built once and
    replayed across thousands of targets in ``evaluate_batch`` /
    ``covers_any``, and a pool worker that receives the same query over
    the wire re-uses the plan it already compiled.

The DP
    For forest-shaped queries (width ``<= 1``, the hot case) the solver
    runs entirely on the target's
    :class:`~repro.core.structure.BitsetIndex`: per-variable candidate
    domains are Python-int bitsets and one *directional* semijoin pass
    over the query's tree edges (leaves up) decides existence — no AC-3
    re-enqueueing, no backtracking, ``O(|q| * |D|)`` bitset operations.
    Wider queries run the general relational DP over the target's
    pred-indexed neighbour sets: per-bag satisfying-tuple sets,
    bottom-up semijoins, top-down witness extraction.  Counting uses
    the standard bag-product weights, so ``count_homomorphisms`` never
    enumerates the (possibly exponential) hom set.

On top of the DP, :class:`ProbeCoverage` makes the boundedness probe's
``_covered_by`` *incremental*: a cactus ``C(d)`` extends ``C(d-1)`` by a
recorded add-only delta, so the per-bag satisfying sets computed for a
source against ``C(d-1)`` warm-start the check against ``C(d)`` — only
tuples killed by the delta's label removals and tuples touching the new
material are recomputed, and the semijoin sweep re-propagates only bags
whose sets actually changed.

Everything here is pure python: the ``decomp`` backend needs neither
numpy nor any other extra, and is exercised by the no-numpy CI legs.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator, Mapping

from .structure import BinaryFact, Node, Structure, UnaryFact

Seed = Mapping[Node, Node]

__all__ = [
    "DecompPlan",
    "ProbeCoverage",
    "TreeDecomposition",
    "clear_plan_intern",
    "count_decomp",
    "decomp_plan",
    "plan_intern_info",
    "query_width",
    "semiring_decomp",
    "tree_decomposition",
    "validate_decomposition",
]


# ----------------------------------------------------------------------
# Tree decompositions via vertex elimination
# ----------------------------------------------------------------------


class TreeDecomposition:
    """A tree decomposition of a structure's primal graph.

    ``bags[i]`` is a frozenset of node *indices* (positions in the
    structure's :attr:`~repro.core.structure.Structure.node_order`);
    ``parent[i]`` is the index of the parent bag (``-1`` for roots —
    one per connected component).  Bags are produced by vertex
    elimination, so bag ``i`` owns exactly one variable (the one
    eliminated at step ``i``) and its separator with the parent is the
    rest of the bag; children always precede their parent in index
    order, which is the bottom-up schedule of the DP.

    ``width`` is ``max |bag| - 1``; ``exact`` is True when that equals
    the treewidth (always the case for width ``<= 2``, where the
    degree-``<= 2`` elimination is complete).
    """

    __slots__ = ("bags", "parent", "own", "width", "exact")

    def __init__(self, bags, parent, own, width, exact) -> None:
        self.bags: tuple[frozenset[int], ...] = bags
        self.parent: tuple[int, ...] = parent
        self.own: tuple[int, ...] = own  # the vertex eliminated at step i
        self.width: int = width
        self.exact: bool = exact

    def describe(self) -> str:
        kind = "exact" if self.exact else "greedy upper bound"
        return (
            f"tree decomposition: {len(self.bags)} bags, "
            f"width {self.width} ({kind})"
        )


def _fill_count(work: dict[int, set[int]], v: int) -> int:
    """Edges that eliminating ``v`` would add between its neighbours."""
    nbrs = work[v]
    missing = 0
    as_list = list(nbrs)
    for i, a in enumerate(as_list):
        wa = work[a]
        for b in as_list[i + 1:]:
            if b not in wa:
                missing += 1
    return missing


def build_tree_decomposition(structure: Structure) -> TreeDecomposition:
    """Build a decomposition of ``structure``'s primal graph (fresh).

    Use :func:`tree_decomposition` for the structure-cached accessor.
    """
    order = structure.node_order
    index = structure.node_index
    n = len(order)
    work: dict[int, set[int]] = {v: set() for v in range(n)}
    for fact in structure.binary_facts:
        s, d = index[fact.src], index[fact.dst]
        if s != d:
            work[s].add(d)
            work[d].add(s)
    remaining = set(range(n))
    elim: list[tuple[int, frozenset[int]]] = []
    exact = True
    while remaining:
        # Min-degree first: complete (and exact) while degrees stay
        # <= 2 — leaves, series vertices and simplicial degree-2
        # vertices of a series-parallel graph.  Only when every
        # remaining vertex has degree >= 3 (treewidth >= 3 territory)
        # does greedy min-fill take over, and the result degrades to a
        # reported upper bound.
        v = min(remaining, key=lambda u: (len(work[u]), u))
        if len(work[v]) > 2:
            exact = False
            v = min(
                remaining,
                key=lambda u: (_fill_count(work, u), len(work[u]), u),
            )
        nbrs = frozenset(work[v])
        elim.append((v, nbrs))
        as_list = sorted(nbrs)
        for i, a in enumerate(as_list):
            work[a].discard(v)
            for b in as_list[i + 1:]:
                if b not in work[a]:
                    work[a].add(b)
                    work[b].add(a)
        remaining.remove(v)
    width = max((len(nbrs) for _, nbrs in elim), default=0)
    pos = {v: i for i, (v, _) in enumerate(elim)}
    bags = []
    parent = []
    own = []
    for v, nbrs in elim:
        bags.append(frozenset({v} | nbrs))
        own.append(v)
        # Parent: the bag of the earliest-eliminated neighbour.  All
        # neighbours at elimination time are eliminated later, so the
        # parent index is always greater than the child's — ascending
        # bag order is the bottom-up DP schedule.
        parent.append(
            min((pos[u] for u in nbrs), default=-1)
        )
    return TreeDecomposition(
        tuple(bags), tuple(parent), tuple(own), width, exact
    )


def tree_decomposition(structure: Structure) -> TreeDecomposition:
    """The structure's cached tree decomposition (built on first use)."""
    td = structure._tree_decomp
    if td is None:
        td = build_tree_decomposition(structure)
        structure._tree_decomp = td
    return td


def query_width(structure: Structure) -> int:
    """The (cached) decomposition width of a structure's primal graph —
    what ``backend="auto"`` consults to route tree-shaped queries to
    the ``decomp`` backend.  An upper bound above 2, exact below."""
    return tree_decomposition(structure).width


def validate_decomposition(
    structure: Structure, td: TreeDecomposition
) -> list[str]:
    """Sanity-check a decomposition; returns human-readable violations
    (empty list when valid).  Used by the property tests."""
    problems = []
    index = structure.node_index
    n = len(structure.node_order)
    covered_by: dict[int, set[int]] = {v: set() for v in range(n)}
    for i, bag in enumerate(td.bags):
        for v in bag:
            covered_by[v].add(i)
    for fact in structure.binary_facts:
        s, d = index[fact.src], index[fact.dst]
        if not any(s in bag and d in bag for bag in td.bags):
            problems.append(f"edge ({fact.src}, {fact.dst}) covered by no bag")
    for v in range(n):
        bags = covered_by[v]
        if not bags:
            problems.append(f"node {structure.node_order[v]!r} in no bag")
            continue
        # Connectivity: the bags containing v must form a subtree.
        seen = {min(bags)}
        frontier = [min(bags)]
        while frontier:
            b = frontier.pop()
            for other in bags - seen:
                if td.parent[other] == b or td.parent[b] == other:
                    seen.add(other)
                    frontier.append(other)
        if seen != bags:
            problems.append(
                f"bags of node {structure.node_order[v]!r} are disconnected"
            )
    return problems


# ----------------------------------------------------------------------
# Compiled query plans
# ----------------------------------------------------------------------


class DecompPlan:
    """The compiled, reusable decomposition-DP plan of one query.

    Everything derivable from the source alone is computed once: the
    decomposition, per-bag variable tuples (own variable first, then
    the separator with the parent), the atoms each bag checks, the
    per-variable label / incident-predicate requirements, and — for
    forest-shaped queries — the directional semijoin schedule over the
    primal spanning forest that the bitset fast path runs on.
    """

    __slots__ = (
        "nodes", "n", "width", "exact",
        "labels", "out_preds", "in_preds", "self_loops",
        "bag_vars", "bag_parent", "bag_children", "bag_roots",
        "bag_atoms", "sep_pos_in_parent",
        "atoms_by_pred", "label_positions", "bag_label_pos",
        "var_positions", "vars_by_label",
        "unconstrained_vars", "constrained_vars",
        "forest_order", "forest_parent", "forest_children", "forest_atoms",
    )

    def __init__(self, source: Structure) -> None:
        td = tree_decomposition(source)
        self.nodes = source.node_order
        self.n = len(self.nodes)
        self.width = td.width
        self.exact = td.exact
        index = source.node_index
        self.labels = [tuple(source.labels(x)) for x in self.nodes]
        self.out_preds = [tuple(source.out_pred_set(x)) for x in self.nodes]
        self.in_preds = [tuple(source.in_pred_set(x)) for x in self.nodes]
        loops: list[tuple[str, ...]] = [()] * self.n
        proper: list[tuple[int, str, int]] = []
        for fact in source.binary_facts:
            s, d = index[fact.src], index[fact.dst]
            if s == d:
                loops[s] = loops[s] + (fact.pred,)
            else:
                proper.append((s, fact.pred, d))
        self.self_loops = loops

        # -- bag tables (the general relational DP) ---------------------
        # Bag i owns exactly the variable eliminated at step i; the
        # rest of the bag (the elimination neighbours) is the separator
        # with the parent.
        bag_vars: list[tuple[int, ...]] = []
        for i, bag in enumerate(td.bags):
            own = td.own[i]
            bag_vars.append((own,) + tuple(sorted(bag - {own})))
        self.bag_vars = tuple(bag_vars)
        self.bag_parent = td.parent
        children: list[list[int]] = [[] for _ in td.bags]
        for i, p in enumerate(td.parent):
            if p >= 0:
                children[p].append(i)
        self.bag_children = tuple(tuple(c) for c in children)
        self.bag_roots = tuple(
            i for i, p in enumerate(td.parent) if p < 0
        )
        sep_pos: list[tuple[int, ...]] = []
        for i, vars_ in enumerate(bag_vars):
            p = td.parent[i]
            if p < 0:
                sep_pos.append(())
            else:
                pvars = bag_vars[p]
                sep_pos.append(tuple(pvars.index(u) for u in vars_[1:]))
        self.sep_pos_in_parent = tuple(sep_pos)

        # Atom assignment: every proper atom is checked in exactly one
        # bag — the elimination bag of whichever endpoint dies first
        # (that bag contains both endpoints by construction).
        elim_pos = {vars_[0]: i for i, vars_ in enumerate(bag_vars)}
        bag_atoms: list[list[tuple[int, str, int]]] = [[] for _ in bag_vars]
        atoms_by_pred: dict[str, list[tuple[int, int, int]]] = {}
        for s, p, d in proper:
            b = min(elim_pos[s], elim_pos[d])
            vars_ = bag_vars[b]
            xp, yp = vars_.index(s), vars_.index(d)
            bag_atoms[b].append((xp, p, yp))
            atoms_by_pred.setdefault(p, []).append((b, xp, yp))
        self.bag_atoms = tuple(tuple(a) for a in bag_atoms)
        self.atoms_by_pred = {
            p: tuple(entries) for p, entries in atoms_by_pred.items()
        }

        # Label / occurrence indexes for the delta warm-start.
        label_positions: dict[str, list[tuple[int, int]]] = {}
        bag_label_pos: list[tuple[int, ...]] = []
        var_positions: dict[int, list[tuple[int, int]]] = {}
        for b, vars_ in enumerate(bag_vars):
            lab_pos = []
            for pos, v in enumerate(vars_):
                var_positions.setdefault(v, []).append((b, pos))
                if self.labels[v]:
                    lab_pos.append(pos)
                    for lab in self.labels[v]:
                        label_positions.setdefault(lab, []).append((b, pos))
            bag_label_pos.append(tuple(lab_pos))
        self.bag_label_pos = tuple(bag_label_pos)
        self.label_positions = {
            lab: tuple(entries) for lab, entries in label_positions.items()
        }
        self.var_positions = {
            v: tuple(entries) for v, entries in var_positions.items()
        }
        vars_by_label: dict[str, list[int]] = {}
        for i in range(self.n):
            for lab in self.labels[i]:
                vars_by_label.setdefault(lab, []).append(i)
        self.vars_by_label = {
            lab: tuple(vs) for lab, vs in vars_by_label.items()
        }
        # Split for the warm-start's delta update: a variable with no
        # label requirement and no self-loop accepts *every* node, so
        # gained target nodes OR in as one mask instead of a per-node
        # qualification loop.
        self.unconstrained_vars = tuple(
            i for i in range(self.n)
            if not self.labels[i] and not self.self_loops[i]
        )
        self.constrained_vars = tuple(
            i for i in range(self.n)
            if self.labels[i] or self.self_loops[i]
        )

        # -- forest schedule (width <= 1 fast path) ---------------------
        if td.width <= 1:
            adj: dict[int, list[int]] = {i: [] for i in range(self.n)}
            edge_atoms: dict[tuple[int, int], list[tuple[str, bool]]] = {}
            for s, p, d in proper:
                key = (min(s, d), max(s, d))
                if key not in edge_atoms:
                    adj[s].append(d)
                    adj[d].append(s)
                edge_atoms.setdefault(key, [])
            for s, p, d in proper:
                key = (min(s, d), max(s, d))
                # Recorded relative to (child, parent) later; store as
                # (pred, src, dst) and orient when the forest is built.
                edge_atoms[key].append((p, s, d))
            order: list[int] = []
            parent = [-1] * self.n
            seen = [False] * self.n
            for root in range(self.n):
                if seen[root]:
                    continue
                seen[root] = True
                queue = [root]
                while queue:
                    v = queue.pop()
                    order.append(v)
                    for u in adj[v]:
                        if not seen[u]:
                            seen[u] = True
                            parent[u] = v
                            queue.append(u)
            forest_atoms: list[tuple[tuple[str, bool], ...]] = [()] * self.n
            for child in range(self.n):
                par = parent[child]
                if par < 0:
                    continue
                key = (min(child, par), max(child, par))
                forest_atoms[child] = tuple(
                    (p, s == child) for p, s, d in edge_atoms[key]
                )
            fchildren: list[list[int]] = [[] for _ in range(self.n)]
            for child, par in enumerate(parent):
                if par >= 0:
                    fchildren[par].append(child)
            self.forest_order = tuple(order)
            self.forest_parent = tuple(parent)
            self.forest_children = tuple(tuple(c) for c in fchildren)
            self.forest_atoms = tuple(forest_atoms)
        else:
            self.forest_order = None
            self.forest_parent = None
            self.forest_children = None
            self.forest_atoms = None


# Fingerprint-keyed plan intern (per process, bounded LRU): a plan is a
# pure function of the query's *content*, so a content-equal structure
# rebuilt elsewhere — a pool worker rebuilding the query from its wire
# form, a fresh factory materialising an interned cactus — picks up the
# plan compiled for the first instance instead of recompiling.  This is
# how plans "ship" over the wire: the fingerprint travels implicitly in
# the facts, the plan is re-found on the other side.  Like runtime's
# ``_WIRE_CACHE`` (and unlike session-owned engine state), it is
# deliberately process-wide: entries are immutable content-derived
# values, safe to share across sessions and cleared only by benchmarks
# measuring cold compiles (:func:`clear_plan_intern`).
_PLAN_INTERN: OrderedDict[str, DecompPlan] = OrderedDict()
_PLAN_INTERN_SIZE = 512

# Optional disk tier under the intern: a session with a durable store
# registers it here (like the intern itself, process-wide — plans are
# immutable content-derived values, so any attached store is as good as
# any other), and intern misses fall through to disk before compiling.
_PLAN_STORE = None


def set_plan_store(store) -> None:
    """Attach a :class:`~repro.core.store.DurableStore` under the plan
    intern so compiled plans survive restarts and ship to workers."""
    global _PLAN_STORE
    _PLAN_STORE = store


def clear_plan_store(store=None) -> None:
    """Detach the plan store (only if it is ``store``, when given —
    closing one session must not unhook another session's store)."""
    global _PLAN_STORE
    if store is None or _PLAN_STORE is store:
        _PLAN_STORE = None


def _plan_from_store(fp: str, source: Structure) -> "DecompPlan | None":
    if _PLAN_STORE is None:
        return None
    from .store import MISS

    cand = _PLAN_STORE.get("plan", fp)
    if cand is MISS or not isinstance(cand, DecompPlan):
        return None
    # Fingerprints are content hashes; a (vanishingly unlikely)
    # collision or a stale payload must never misplan a query, so the
    # stored plan is sanity-checked against the live structure.
    if list(cand.nodes) != list(source.node_order):
        return None
    return cand


def decomp_plan(source: Structure) -> DecompPlan:
    """The compiled :class:`DecompPlan` of ``source`` (cached on the
    structure, interned per content fingerprint, persisted to the
    durable store when one is attached)."""
    plan = source._decomp_plan
    if plan is None:
        fp = source.fingerprint
        plan = _PLAN_INTERN.get(fp)
        if plan is None:
            plan = _plan_from_store(fp, source)
            if plan is None:
                plan = DecompPlan(source)
                if _PLAN_STORE is not None:
                    _PLAN_STORE.put("plan", fp, plan)
            _PLAN_INTERN[fp] = plan
            while len(_PLAN_INTERN) > _PLAN_INTERN_SIZE:
                _PLAN_INTERN.popitem(last=False)
        else:
            _PLAN_INTERN.move_to_end(fp)
        source._decomp_plan = plan
    return plan


def plan_intern_info() -> tuple[int, int]:
    """(occupancy, capacity) of the fingerprint-keyed plan intern."""
    return len(_PLAN_INTERN), _PLAN_INTERN_SIZE


def clear_plan_intern() -> None:
    """Drop every interned plan (benchmarks measuring cold compiles)."""
    _PLAN_INTERN.clear()


# ----------------------------------------------------------------------
# Forest fast path: int-bitset directional semijoins
# ----------------------------------------------------------------------


def _mask_domains(
    plan: DecompPlan,
    target: Structure,
    seed: dict,
    restrict_image,
    node_filter,
    node_domains,
    forbid,
):
    """Per-variable candidate bitsets (the bitset backend's init, plus
    self-loop filtering); ``None`` when some domain is empty."""
    idx = target.bitset_index
    target_names = idx.nodes
    if not target_names:
        return None
    full = idx.full_mask
    restrict_mask = (
        full if restrict_image is None else idx.mask_of(restrict_image)
    )
    veto_mask = full
    if forbid:
        veto_mask &= full & ~idx.mask_of(forbid)
    label_nodes = idx.label_nodes
    has_out = idx.has_out
    has_in = idx.has_in
    domains: list[int] = [0] * plan.n
    for i in range(plan.n):
        x = plan.nodes[i]
        if x in seed:
            image = seed[x]
            t = idx.index.get(image)
            if t is None:
                return None
            if not frozenset(plan.labels[i]) <= target.labels(image):
                return None
            dom = 1 << t
        else:
            dom = restrict_mask
            for label in plan.labels[i]:
                dom &= label_nodes.get(label, 0)
            for p in plan.out_preds[i]:
                dom &= has_out.get(p, 0)
            for p in plan.in_preds[i]:
                dom &= has_in.get(p, 0)
        dom &= veto_mask
        if node_domains is not None and x in node_domains:
            dom &= idx.mask_of(node_domains[x])
        for p in plan.self_loops[i]:
            smask = idx.succ.get(p)
            if smask is None:
                return None
            filtered = 0
            d = dom
            while d:
                bit = d & -d
                d ^= bit
                v = bit.bit_length() - 1
                if (smask[v] >> v) & 1:
                    filtered |= bit
            dom = filtered
        if node_filter is not None and dom:
            filtered = 0
            d = dom
            while d:
                bit = d & -d
                d ^= bit
                if node_filter(x, target_names[bit.bit_length() - 1]):
                    filtered |= bit
            dom = filtered
        if not dom:
            return None
        domains[i] = dom
    return domains, idx


def _edge_support(idx, p: str, child_is_src: bool, v: int) -> int:
    """Bitmask of child images compatible with parent image ``v`` under
    one (pred, orientation) constraint of a forest edge."""
    table = idx.pred if child_is_src else idx.succ
    masks = table.get(p)
    if masks is None:
        return 0
    return masks[v]


def _forest_filter(
    plan: DecompPlan, idx, domains: list[int], budget=None
) -> bool:
    """One bottom-up directional semijoin pass (leaves to roots).

    For forest-shaped queries this single pass — one revision per query
    edge, no re-enqueueing — establishes directional arc consistency,
    which is *decisive*: a hom exists iff every domain stays non-empty.
    """
    for child in reversed(plan.forest_order):
        if budget is not None:
            budget.charge()  # one directional edge revision
        par = plan.forest_parent[child]
        if par < 0:
            continue
        cdom = domains[child]
        atoms = plan.forest_atoms[child]
        new = 0
        d = domains[par]
        while d:
            bit = d & -d
            d ^= bit
            v = bit.bit_length() - 1
            # One child image must satisfy *all* atoms of the edge:
            # parallel atoms (R and S between the same pair, or R in
            # both directions) intersect their support masks.
            support = cdom
            for p, child_is_src in atoms:
                support &= _edge_support(idx, p, child_is_src, v)
                if not support:
                    break
            if support:
                new |= bit
        if not new:
            return False
        domains[par] = new
    return True


def _iter_forest(plan: DecompPlan, idx, domains: list[int]):
    """All homomorphisms, top-down over the filtered forest domains."""
    names = idx.nodes
    order = plan.forest_order  # parents before children
    n = plan.n
    assignment = [0] * n
    src_nodes = plan.nodes

    def rec(k: int):
        if k == n:
            yield {src_nodes[i]: names[assignment[i]] for i in range(n)}
            return
        var = order[k]
        par = plan.forest_parent[var]
        cand = domains[var]
        if par >= 0:
            v = assignment[par]
            for p, child_is_src in plan.forest_atoms[var]:
                cand &= _edge_support(idx, p, child_is_src, v)
        d = cand
        while d:
            bit = d & -d
            d ^= bit
            assignment[var] = bit.bit_length() - 1
            yield from rec(k + 1)

    yield from rec(0)


def _count_forest(plan: DecompPlan, idx, domains: list[int]) -> int:
    """Bag-product counting over the filtered forest domains."""
    counts: list[dict[int, int]] = [None] * plan.n  # type: ignore
    for var in reversed(plan.forest_order):
        table: dict[int, int] = {}
        children = plan.forest_children[var]
        d = domains[var]
        while d:
            bit = d & -d
            d ^= bit
            v = bit.bit_length() - 1
            total = 1
            for c in children:
                cand = domains[c]
                for p, child_is_src in plan.forest_atoms[c]:
                    cand &= _edge_support(idx, p, child_is_src, v)
                sub = 0
                cc = counts[c]
                while cand:
                    b2 = cand & -cand
                    cand ^= b2
                    sub += cc.get(b2.bit_length() - 1, 0)
                if not sub:
                    total = 0
                    break
                total *= sub
            if total:
                table[v] = total
        counts[var] = table
    result = 1
    for var in plan.forest_order:
        if plan.forest_parent[var] < 0:
            result *= sum(counts[var].values())
    return result


# ----------------------------------------------------------------------
# General relational DP (width >= 2, and the warm-start substrate)
# ----------------------------------------------------------------------


def _relational_domains(
    plan: DecompPlan,
    target: Structure,
    seed: dict,
    restrict_image,
    node_filter,
    node_domains,
    forbid,
    lenient: bool = False,
):
    """Per-variable candidate sets over the target's nodes.

    Returns ``None`` on an empty domain unless ``lenient`` (the
    warm-start state keeps empty domains around: a later delta may
    repopulate them)."""
    nodes = target.nodes
    doms: list[set] = []
    for i in range(plan.n):
        x = plan.nodes[i]
        if x in seed:
            image = seed[x]
            if image in nodes and frozenset(plan.labels[i]) <= target.labels(
                image
            ):
                dom = {image}
            else:
                dom = set()
        else:
            req = plan.labels[i]
            if req:
                dom = set(target.nodes_with_label(req[0]))
                for lab in req[1:]:
                    dom &= target.nodes_with_label(lab)
            else:
                dom = set(nodes)
            if restrict_image is not None:
                dom &= restrict_image
        if forbid:
            dom -= forbid
        if node_domains is not None and x in node_domains:
            dom &= node_domains[x]
        if node_filter is not None:
            dom = {v for v in dom if node_filter(x, v)}
        for p in plan.self_loops[i]:
            dom = {v for v in dom if v in target.out_by_pred(v).get(p, ())}
        if not dom and not lenient:
            return None
        doms.append(dom)
    return doms


def _bag_order(
    plan: DecompPlan, b: int, doms, pinned_keys: frozenset[int]
) -> tuple[int, ...]:
    """An enumeration order of bag positions: pinned first, then
    positions reachable through atoms from already-ordered ones (so
    each gets neighbour-set candidates), then the rest by domain size."""
    vars_ = plan.bag_vars[b]
    k = len(vars_)
    atoms = plan.bag_atoms[b]
    placed: list[int] = sorted(pinned_keys)
    placed_set = set(placed)
    while len(placed) < k:
        frontier = [
            q
            for q in range(k)
            if q not in placed_set
            and any(
                (xp == q and yp in placed_set)
                or (yp == q and xp in placed_set)
                for xp, _, yp in atoms
            )
        ]
        pool = frontier or [q for q in range(k) if q not in placed_set]
        q = min(pool, key=lambda q: (len(doms[vars_[q]]), q))
        placed.append(q)
        placed_set.add(q)
    return tuple(placed)


def _enum_bag(
    plan: DecompPlan,
    b: int,
    doms,
    target: Structure,
    order: tuple[int, ...],
    pinned: dict[int, Node] | None = None,
) -> Iterator[tuple]:
    """All assignments of bag ``b`` satisfying its atoms and domains,
    optionally with some positions pinned; yields tuples aligned with
    ``plan.bag_vars[b]``."""
    vars_ = plan.bag_vars[b]
    atoms = plan.bag_atoms[b]
    k = len(vars_)
    images: list = [None] * k
    placed = [False] * k

    def rec(i: int):
        if i == k:
            yield tuple(images)
            return
        q = order[i]
        var = vars_[q]
        cand = None
        for xp, p, yp in atoms:
            if yp == q and placed[xp]:
                nb = target.out_by_pred(images[xp]).get(p)
            elif xp == q and placed[yp]:
                nb = target.in_by_pred(images[yp]).get(p)
            else:
                continue
            if not nb:
                return
            cand = set(nb) if cand is None else cand & nb
            if not cand:
                return
        pool = doms[var] if cand is None else cand & doms[var]
        if pinned is not None and q in pinned:
            pin = pinned[q]
            pool = (pin,) if pin in pool else ()
        placed[q] = True
        for img in pool:
            images[q] = img
            yield from rec(i + 1)
        placed[q] = False
        images[q] = None

    yield from rec(0)


def _child_key(plan: DecompPlan, c: int, tup: tuple) -> tuple:
    return tuple(tup[p] for p in plan.sep_pos_in_parent[c])


def _solve_relational(
    plan: DecompPlan,
    target: Structure,
    doms,
    counting: bool = False,
    budget=None,
):
    """Bottom-up semijoin DP; returns ``(index, weights)`` or ``None``.

    ``index[b]`` maps a separator key to the surviving own-variable
    images (enough for witness extraction and full enumeration, since
    tuples sharing a key differ only in the own variable);
    ``weights[b]`` (counting only) maps a key to the number of
    extensions of that key over the bag's subtree.
    """
    nbags = len(plan.bag_vars)
    index: list[dict] = [None] * nbags  # type: ignore
    weights: list[dict] = [None] * nbags if counting else None  # type: ignore
    for b in range(nbags):  # ascending = children before parents
        order = _bag_order(plan, b, doms, frozenset())
        surv: dict[tuple, list] = {}
        wts: dict[tuple, int] = {} if counting else None
        for tup in _enum_bag(plan, b, doms, target, order):
            if budget is not None:
                budget.charge()  # one semijoin tuple consumed
            w = 1
            dead = False
            for c in plan.bag_children[b]:
                key = _child_key(plan, c, tup)
                if key not in index[c]:
                    dead = True
                    break
                if counting:
                    w *= weights[c][key]
            if dead:
                continue
            sep = tup[1:]
            surv.setdefault(sep, []).append(tup[0])
            if counting:
                wts[sep] = wts.get(sep, 0) + w
        if not surv:
            return None
        index[b] = surv
        if counting:
            weights[b] = wts
    return index, weights


def _iter_relational(plan: DecompPlan, index: list[dict]):
    """All homomorphisms, top-down over the filtered bag relations."""
    n = plan.n
    nbags = len(plan.bag_vars)
    assignment: list = [None] * n
    src_nodes = plan.nodes
    order = range(nbags - 1, -1, -1)  # parents before children

    def rec(i: int):
        if i == nbags:
            yield {src_nodes[v]: assignment[v] for v in range(n)}
            return
        b = order[i]
        vars_ = plan.bag_vars[b]
        key = tuple(assignment[u] for u in vars_[1:])
        own = vars_[0]
        for img in index[b].get(key, ()):
            assignment[own] = img
            yield from rec(i + 1)

    yield from rec(0)


# ----------------------------------------------------------------------
# The backend entry points
# ----------------------------------------------------------------------


def _iter_decomp(
    source: Structure,
    target: Structure,
    seed: dict,
    restrict_image,
    node_filter: Callable[[Node, Node], bool] | None,
    node_domains,
    forbid,
    budget=None,
) -> Iterator[dict[Node, Node]]:
    """The ``decomp`` backend: enumerate all homomorphisms via the
    decomposition DP (registered in ``homengine._BACKEND_IMPLS``)."""
    plan = decomp_plan(source)
    if plan.n == 0:
        yield {}
        return
    if plan.forest_order is not None:
        prepared = _mask_domains(
            plan, target, seed, restrict_image, node_filter,
            node_domains, forbid,
        )
        if prepared is None:
            return
        domains, idx = prepared
        if not _forest_filter(plan, idx, domains, budget):
            return
        yield from _iter_forest(plan, idx, domains)
        return
    doms = _relational_domains(
        plan, target, seed, restrict_image, node_filter,
        node_domains, forbid,
    )
    if doms is None:
        return
    solved = _solve_relational(plan, target, doms, budget=budget)
    if solved is None:
        return
    yield from _iter_relational(plan, solved[0])


def count_decomp(
    source: Structure,
    target: Structure,
    seed: dict,
    restrict_image,
    node_filter,
    node_domains,
    forbid,
    budget=None,
) -> tuple[int, dict[Node, Node] | None]:
    """``(count, first_witness)`` via bag-product counting — the DP
    multiplies per-bag extension counts instead of enumerating the hom
    set, so counting costs one bottom-up pass even when the count is
    astronomically large."""
    plan = decomp_plan(source)
    if plan.n == 0:
        return 1, {}
    if plan.forest_order is not None:
        prepared = _mask_domains(
            plan, target, seed, restrict_image, node_filter,
            node_domains, forbid,
        )
        if prepared is None:
            return 0, None
        domains, idx = prepared
        if not _forest_filter(plan, idx, domains, budget):
            return 0, None
        count = _count_forest(plan, idx, domains)
        witness = next(_iter_forest(plan, idx, domains), None)
        return count, witness
    doms = _relational_domains(
        plan, target, seed, restrict_image, node_filter,
        node_domains, forbid,
    )
    if doms is None:
        return 0, None
    solved = _solve_relational(plan, target, doms, counting=True, budget=budget)
    if solved is None:
        return 0, None
    index, weights = solved
    count = 1
    for b in plan.bag_roots:
        count *= sum(weights[b].values())
    witness = next(_iter_relational(plan, index), None)
    return count, witness


# ----------------------------------------------------------------------
# Semiring-generic DP (weighted evaluation over any commutative semiring)
# ----------------------------------------------------------------------
#
# The two counting kernels above are the COUNT specialisation of the
# functions below: bag products/sums written as ``*``/``+`` over python
# ints become ``times``/``plus`` over an arbitrary commutative semiring,
# and each query atom multiplies in the weight of its image fact exactly
# once — unary labels and self-loops at the variable's own bag, proper
# atoms at the bag they are assigned to.  Soundness needs only
# distributivity (which every semiring has), so the arc-consistency
# pre-filters stay: they remove candidates with no completion, i.e.
# terms that would contribute ``zero``.  ``count_decomp`` is kept as
# the integer fast path (no per-tuple weight lookups) and is
# cross-checked against ``semiring_decomp(COUNT)`` in the tests.


def _forest_value(
    plan: DecompPlan, idx, domains: list[int], sr, weights, budget=None
):
    """Bag-value DP over the filtered forest domains: the semiring
    generalisation of :func:`_count_forest`."""
    names = idx.nodes
    weighted = weights is not None or sr.annotate_fact is not None
    zero = sr.zero
    vals: list[dict[int, object]] = [None] * plan.n  # type: ignore
    for var in reversed(plan.forest_order):
        table: dict[int, object] = {}
        children = plan.forest_children[var]
        labels = plan.labels[var]
        loops = plan.self_loops[var]
        d = domains[var]
        while d:
            bit = d & -d
            d ^= bit
            v = bit.bit_length() - 1
            if budget is not None:
                budget.charge()  # one DP cell
            total = sr.one
            if weighted:
                name = names[v]
                for lab in labels:
                    total = sr.times(
                        total, sr.weight_of(UnaryFact(lab, name), weights)
                    )
                for p in loops:
                    total = sr.times(
                        total,
                        sr.weight_of(BinaryFact(p, name, name), weights),
                    )
            dead = False
            for c in children:
                cand = domains[c]
                for p, child_is_src in plan.forest_atoms[c]:
                    cand &= _edge_support(idx, p, child_is_src, v)
                sub = zero
                cc = vals[c]
                while cand:
                    b2 = cand & -cand
                    cand ^= b2
                    w = b2.bit_length() - 1
                    cw = cc.get(w)
                    if cw is None:
                        continue
                    if weighted:
                        ew = sr.one
                        for p, child_is_src in plan.forest_atoms[c]:
                            fact = (
                                BinaryFact(p, names[w], names[v])
                                if child_is_src
                                else BinaryFact(p, names[v], names[w])
                            )
                            ew = sr.times(ew, sr.weight_of(fact, weights))
                        cw = sr.times(ew, cw)
                    sub = sr.plus(sub, cw)
                if sub == zero:
                    dead = True
                    break
                total = sr.times(total, sub)
            if not dead and total != zero:
                table[v] = total
        vals[var] = table
    result = sr.one
    for var in plan.forest_order:
        if plan.forest_parent[var] < 0:
            result = sr.times(result, sr.sum(vals[var].values()))
    return result


def _solve_relational_value(
    plan: DecompPlan, target: Structure, doms, sr, weights, budget=None
):
    """Bottom-up semijoin value DP: the semiring generalisation of
    :func:`_solve_relational`'s counting mode."""
    weighted = weights is not None or sr.annotate_fact is not None
    nbags = len(plan.bag_vars)
    tables: list[dict[tuple, object]] = [None] * nbags  # type: ignore
    for b in range(nbags):  # ascending = children before parents
        order = _bag_order(plan, b, doms, frozenset())
        own = plan.bag_vars[b][0]
        labels = plan.labels[own]
        loops = plan.self_loops[own]
        atoms = plan.bag_atoms[b]
        wts: dict[tuple, object] = {}
        for tup in _enum_bag(plan, b, doms, target, order):
            if budget is not None:
                budget.charge()  # one semijoin tuple consumed
            w = sr.one
            if weighted:
                img = tup[0]
                for lab in labels:
                    w = sr.times(w, sr.weight_of(UnaryFact(lab, img), weights))
                for p in loops:
                    w = sr.times(
                        w, sr.weight_of(BinaryFact(p, img, img), weights)
                    )
                for xp, p, yp in atoms:
                    w = sr.times(
                        w,
                        sr.weight_of(BinaryFact(p, tup[xp], tup[yp]), weights),
                    )
            dead = False
            for c in plan.bag_children[b]:
                cw = tables[c].get(_child_key(plan, c, tup))
                if cw is None:
                    dead = True
                    break
                w = sr.times(w, cw)
            if dead:
                continue
            sep = tup[1:]
            prev = wts.get(sep)
            wts[sep] = w if prev is None else sr.plus(prev, w)
        if not wts:
            return sr.zero
        tables[b] = wts
    result = sr.one
    for b in plan.bag_roots:
        result = sr.times(result, sr.sum(tables[b].values()))
    return result


def semiring_decomp(
    source: Structure,
    target: Structure,
    semiring,
    weights,
    seed: dict,
    restrict_image,
    node_filter,
    node_domains,
    forbid,
    budget=None,
):
    """The value ``⊕_h ⊗_atoms weight(h(atom))`` over all homomorphisms
    ``source -> target``, by one bottom-up DP pass over the compiled
    decomposition plan — the weighted analogue of :func:`count_decomp`,
    generic over any registered commutative semiring."""
    sr = semiring
    plan = decomp_plan(source)
    if plan.n == 0:
        return sr.one
    if plan.forest_order is not None:
        prepared = _mask_domains(
            plan, target, seed, restrict_image, node_filter,
            node_domains, forbid,
        )
        if prepared is None:
            return sr.zero
        domains, idx = prepared
        if not _forest_filter(plan, idx, domains, budget):
            return sr.zero
        return _forest_value(plan, idx, domains, sr, weights, budget)
    doms = _relational_domains(
        plan, target, seed, restrict_image, node_filter,
        node_domains, forbid,
    )
    if doms is None:
        return sr.zero
    return _solve_relational_value(plan, target, doms, sr, weights, budget)


# ----------------------------------------------------------------------
# Delta warm-started coverage (the boundedness probe's inner loop)
# ----------------------------------------------------------------------


class CoverageState:
    """The relational-DP state of one source against one target.

    Holds the raw (pre-semijoin) per-bag satisfying sets, the
    per-position image indexes that make label-removal kills O(killed),
    the per-bag alive separator keys, and the target's edges grouped by
    predicate.  :meth:`extended` derives the state of an
    add-only-extended target by applying the delta instead of
    re-enumerating — the warm start of the boundedness probe.
    """

    __slots__ = ("plan", "doms", "raw", "img_index", "alive", "covered")

    @classmethod
    def cold(
        cls, plan: DecompPlan, target: Structure, seed: Seed | None
    ) -> "CoverageState":
        st = cls.__new__(cls)
        st.plan = plan
        st.doms = _relational_domains(
            plan, target, dict(seed or {}), None, None, None, None,
            lenient=True,
        )
        # Per-predicate edge lists drive only this cold enumeration;
        # warm extensions enumerate anchored at the delta instead, so
        # the grouping is not retained on the state.
        edges: dict[str, list] = {}
        for fact in target.binary_facts:
            edges.setdefault(fact.pred, []).append((fact.src, fact.dst))
        nbags = len(plan.bag_vars)
        st.raw = [set() for _ in range(nbags)]
        st.img_index = [{} for _ in range(nbags)]
        for b in range(nbags):
            atoms = plan.bag_atoms[b]
            if atoms:
                xp, p, yp = atoms[0]
                order = _bag_order(plan, b, st.doms, frozenset({xp, yp}))
                for u, w in edges.get(p, ()):
                    for tup in _enum_bag(
                        plan, b, st.doms, target, order, pinned={xp: u, yp: w}
                    ):
                        st._add_tuple(b, tup)
            else:
                order = _bag_order(plan, b, st.doms, frozenset())
                for tup in _enum_bag(plan, b, st.doms, target, order):
                    st._add_tuple(b, tup)
        st.alive = [set() for _ in range(nbags)]
        st._sweep([True] * nbags)
        return st

    def _add_tuple(self, b: int, tup: tuple) -> bool:
        raw = self.raw[b]
        if tup in raw:
            return False
        raw.add(tup)
        idx = self.img_index[b]
        for pos in self.plan.bag_label_pos[b]:
            idx.setdefault((pos, tup[pos]), set()).add(tup)
        return True

    def _kill_tuple(self, b: int, tup: tuple) -> None:
        self.raw[b].discard(tup)
        idx = self.img_index[b]
        for pos in self.plan.bag_label_pos[b]:
            entry = idx.get((pos, tup[pos]))
            if entry is not None:
                entry.discard(tup)

    def _sweep(self, dirty: list[bool]) -> None:
        """Bottom-up semijoin over the raw sets, recomputing only bags
        whose raw set or some child projection changed."""
        plan = self.plan
        changed = [False] * len(plan.bag_vars)
        for b in range(len(plan.bag_vars)):
            if not dirty[b] and not any(
                changed[c] for c in plan.bag_children[b]
            ):
                continue
            new = set()
            children = plan.bag_children[b]
            alive = self.alive
            for tup in self.raw[b]:
                for c in children:
                    if _child_key(plan, c, tup) not in alive[c]:
                        break
                else:
                    new.add(tup[1:])
            if new != self.alive[b]:
                self.alive[b] = new
                changed[b] = True
        self.covered = all(self.alive[r] for r in plan.bag_roots)

    def copy(self) -> "CoverageState":
        st = CoverageState.__new__(CoverageState)
        st.plan = self.plan
        st.doms = [set(d) for d in self.doms]
        st.raw = [set(r) for r in self.raw]
        st.img_index = [
            {k: set(v) for k, v in idx.items()} for idx in self.img_index
        ]
        st.alive = [set(a) for a in self.alive]
        st.covered = self.covered
        return st

    def extended(
        self,
        target: Structure,
        seed: Seed | None,
        add_nodes,
        add_unary,
        add_binary,
        removed_unary,
    ) -> "CoverageState":
        """The state of ``target`` (= this state's target plus the given
        add-only delta), derived by delta application.

        Soundness: a tuple valid against the extension but not the base
        must touch the delta — some variable image is a new node, a
        node with a changed label, or an endpoint of a new edge; a
        tuple valid against the base dies only through a removed label.
        Kills are O(killed) through the per-position image index, new
        tuples are enumerated anchored at the delta, and the semijoin
        re-propagates only bags whose sets changed.
        """
        st = self.copy()
        plan = st.plan
        seed = dict(seed or {})
        fixed = {plan.nodes.index(x): img for x, img in seed.items()} \
            if seed else {}
        dirty = [False] * len(plan.bag_vars)

        # -- kills: removed labels invalidate tuples and domain entries
        for fact in removed_unary:
            for i in plan.vars_by_label.get(fact.label, ()):
                st.doms[i].discard(fact.node)
            for b, pos in plan.label_positions.get(fact.label, ()):
                victims = st.img_index[b].get((pos, fact.node))
                if victims:
                    for tup in list(victims):
                        st._kill_tuple(b, tup)
                    dirty[b] = True

        # -- domain gains: new nodes and newly-labelled nodes
        cand_nodes = set(add_nodes) | {f.node for f in add_unary}
        for fact in add_binary:
            if fact.src == fact.dst:
                cand_nodes.add(fact.src)  # may enable a self-loop var
        gained: list[tuple[int, Node]] = []
        for v in cand_nodes:
            labs = target.labels(v)
            for i in range(plan.n):
                if v in st.doms[i]:
                    continue
                if i in fixed and v != fixed[i]:
                    continue
                if not frozenset(plan.labels[i]) <= labs:
                    continue
                if any(
                    v not in target.out_by_pred(v).get(p, ())
                    for p in plan.self_loops[i]
                ):
                    continue
                st.doms[i].add(v)
                gained.append((i, v))

        # -- new tuples anchored at the delta
        for fact in add_binary:
            for b, xp, yp in plan.atoms_by_pred.get(fact.pred, ()):
                order = _bag_order(plan, b, st.doms, frozenset({xp, yp}))
                for tup in _enum_bag(
                    plan, b, st.doms, target, order,
                    pinned={xp: fact.src, yp: fact.dst},
                ):
                    if st._add_tuple(b, tup):
                        dirty[b] = True
        for i, v in gained:
            for b, pos in plan.var_positions.get(i, ()):
                order = _bag_order(plan, b, st.doms, frozenset({pos}))
                for tup in _enum_bag(
                    plan, b, st.doms, target, order, pinned={pos: v}
                ):
                    if st._add_tuple(b, tup):
                        dirty[b] = True

        st._sweep(dirty)
        return st


class MaskCoverageState:
    """The bitset-DP state of one forest-shaped source against one
    target of an extension chain.

    The per-variable candidate bitsets (label + self-loop + seed
    constrained — the "bag satisfying sets" of a width-1 plan, whose
    bags are single query edges) are the retained state: extension
    preserves the target's interning order, so every bit position stays
    valid across the chain, and :meth:`extended` edits only the bits
    the delta touches — cleared where a label was removed, set where a
    new or newly-labelled node qualifies — before the (one-pass)
    directional semijoin re-decides coverage.
    """

    __slots__ = ("init_doms", "target_order", "covered")

    @classmethod
    def cold(
        cls, plan: DecompPlan, target: Structure, seed: Seed | None
    ) -> "MaskCoverageState":
        st = cls.__new__(cls)
        st.init_doms = _lenient_mask_domains(plan, target, seed)
        st.target_order = target.node_order
        st._decide(plan, target)
        return st

    def _decide(self, plan: DecompPlan, target: Structure) -> None:
        idx = target.bitset_index
        domains = list(self.init_doms)
        self.covered = _forest_filter(plan, idx, domains) and all(domains)

    def witness(self, plan: DecompPlan, target: Structure):
        """A covering homomorphism (for the hom-cache), or ``None``.

        Re-runs the (cheap) one-pass filter and extracts the first
        assignment top-down; only called on positive answers, which
        short-circuit the probe's source scan."""
        if not self.covered:
            return None
        idx = target.bitset_index
        domains = list(self.init_doms)
        if not _forest_filter(plan, idx, domains):
            return None
        return next(_iter_forest(plan, idx, domains), None)

    def extended(
        self,
        plan: DecompPlan,
        target: Structure,
        seed: Seed | None,
        add_nodes,
        add_unary,
        add_binary,
        removed_unary,
    ) -> "MaskCoverageState | None":
        # The bit reuse is only sound when the child target's interning
        # order extends the parent's (the factory guarantees it for its
        # own chains by forcing the order before extending; anything
        # else falls back to a cold solve).
        n_parent = len(self.target_order)
        if target.node_order[:n_parent] != self.target_order:
            return None
        st = MaskCoverageState.__new__(MaskCoverageState)
        idx = target.bitset_index
        doms = list(self.init_doms)
        fixed = dict(seed or {})
        for fact in removed_unary:
            bit = 1 << idx.index[fact.node]
            for i in plan.vars_by_label.get(fact.label, ()):
                doms[i] &= ~bit
        cand = set(add_nodes) | {f.node for f in add_unary}
        for fact in add_binary:
            if fact.src == fact.dst:
                cand.add(fact.src)  # may enable a self-loop variable
        cand_mask = 0
        index = idx.index
        for v in cand:
            cand_mask |= 1 << index[v]
        fixed_ids = (
            {plan.nodes.index(x) for x in fixed} if fixed else frozenset()
        )
        # Unconstrained variables accept every node: one OR suffices.
        for i in plan.unconstrained_vars:
            if i not in fixed_ids:
                doms[i] |= cand_mask
        if plan.constrained_vars:
            for v in cand:
                t = index[v]
                bit = 1 << t
                labs = target.labels(v)
                for i in plan.constrained_vars:
                    if doms[i] & bit:
                        continue
                    x = plan.nodes[i]
                    if x in fixed and v != fixed[x]:
                        continue
                    if not frozenset(plan.labels[i]) <= labs:
                        continue
                    for p in plan.self_loops[i]:
                        smask = idx.succ.get(p)
                        if smask is None or not (smask[t] >> t) & 1:
                            break
                    else:
                        doms[i] |= bit
        st.init_doms = doms
        st.target_order = target.node_order
        st._decide(plan, target)
        return st


def _lenient_mask_domains(
    plan: DecompPlan, target: Structure, seed: Seed | None
) -> list[int]:
    """Label/self-loop/seed candidate bitsets, *keeping* empty domains
    (a later delta may repopulate them; the semijoin pass decides)."""
    idx = target.bitset_index
    seed = dict(seed or {})
    doms: list[int] = [0] * plan.n
    for i in range(plan.n):
        x = plan.nodes[i]
        if x in seed:
            image = seed[x]
            t = idx.index.get(image)
            if t is None or not frozenset(plan.labels[i]) <= target.labels(
                image
            ):
                continue
            dom = 1 << t
        else:
            dom = idx.full_mask
            for label in plan.labels[i]:
                dom &= idx.label_nodes.get(label, 0)
        for p in plan.self_loops[i]:
            smask = idx.succ.get(p)
            if smask is None:
                dom = 0
                break
            filtered = 0
            d = dom
            while d:
                bit = d & -d
                d ^= bit
                v = bit.bit_length() - 1
                if (smask[v] >> v) & 1:
                    filtered |= bit
            dom = filtered
        doms[i] = dom
    return doms


class ProbeCoverage:
    """Delta warm-started cactus coverage for one boundedness probe.

    One instance lives for the duration of a
    :func:`~repro.core.boundedness.probe_boundedness` call.  Per
    (source, focus-requirement) it keeps a bounded LRU of coverage
    states keyed by target fingerprint; a target carrying a recorded
    construction delta (``Cactus.cover_delta``) whose parent state is
    retained is answered by delta application instead of a from-scratch
    solve.  Forest-shaped sources (the overwhelmingly common case:
    cactuses of tree queries) use the bitset tier
    (:class:`MaskCoverageState`), whose states are a handful of ints —
    its LRU is sized to survive whole span>=2 layers, so parents are
    still retained when their (many) children arrive; width-2 sources
    use the heavier relational tier (:class:`CoverageState`) with a
    small LRU; anything wider falls back to the session's regular
    (cached) hom engine.

    Answers are exchanged with the calling session's hom-cache under
    the ``decomp`` backend key (the coverage predicate *is*
    ``has_homomorphism``): a repeated probe — same session, same query,
    deeper run — is answered from the cache without re-solving, exactly
    like the batch path it replaces.  Negative answers always cache;
    positive ones cache when the tier can extract a witness (the
    find-cache stores witnesses, never bare booleans).
    """

    MAX_MASK_STATES_PER_SOURCE = 128
    MAX_RELATIONAL_STATES_PER_SOURCE = 8
    MAX_WIDTH = 2

    def __init__(self, session=None) -> None:
        self._session = session
        self._chains: dict[tuple, OrderedDict[str, object]] = {}
        self._answers: dict[tuple, bool] = {}
        # Every cactus structure seen by this probe, by fingerprint:
        # the parent of any deeper target passed through here earlier
        # (as a shallower target or a shallow source), so a chain with
        # no retained parent state can *seed* itself — one cold solve
        # of the parent makes the whole sibling layer warm.
        self._structures: dict[str, Structure] = {}
        self.warm_hits = 0
        self.cold_solves = 0

    def covered_by_any(self, target, shallow, require_focus: bool) -> bool:
        """Does some cactus in ``shallow`` map into the cactus
        ``target`` (fixing the root focus when ``require_focus``)?"""
        self._structures.setdefault(
            target.structure.fingerprint, target.structure
        )
        for source in shallow:
            self._structures.setdefault(
                source.structure.fingerprint, source.structure
            )
        return any(
            self._check(source, target, require_focus) for source in shallow
        )

    def _engine_and_key(self, source, target, seed):
        """The session's hom engine plus the find-cache key this pair
        shares with ``has_homomorphism(..., backend="decomp")`` (None
        when the session disabled its cache)."""
        from . import homengine

        engine = homengine._engine(self._session)
        if not engine.cache_enabled:
            return engine, None
        key = homengine._cache_key(
            "decomp", source.structure, target.structure, seed,
            None, None, None,
        )
        return engine, key

    def _check(self, source, target, require_focus: bool) -> bool:
        skey = (source.structure.fingerprint, require_focus)
        tfp = target.structure.fingerprint
        answer = self._answers.get((skey, tfp))
        if answer is not None:
            return answer
        seed = (
            {source.root_focus: target.root_focus} if require_focus else None
        )
        plan = decomp_plan(source.structure)
        if plan.width > self.MAX_WIDTH:
            from . import homengine

            answer = homengine.has_homomorphism(
                source.structure,
                target.structure,
                seed=seed,
                session=self._session,
            )
            self._answers[(skey, tfp)] = answer
            return answer
        from .homengine import _MISS

        engine, cache_key = self._engine_and_key(source, target, seed)
        if cache_key is not None:
            hit = engine._cache_get(cache_key)
            if hit is not _MISS:
                answer = hit is not None
                self._answers[(skey, tfp)] = answer
                return answer
        mask_tier = plan.forest_order is not None
        tier = MaskCoverageState if mask_tier else CoverageState
        chain = self._chains.setdefault(skey, OrderedDict())
        state = None
        delta = getattr(target, "cover_delta", None)
        if delta is not None:
            parent_state = chain.get(delta[0])
            if parent_state is None:
                # Seed the chain: the parent structure passed through
                # this probe earlier, so one cold solve of the parent
                # turns this target — and every sibling extending the
                # same parent — into a warm extension.  (The root focus
                # node is identical all along a cactus chain, so the
                # seed dict transfers unchanged.)
                parent_structure = self._structures.get(delta[0])
                if parent_structure is not None:
                    parent_state = tier.cold(plan, parent_structure, seed)
                    self.cold_solves += 1
                    chain[delta[0]] = parent_state
            else:
                chain.move_to_end(delta[0])
            if parent_state is not None:
                if mask_tier:
                    state = parent_state.extended(
                        plan, target.structure, seed, *delta[1:]
                    )
                else:
                    state = parent_state.extended(
                        target.structure, seed, *delta[1:]
                    )
                if state is not None:
                    self.warm_hits += 1
        if state is None:
            state = tier.cold(plan, target.structure, seed)
            self.cold_solves += 1
        chain[tfp] = state
        limit = (
            self.MAX_MASK_STATES_PER_SOURCE
            if mask_tier
            else self.MAX_RELATIONAL_STATES_PER_SOURCE
        )
        while len(chain) > limit:
            chain.popitem(last=False)
        answer = state.covered
        self._answers[(skey, tfp)] = answer
        if cache_key is not None:
            if not answer:
                engine._cache_put(cache_key, None)
            elif mask_tier:
                witness = state.witness(plan, target.structure)
                if witness is not None:
                    engine._cache_put(cache_key, tuple(witness.items()))
        return answer
