"""Pluggable homomorphism engine: backends, hom-cache, and batch APIs.

Architecture
============

Every decision procedure in this library (cactus covering, boundedness
probing, UCQ rewriting, the Λ-CQ decider, core checks, datalog-bypass
evaluation) bottoms out in homomorphism search, so the engine is split
into swappable *backends* behind one call surface:

``naive``
    The original backtracking search over per-node candidate lists with
    a static connectivity-aware order.  Kept verbatim (modulo the
    precomputed per-target-node predicate sets) as the correctness
    oracle for property-based cross-validation.

``bitset``
    Integer-interned search over the target's
    :class:`~repro.core.structure.BitsetIndex`.  Candidate domains are
    Python ints used as bitsets; initial domains are produced by ANDing
    label/pred masks, tightened to arc consistency by an AC-3 pass over
    the source edges, and maintained by forward checking (bitwise AND
    against precomputed adjacency masks) during a backtracking search
    with dynamic most-constrained-variable ordering.

``matrix``
    The same search over the target's dense
    :class:`~repro.core.structure.MatrixIndex`: candidate domains are
    numpy boolean vectors, the AC-3 support computation is one
    boolean-semiring matrix-vector product (``adj[p] @ domain``) per
    revision instead of a per-candidate Python loop, and forward
    checking ANDs precomputed adjacency rows.  Pays off on large,
    edge-rich targets (hundreds of nodes); on small structures the
    ``bitset`` backend wins.  numpy is an *optional* extra: without it
    the ``matrix`` backend transparently falls back to the pure-python
    int-bitset search (identical answers, no hard dependency).

``decomp``
    Semijoin dynamic programming over a tree decomposition of the
    *query* (:mod:`repro.core.decomp`): polynomial-time for
    bounded-width queries, with a compiled, fingerprint-interned
    :class:`~repro.core.decomp.DecompPlan` replayed across whole
    target batches.  Forest-shaped queries (width <= 1 — paths, trees,
    cactuses) run a single directional bitset semijoin pass; wider
    queries run the general per-bag relational DP.  Pure python, no
    optional dependency, and ``count_homomorphisms`` uses bag-product
    counting instead of enumeration.

All backends enumerate exactly the same set of homomorphisms.  The
default backend, the hom-cache and all other mutable engine state live
on a :class:`HomEngine` owned by a :class:`~repro.session.Session`;
every entry point takes an explicit ``session=`` (falling back to the
module-level default session, which is configured from the ``REPRO_*``
environment via :meth:`repro.core.config.EngineConfig.from_env`) plus a
per-call ``backend=`` override.  ``backend="auto"`` — per call or as
the session default — resolves per call from the *query's* cached
decomposition width (tree-shaped queries route to ``decomp``) and the
target's size and edge density (``matrix`` vs ``bitset``);
see :func:`repro.core.config.choose_auto_backend`, calibrated from the
committed ``BENCH_batch.json`` and ``BENCH_decomp.json`` duels.

Cache
=====

:func:`find_homomorphism` / :func:`has_homomorphism` answers are
LRU-cached keyed on the *content fingerprints* of source and target
(:attr:`~repro.core.structure.Structure.fingerprint`) plus the frozen
seed/restriction/forbid/domain arguments, so repeated checks across
equal structures — ubiquitous in the Proposition 2 probe's depth loop
and the Appendix F cuttability fixpoint — are answered once.
:func:`count_homomorphisms` answers (enumeration sizes) share the same
LRU under a distinct key tag, and a counting pass also seeds the
find/has entry for the same arguments with its first witness.  Calls
with a ``node_filter`` callable are never cached (the callable is
opaque); prefer the declarative ``node_domains`` / ``forbid``
arguments, which are cacheable and usually faster.  The cache is
per-session: disable or resize it via ``EngineConfig`` /
:func:`configure_cache` (or ``REPRO_HOM_CACHE=0`` for the default
session).

Batch APIs
==========

:func:`covers_any` (does any of a batch of sources map into one
target?) and :func:`evaluate_batch` (one query over many instances)
expose the batch traffic shape of the consumers, sharing the target's
lazily-built indexes and the cache across the whole batch.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from . import decomp as _decomp
from .config import BACKEND_CHOICES, EngineConfig, choose_auto_backend
from .config import BACKENDS as BACKENDS  # re-export: stable engine API
from .errors import Budget, ResourceExhausted, call_budget
from .semiring import (
    Evaluation,
    Semiring,
    freeze_weights,
    hom_weight,
    resolve_semiring,
)
from .structure import (
    BinaryFact,
    Node,
    Structure,
    UnaryFact,
    _canonical_key,
    numpy_or_none,
)

Seed = Mapping[Node, Node]
NodeDomains = Mapping[Node, frozenset[Node]]


def matrix_backend_available() -> bool:
    """True when numpy is installed, i.e. the ``matrix`` backend runs
    its dense path rather than the pure-python bitset fallback."""
    return numpy_or_none() is not None


# ``auto`` resolution computes the source's decomposition width (cached
# on the structure) to route tree-shaped queries to the ``decomp``
# backend.  Sources larger than this are assumed non-query-shaped and
# skip the width probe: the min-fill fallback on a huge dense source
# would cost more than the routing decision is worth.
_AUTO_WIDTH_SOURCE_LIMIT = 512


# ----------------------------------------------------------------------
# Per-session engine state: default backend + the LRU hom-cache
# ----------------------------------------------------------------------


@dataclass
class CacheInfo:
    hits: int
    misses: int
    size: int
    maxsize: int
    enabled: bool


_MISS = object()


class HomEngine:
    """The mutable hom-search state of one session.

    Owns the session's default backend choice and its LRU hom-cache.
    Two sessions never share an instance, so differently-configured
    engines can answer queries side by side in one process without
    contaminating each other's caches or defaults.
    """

    def __init__(self, config: EngineConfig) -> None:
        self.default_backend = config.backend
        self.cache_enabled = config.hom_cache
        self.cache_maxsize = config.hom_cache_size
        self._cache: OrderedDict[tuple, tuple | None] = OrderedDict()
        self._hits = 0
        self._misses = 0
        # Optional disk tier under the LRU (repro.core.store): misses
        # fall through to it and promote on hit, puts write through.
        self._store = None

    def attach_store(self, store) -> None:
        """Layer a :class:`~repro.core.store.DurableStore` under the
        in-memory LRU (memory -> disk lookup, write-through puts).
        Cache keys are content-fingerprint tuples, so entries are valid
        across processes and restarts."""
        self._store = store

    # -- backend resolution --------------------------------------------

    def resolve_backend(
        self,
        backend: str | None,
        target: Structure | None = None,
        source: Structure | None = None,
    ) -> str:
        """The concrete backend for one call: per-call override beats
        the session default, and ``auto`` routes on *both* sides — the
        query's cached decomposition width (tree-shaped sources go to
        the poly-time ``decomp`` DP) and the target's node count and
        edge density (``matrix`` vs ``bitset``)."""
        if backend is None:
            backend = self.default_backend
        elif backend not in BACKEND_CHOICES:
            raise ValueError(
                f"unknown backend {backend!r}; expected {BACKEND_CHOICES}"
            )
        if backend == "auto":
            if target is None:
                return "bitset"
            width = None
            if (
                source is not None
                and len(source.nodes) <= _AUTO_WIDTH_SOURCE_LIMIT
            ):
                width = _decomp.query_width(source)
            return choose_auto_backend(
                len(target.nodes),
                len(target.binary_facts),
                matrix_backend_available(),
                width,
            )
        return backend

    def set_default_backend(self, backend: str) -> str:
        """Set this engine's default backend; returns the previous one."""
        if backend not in BACKEND_CHOICES:
            raise ValueError(
                f"unknown backend {backend!r}; expected {BACKEND_CHOICES}"
            )
        previous = self.default_backend
        self.default_backend = backend
        return previous

    # -- cache ----------------------------------------------------------

    def configure_cache(
        self, enabled: bool | None = None, maxsize: int | None = None
    ) -> None:
        """Enable/disable the hom-cache or change its capacity."""
        if enabled is not None:
            self.cache_enabled = enabled
        if maxsize is not None:
            self.cache_maxsize = maxsize
            while len(self._cache) > self.cache_maxsize:
                self._cache.popitem(last=False)

    def clear_cache(self) -> None:
        """Drop all *in-memory* cached answers and reset the counters.
        A durable store attached under the LRU is deliberately left
        alone — disk state outlives the session (use
        ``DurableStore.clear`` / ``repro cache clear`` for that)."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0

    def cache_info(self) -> CacheInfo:
        """Hit/miss counters and occupancy of the hom-cache."""
        return CacheInfo(
            self._hits,
            self._misses,
            len(self._cache),
            self.cache_maxsize,
            self.cache_enabled,
        )

    def _cache_get(self, key: tuple):
        try:
            value = self._cache[key]
        except KeyError:
            if self._store is not None:
                from .store import MISS as _STORE_MISS

                value = self._store.get("hom", key)
                if value is not _STORE_MISS:
                    # Disk hit: promote into the LRU without writing
                    # the entry straight back to disk.
                    self._cache_put(key, value, write_through=False)
                    self._hits += 1
                    return value
            self._misses += 1
            return _MISS
        self._cache.move_to_end(key)
        self._hits += 1
        return value

    def _cache_put(self, key: tuple, value, write_through: bool = True):
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_maxsize:
            self._cache.popitem(last=False)
        if write_through and self._store is not None:
            self._store.put("hom", key, value)


def _engine(session) -> HomEngine:
    """The :class:`HomEngine` of ``session`` (default session if None)."""
    if session is not None:
        return session.hom
    from ..session import default_session

    return default_session().hom


# ----------------------------------------------------------------------
# Default-session shims (the pre-Session free-function surface)
# ----------------------------------------------------------------------


def get_default_backend() -> str:
    """The default session's backend (used when a call passes neither
    ``backend=`` nor ``session=``)."""
    return _engine(None).default_backend


def set_default_backend(backend: str) -> str:
    """Set the default session's backend; returns the previous one."""
    return _engine(None).set_default_backend(backend)


def configure_cache(
    enabled: bool | None = None, maxsize: int | None = None
) -> None:
    """Enable/disable the default session's hom-cache or resize it."""
    _engine(None).configure_cache(enabled=enabled, maxsize=maxsize)


def clear_hom_cache() -> None:
    """Drop the default session's cached answers and reset counters."""
    _engine(None).clear_cache()


def hom_cache_info() -> CacheInfo:
    """Hit/miss counters and occupancy of the default session's cache."""
    return _engine(None).cache_info()


def _freeze_nodes(nodes: Iterable[Node] | None) -> tuple | None:
    if nodes is None:
        return None
    return tuple(sorted(nodes, key=_canonical_key))


def _cache_key(
    backend: str,
    source: Structure,
    target: Structure,
    seed: Seed | None,
    restrict_image: frozenset[Node] | None,
    node_domains: NodeDomains | None,
    forbid: frozenset[Node] | None,
) -> tuple:
    frozen_seed = (
        None
        if not seed
        else tuple(sorted(seed.items(), key=lambda kv: _canonical_key(kv[0])))
    )
    frozen_domains = (
        None
        if not node_domains
        else tuple(
            sorted(
                (
                    (node, _freeze_nodes(allowed))
                    for node, allowed in node_domains.items()
                ),
                key=lambda kv: _canonical_key(kv[0]),
            )
        )
    )
    # The backend is part of the key: a cross-validation call with an
    # explicit backend= must never be answered from the other backend's
    # cached result (naive is documented as the correctness oracle).
    return (
        backend,
        source.fingerprint,
        target.fingerprint,
        frozen_seed,
        _freeze_nodes(restrict_image),
        frozen_domains,
        _freeze_nodes(forbid),
    )


# ----------------------------------------------------------------------
# The naive backend (correctness oracle)
# ----------------------------------------------------------------------


def _naive_initial_domains(
    source: Structure,
    target: Structure,
    seed: Seed,
    restrict_image: frozenset[Node] | None,
) -> dict[Node, list[Node]] | None:
    """Label/degree-filtered candidate sets; ``None`` if some domain is
    empty.  The per-candidate predicate sets come from the target's
    lazily-built index, so they are computed once per target structure
    rather than once per (source-node, candidate) pair."""
    domains: dict[Node, list[Node]] = {}
    target_nodes = target.nodes if restrict_image is None else restrict_image
    for node in source.nodes:
        if node in seed:
            image = seed[node]
            if image not in target.nodes:
                return None
            if not source.labels(node) <= target.labels(image):
                return None
            domains[node] = [image]
            continue
        required = source.labels(node)
        out_preds = source.out_pred_set(node)
        in_preds = source.in_pred_set(node)
        candidates = []
        for cand in target_nodes:
            if not required <= target.labels(cand):
                continue
            if not out_preds <= target.out_pred_set(cand):
                continue
            if not in_preds <= target.in_pred_set(cand):
                continue
            candidates.append(cand)
        if not candidates:
            return None
        domains[node] = candidates
    return domains


def _naive_consistent(
    source: Structure,
    target: Structure,
    assignment: dict[Node, Node],
    node: Node,
    image: Node,
) -> bool:
    """Check all source edges between ``node`` and assigned nodes."""
    for fact in source.out_edges(node):
        other = assignment.get(fact.dst)
        if fact.dst == node:
            other = image
        if other is None:
            continue
        if not any(
            e.pred == fact.pred and e.dst == other
            for e in target.out_edges(image)
        ):
            return False
    for fact in source.in_edges(node):
        other = assignment.get(fact.src)
        if fact.src == node:
            other = image
        if other is None:
            continue
        if not any(
            e.pred == fact.pred and e.src == other
            for e in target.in_edges(image)
        ):
            return False
    return True


def _naive_order_nodes(
    source: Structure, domains: dict[Node, list[Node]], seed: Seed
) -> list[Node]:
    """Connectivity-aware static order: seeded nodes first, then BFS by
    ascending domain size, component by component."""
    order: list[Node] = [n for n in source.nodes if n in seed]
    placed = set(order)
    remaining = set(source.nodes) - placed

    def neighbours(node: Node) -> Iterator[Node]:
        yield from source.successors(node)
        yield from source.predecessors(node)

    while remaining:
        frontier = {
            n for n in remaining if any(m in placed for m in neighbours(n))
        }
        if not frontier:
            frontier = remaining
        best = min(frontier, key=lambda n: (len(domains[n]), str(n)))
        order.append(best)
        placed.add(best)
        remaining.remove(best)
    return order


def _iter_naive(
    source: Structure,
    target: Structure,
    seed: Seed,
    restrict_image: frozenset[Node] | None,
    node_filter: Callable[[Node, Node], bool] | None,
    node_domains: NodeDomains | None,
    forbid: frozenset[Node] | None,
    budget: Budget | None = None,
) -> Iterator[dict[Node, Node]]:
    domains = _naive_initial_domains(source, target, seed, restrict_image)
    if domains is None:
        return
    if node_filter is not None or node_domains or forbid:
        for node, cands in domains.items():
            allowed = node_domains.get(node) if node_domains else None
            filtered = [
                v
                for v in cands
                if (forbid is None or v not in forbid)
                and (allowed is None or v in allowed)
                and (node_filter is None or node_filter(node, v))
            ]
            if not filtered:
                return
            domains[node] = filtered
    order = _naive_order_nodes(source, domains, seed)
    assignment: dict[Node, Node] = {}

    def backtrack(index: int) -> Iterator[dict[Node, Node]]:
        if index == len(order):
            yield dict(assignment)
            return
        node = order[index]
        for image in domains[node]:
            if budget is not None:
                budget.charge()
            if _naive_consistent(source, target, assignment, node, image):
                assignment[node] = image
                yield from backtrack(index + 1)
                del assignment[node]

    yield from backtrack(0)


# ----------------------------------------------------------------------
# The bitset backend
# ----------------------------------------------------------------------


class _SourcePlan:
    """Compiled source-side search plan, memoized per structure.

    Everything derivable from the source alone — node interning, label
    and incident-predicate requirements, adjacency lists over source
    indices — is computed once and stashed on the structure, so repeated
    searches from the same source (the dominant traffic shape: one CQ or
    cactus probed against many targets) skip all of it.
    """

    __slots__ = ("nodes", "n", "labels", "out_preds", "in_preds",
                 "out_adj", "in_adj", "edges")

    def __init__(self, source: Structure) -> None:
        self.nodes = source.node_order
        self.n = len(self.nodes)
        index = source.node_index
        self.labels = [tuple(source.labels(x)) for x in self.nodes]
        self.out_preds = [tuple(source.out_pred_set(x)) for x in self.nodes]
        self.in_preds = [tuple(source.in_pred_set(x)) for x in self.nodes]
        self.out_adj: list[list[tuple[str, int]]] = [[] for _ in self.nodes]
        self.in_adj: list[list[tuple[str, int]]] = [[] for _ in self.nodes]
        self.edges: list[tuple[int, str, int]] = []
        for fact in source.binary_facts:
            s, d = index[fact.src], index[fact.dst]
            self.out_adj[s].append((fact.pred, d))
            self.in_adj[d].append((fact.pred, s))
            self.edges.append((s, fact.pred, d))

    @classmethod
    def extended(
        cls,
        base: "_SourcePlan",
        source: Structure,
        touched: frozenset[Node],
        added_binary: tuple,
    ) -> "_SourcePlan":
        """Derive the plan of an ``Structure.extended`` result from its
        base's plan: node ids are a superset (extension appends to the
        interning order), so only the delta's rows are recomputed."""
        plan = cls.__new__(cls)
        plan.nodes = source.node_order
        plan.n = len(plan.nodes)
        index = source.node_index
        pad = plan.n - base.n
        plan.labels = base.labels + [()] * pad
        plan.out_preds = base.out_preds + [()] * pad
        plan.in_preds = base.in_preds + [()] * pad
        for x in touched:
            i = index[x]
            plan.labels[i] = tuple(source.labels(x))
            plan.out_preds[i] = tuple(source.out_pred_set(x))
            plan.in_preds[i] = tuple(source.in_pred_set(x))
        out_adj = base.out_adj + [[] for _ in range(pad)]
        in_adj = base.in_adj + [[] for _ in range(pad)]
        edges = base.edges + []
        fresh_out = set(range(base.n, plan.n))
        fresh_in = set(fresh_out)
        for fact in added_binary:
            s, d = index[fact.src], index[fact.dst]
            if s not in fresh_out:
                out_adj[s] = list(out_adj[s])
                fresh_out.add(s)
            if d not in fresh_in:
                in_adj[d] = list(in_adj[d])
                fresh_in.add(d)
            out_adj[s].append((fact.pred, d))
            in_adj[d].append((fact.pred, s))
            edges.append((s, fact.pred, d))
        plan.out_adj = out_adj
        plan.in_adj = in_adj
        plan.edges = edges
        return plan


def _source_plan(source: Structure) -> _SourcePlan:
    plan = source._engine_plan
    if plan is None:
        hint = source._extend_hint
        if hint is not None:
            base, touched, added_binary = hint
            base_plan = base._engine_plan
            # Reusable whenever the base compiled a plan: the base plan
            # forced the base's order to exist, and order inheritance
            # (eager, or lazily resolved by the node_order touch below)
            # guarantees the id prefix the derivation relies on.
            if base_plan is not None:
                source.node_order  # resolve a pending lazy inheritance
                plan = _SourcePlan.extended(
                    base_plan, source, touched, added_binary
                )
        if plan is None:
            plan = _SourcePlan(source)
        source._engine_plan = plan
        # The hint is consumed either way; dropping it releases the
        # reference chain to the base structure.
        source._extend_hint = None
    return plan


def _iter_bitset(
    source: Structure,
    target: Structure,
    seed: Seed,
    restrict_image: frozenset[Node] | None,
    node_filter: Callable[[Node, Node], bool] | None,
    node_domains: NodeDomains | None,
    forbid: frozenset[Node] | None,
    budget: Budget | None = None,
) -> Iterator[dict[Node, Node]]:
    plan = _source_plan(source)
    n = plan.n
    if n == 0:
        yield {}
        return
    idx = target.bitset_index
    target_names = idx.nodes
    if not target_names:
        return
    full = idx.full_mask
    restrict_mask = (
        full if restrict_image is None else idx.mask_of(restrict_image)
    )
    veto_mask = full
    if forbid:
        veto_mask &= full & ~idx.mask_of(forbid)

    label_nodes = idx.label_nodes
    has_out = idx.has_out
    has_in = idx.has_in
    src_nodes = plan.nodes

    # --- initial domains: chained mask intersections -------------------
    domains: list[int] = [0] * n
    for i in range(n):
        x = src_nodes[i]
        if x in seed:
            image = seed[x]
            t = idx.index.get(image)
            if t is None:
                return
            if not source.labels(x) <= target.labels(image):
                return
            dom = 1 << t
        else:
            dom = restrict_mask
            for label in plan.labels[i]:
                dom &= label_nodes.get(label, 0)
            for p in plan.out_preds[i]:
                dom &= has_out.get(p, 0)
            for p in plan.in_preds[i]:
                dom &= has_in.get(p, 0)
        dom &= veto_mask
        if node_domains is not None and x in node_domains:
            dom &= idx.mask_of(node_domains[x])
        if node_filter is not None and dom:
            filtered = 0
            d = dom
            while d:
                bit = d & -d
                d ^= bit
                if node_filter(x, target_names[bit.bit_length() - 1]):
                    filtered |= bit
            dom = filtered
        if not dom:
            return
        domains[i] = dom

    succ = idx.succ
    pred = idx.pred
    edges = plan.edges

    # --- AC-3 pass over the source edges ------------------------------
    if edges:
        watchers: dict[int, list[int]] = {}
        for ei, (xi, _, yi) in enumerate(edges):
            watchers.setdefault(xi, []).append(ei)
            if yi != xi:
                watchers.setdefault(yi, []).append(ei)
        queue = deque(range(len(edges)))
        queued = set(queue)
        while queue:
            if budget is not None:
                budget.charge()  # one AC-3 edge revision
            ei = queue.popleft()
            queued.discard(ei)
            xi, p, yi = edges[ei]
            smask = succ.get(p)
            if smask is None:
                return  # seeded node with a predicate absent from target
            changed: list[int] = []
            if xi == yi:
                dom = domains[xi]
                new = 0
                d = dom
                while d:
                    bit = d & -d
                    d ^= bit
                    v = bit.bit_length() - 1
                    if (smask[v] >> v) & 1:
                        new |= bit
                if not new:
                    return
                if new != dom:
                    domains[xi] = new
                    changed.append(xi)
            else:
                pmask = pred[p]
                dx, dy = domains[xi], domains[yi]
                newx = 0
                d = dx
                while d:
                    bit = d & -d
                    d ^= bit
                    if smask[bit.bit_length() - 1] & dy:
                        newx |= bit
                if not newx:
                    return
                newy = 0
                d = dy
                while d:
                    bit = d & -d
                    d ^= bit
                    if pmask[bit.bit_length() - 1] & newx:
                        newy |= bit
                if not newy:
                    return
                if newx != dx:
                    domains[xi] = newx
                    changed.append(xi)
                if newy != dy:
                    domains[yi] = newy
                    changed.append(yi)
            # Re-enqueue every edge watching a changed node, including
            # the edge just processed: newx was filtered against the old
            # dy, so a shrink of dy can leave newx with unsupported
            # values that only another revision of this edge removes.
            for z in changed:
                for ej in watchers.get(z, ()):
                    if ej not in queued:
                        queue.append(ej)
                        queued.add(ej)

    # --- backtracking with MRV and forward checking -------------------
    out_adj = plan.out_adj
    in_adj = plan.in_adj
    assignment: list[int] = [-1] * n
    all_mask = (1 << n) - 1

    def backtrack(
        domains: list[int], remaining: int
    ) -> Iterator[dict[Node, Node]]:
        if not remaining:
            yield {
                src_nodes[i]: target_names[assignment[i]] for i in range(n)
            }
            return
        # Most-constrained variable: smallest domain, lowest index tie-break.
        best = -1
        best_count = -1
        m = remaining
        while m:
            bit = m & -m
            m ^= bit
            i = bit.bit_length() - 1
            count = domains[i].bit_count()
            if best < 0 or count < best_count:
                best, best_count = i, count
                if count == 1:
                    break
        xi = best
        rest = remaining & ~(1 << xi)
        dom = domains[xi]
        while dom:
            if budget is not None:
                budget.charge()  # one backtracking candidate
            bit = dom & -dom
            dom ^= bit
            v = bit.bit_length() - 1
            new = domains[:]
            ok = True
            for p, yi in out_adj[xi]:
                if not (rest >> yi) & 1:
                    continue  # assigned (consistent by construction) or xi
                nd = new[yi] & succ[p][v]
                if not nd:
                    ok = False
                    break
                new[yi] = nd
            if ok:
                for p, yi in in_adj[xi]:
                    if not (rest >> yi) & 1:
                        continue
                    nd = new[yi] & pred[p][v]
                    if not nd:
                        ok = False
                        break
                    new[yi] = nd
            if ok:
                assignment[xi] = v
                yield from backtrack(new, rest)
                assignment[xi] = -1

    yield from backtrack(domains, all_mask)


# ----------------------------------------------------------------------
# The matrix backend (boolean matrix semiring, numpy)
# ----------------------------------------------------------------------


def _iter_matrix(
    source: Structure,
    target: Structure,
    seed: Seed,
    restrict_image: frozenset[Node] | None,
    node_filter: Callable[[Node, Node], bool] | None,
    node_domains: NodeDomains | None,
    forbid: frozenset[Node] | None,
    budget: Budget | None = None,
) -> Iterator[dict[Node, Node]]:
    np = numpy_or_none()
    if np is None:
        # Pure-python int-bitset fallback: numpy stays an optional
        # extra, and backend="matrix" keeps yielding identical answers.
        yield from _iter_bitset(
            source, target, seed, restrict_image,
            node_filter, node_domains, forbid, budget,
        )
        return
    plan = _source_plan(source)
    n = plan.n
    if n == 0:
        yield {}
        return
    midx = target.matrix_index
    target_names = midx.nodes
    m = midx.n
    if m == 0:
        return
    restrict_vec = (
        midx.full if restrict_image is None else midx.mask_of(restrict_image)
    )
    veto = ~midx.mask_of(forbid) if forbid else None

    label_nodes = midx.label_nodes
    has_out = midx.has_out
    has_in = midx.has_in
    src_nodes = plan.nodes
    index = midx.index

    # --- initial domains: chained vector intersections -----------------
    # A list of per-variable boolean vectors (not one 2D block): the
    # backtracker saves and restores rows by rebinding list slots, which
    # keeps the displaced row objects intact.
    domains: list = [None] * n
    for i in range(n):
        x = src_nodes[i]
        if x in seed:
            image = seed[x]
            t = index.get(image)
            if t is None:
                return
            if not source.labels(x) <= target.labels(image):
                return
            dom = np.zeros(m, dtype=bool)
            dom[t] = True
        else:
            dom = restrict_vec.copy()
            for label in plan.labels[i]:
                vec = label_nodes.get(label)
                if vec is None:
                    return
                dom &= vec
            for p in plan.out_preds[i]:
                vec = has_out.get(p)
                if vec is None:
                    return
                dom &= vec
            for p in plan.in_preds[i]:
                vec = has_in.get(p)
                if vec is None:
                    return
                dom &= vec
        if veto is not None:
            dom &= veto
        if node_domains is not None and x in node_domains:
            dom &= midx.mask_of(node_domains[x])
        if node_filter is not None:
            for v in np.flatnonzero(dom):
                if not node_filter(x, target_names[v]):
                    dom[v] = False
        if not dom.any():
            return
        domains[i] = dom

    adj = midx.adj
    adj_t = midx.adj_t
    edges = plan.edges

    # --- AC-3 pass: support via boolean-semiring matvec ----------------
    if edges:
        watchers: dict[int, list[int]] = {}
        for ei, (xi, _, yi) in enumerate(edges):
            watchers.setdefault(xi, []).append(ei)
            if yi != xi:
                watchers.setdefault(yi, []).append(ei)
        queue = deque(range(len(edges)))
        queued = set(queue)
        while queue:
            if budget is not None:
                budget.charge()  # one AC-3 edge revision
            ei = queue.popleft()
            queued.discard(ei)
            xi, p, yi = edges[ei]
            mat = adj.get(p)
            if mat is None:
                return  # seeded node with a predicate absent from target
            changed: list[int] = []
            if xi == yi:
                new = domains[xi] & mat.diagonal()
                if not new.any():
                    return
                if (new != domains[xi]).any():
                    domains[xi] = new
                    changed.append(xi)
            else:
                dx, dy = domains[xi], domains[yi]
                # v survives in dx iff some w in dy has an edge v -p-> w:
                # exactly the boolean matrix-semiring product adj[p] @ dy.
                newx = dx & (mat @ dy)
                if not newx.any():
                    return
                newy = dy & (adj_t[p] @ newx)
                if not newy.any():
                    return
                if (newx != dx).any():
                    domains[xi] = newx
                    changed.append(xi)
                if (newy != dy).any():
                    domains[yi] = newy
                    changed.append(yi)
            # Same re-enqueue discipline as the bitset backend: a shrink
            # of dy can leave newx with values only another revision of
            # this very edge removes.
            for z in changed:
                for ej in watchers.get(z, ()):
                    if ej not in queued:
                        queue.append(ej)
                        queued.add(ej)

    # --- backtracking with MRV and forward checking -------------------
    out_adj = plan.out_adj
    in_adj = plan.in_adj
    assignment: list[int] = [-1] * n

    def backtrack(remaining: tuple[int, ...]):
        if not remaining:
            yield {
                src_nodes[i]: target_names[assignment[i]] for i in range(n)
            }
            return
        # Most-constrained variable: smallest domain, lowest index tie-break.
        best = -1
        best_count = -1
        for i in remaining:
            count = int(domains[i].sum())
            if best < 0 or count < best_count:
                best, best_count = i, count
                if count == 1:
                    break
        xi = best
        rest = tuple(i for i in remaining if i != xi)
        rest_set = set(rest)
        for v in np.flatnonzero(domains[xi]):
            if budget is not None:
                budget.charge()  # one backtracking candidate
            v = int(v)
            # Forward checking replaces only the neighbour rows it
            # tightens; the displaced row objects are kept and restored
            # on backtrack (restoring in reverse handles a neighbour
            # reached through several edges), so the whole n x m matrix
            # is never copied per candidate.
            saved: list = []  # (yi, displaced row) in tighten order
            ok = True
            for p, yi in out_adj[xi]:
                if yi not in rest_set:
                    continue  # assigned (consistent by construction) or xi
                row = domains[yi]
                nd = row & adj[p][v]
                if not nd.any():
                    ok = False
                    break
                saved.append((yi, row))
                domains[yi] = nd
            if ok:
                for p, yi in in_adj[xi]:
                    if yi not in rest_set:
                        continue
                    row = domains[yi]
                    nd = row & adj_t[p][v]
                    if not nd.any():
                        ok = False
                        break
                    saved.append((yi, row))
                    domains[yi] = nd
            if ok:
                assignment[xi] = v
                yield from backtrack(rest)
                assignment[xi] = -1
            for yi, row in reversed(saved):
                domains[yi] = row

    yield from backtrack(tuple(range(n)))


_BACKEND_IMPLS = {
    "naive": _iter_naive,
    "bitset": _iter_bitset,
    "matrix": _iter_matrix,
    "decomp": _decomp._iter_decomp,
}


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def iter_homomorphisms(
    source: Structure,
    target: Structure,
    seed: Seed | None = None,
    restrict_image: frozenset[Node] | None = None,
    node_filter: Callable[[Node, Node], bool] | None = None,
    *,
    node_domains: NodeDomains | None = None,
    forbid: frozenset[Node] | None = None,
    backend: str | None = None,
    session=None,
    budget: Budget | None = None,
) -> Iterator[dict[Node, Node]]:
    """Yield all homomorphisms from ``source`` to ``target``.

    ``seed`` fixes images for some source nodes.  ``restrict_image``
    limits candidate images of non-seeded nodes.  ``node_domains`` maps
    individual source nodes to their allowed image sets and ``forbid``
    excludes target nodes globally (both are cache-friendly, declarative
    alternatives to ``node_filter``).  ``node_filter(x, v)`` may veto
    mapping source node ``x`` to target node ``v``.  ``backend``
    overrides the session default (``naive``, ``bitset``, ``matrix`` or
    ``auto``); all backends yield exactly the same set of
    homomorphisms.  ``session`` selects the engine state (default
    session when omitted).  ``budget`` is the cooperative resource
    meter the search charges (resolved from the session when omitted:
    the active governed-scope budget, else a transient per-call one;
    ``None`` for ungoverned configs); an exhausted budget raises
    :class:`~repro.core.errors.ResourceExhausted` out of the iteration.
    """
    impl = _BACKEND_IMPLS[
        _engine(session).resolve_backend(backend, target, source)
    ]
    if budget is None:
        budget = call_budget(session)
    yield from impl(
        source,
        target,
        dict(seed or {}),
        restrict_image,
        node_filter,
        node_domains,
        forbid,
        budget,
    )


def find_homomorphism(
    source: Structure,
    target: Structure,
    seed: Seed | None = None,
    restrict_image: frozenset[Node] | None = None,
    node_filter: Callable[[Node, Node], bool] | None = None,
    *,
    node_domains: NodeDomains | None = None,
    forbid: frozenset[Node] | None = None,
    backend: str | None = None,
    use_cache: bool | None = None,
    session=None,
    budget: Budget | None = None,
) -> dict[Node, Node] | None:
    """The first homomorphism found, or ``None`` (LRU-cached).

    Answers are cached across structurally-equal source/target pairs
    unless a ``node_filter`` callable is given or ``use_cache=False``.
    Cache hits never touch the ``budget``; a miss charges the search
    to it (resolved from the session when omitted).
    """
    engine = _engine(session)
    cacheable = (
        node_filter is None
        and use_cache is not False
        and engine.cache_enabled
    )
    resolved = engine.resolve_backend(backend, target, source)
    if cacheable:
        key = _cache_key(
            resolved,
            source,
            target,
            seed,
            restrict_image,
            node_domains,
            forbid,
        )
        hit = engine._cache_get(key)
        if hit is not _MISS:
            return None if hit is None else dict(hit)
    hom = next(
        iter_homomorphisms(
            source,
            target,
            seed,
            restrict_image,
            node_filter,
            node_domains=node_domains,
            forbid=forbid,
            backend=resolved,
            session=session,
            budget=budget,
        ),
        None,
    )
    if cacheable:
        engine._cache_put(key, None if hom is None else tuple(hom.items()))
    return hom


def _count_homomorphisms(
    source: Structure,
    target: Structure,
    seed: Seed | None = None,
    restrict_image: frozenset[Node] | None = None,
    node_filter: Callable[[Node, Node], bool] | None = None,
    *,
    node_domains: NodeDomains | None = None,
    forbid: frozenset[Node] | None = None,
    backend: str | None = None,
    use_cache: bool | None = None,
    session=None,
    budget: Budget | None = None,
) -> int:
    """The number of homomorphisms from ``source`` to ``target`` —
    the exact (arbitrary-precision python int) COUNT kernel behind
    :func:`semiring_evaluate` and ``Session.count_homomorphisms``.

    Enumeration sizes are LRU-cached alongside the find/has answers
    (under a distinct key tag, so a cached witness never masquerades as
    a count), and a counting pass seeds the :func:`find_homomorphism`
    entry for the same arguments with its first witness — counting then
    asking for a witness costs one search, not two.  ``node_filter``
    callables bypass the cache, as everywhere else.
    """
    engine = _engine(session)
    cacheable = (
        node_filter is None
        and use_cache is not False
        and engine.cache_enabled
    )
    resolved = engine.resolve_backend(backend, target, source)
    if cacheable:
        key = ("count",) + _cache_key(
            resolved, source, target, seed, restrict_image,
            node_domains, forbid,
        )
        hit = engine._cache_get(key)
        if hit is not _MISS:
            return hit
    if resolved == "decomp":
        # Bag-product counting: the DP multiplies per-bag extension
        # counts in one bottom-up pass instead of enumerating the hom
        # set (which the other backends must, and which can be
        # exponentially large even for tree queries).
        if budget is None:
            budget = call_budget(session)
        count, first = _decomp.count_decomp(
            source, target, dict(seed or {}), restrict_image,
            node_filter, node_domains, forbid, budget,
        )
    else:
        first = None
        count = 0
        for hom in iter_homomorphisms(
            source,
            target,
            seed,
            restrict_image,
            node_filter,
            node_domains=node_domains,
            forbid=forbid,
            backend=resolved,
            session=session,
            budget=budget,
        ):
            if first is None:
                first = hom
            count += 1
    if cacheable:
        engine._cache_put(key, count)
        find_key = _cache_key(
            resolved, source, target, seed, restrict_image,
            node_domains, forbid,
        )
        engine._cache_put(
            find_key, None if first is None else tuple(first.items())
        )
    return count


def count_homomorphisms(
    source: Structure,
    target: Structure,
    seed: Seed | None = None,
    restrict_image: frozenset[Node] | None = None,
    node_filter: Callable[[Node, Node], bool] | None = None,
    *,
    node_domains: NodeDomains | None = None,
    forbid: frozenset[Node] | None = None,
    backend: str | None = None,
    use_cache: bool | None = None,
    session=None,
    budget: Budget | None = None,
) -> int:
    """Deprecated free-function spelling of homomorphism counting.

    .. deprecated::
        Use ``Session.count_homomorphisms(...)`` (the thin COUNT
        wrapper) or ``Session.evaluate(q, data, semiring="count")`` —
        counting is now the COUNT instance of the semiring surface.
    """
    warnings.warn(
        "count_homomorphisms() is deprecated; use "
        "Session.count_homomorphisms(...) or "
        "Session.evaluate(q, data, semiring='count')",
        DeprecationWarning,
        stacklevel=2,
    )
    return _count_homomorphisms(
        source,
        target,
        seed,
        restrict_image,
        node_filter,
        node_domains=node_domains,
        forbid=forbid,
        backend=backend,
        use_cache=use_cache,
        session=session,
        budget=budget,
    )


# ----------------------------------------------------------------------
# Semiring-generic evaluation
# ----------------------------------------------------------------------


def _nfold_sum(sr: Semiring, n: int):
    """``n``-fold ``⊕`` of ``one`` by doubling: the semiring image of a
    plain hom count (exact in O(log n) ``plus`` calls)."""
    if n <= 0:
        return sr.zero
    result = None
    term = sr.one
    while n:
        if n & 1:
            result = term if result is None else sr.plus(result, term)
        n >>= 1
        if n:
            term = sr.plus(term, term)
    return result


def _matrix_forest_value(
    source: Structure,
    target: Structure,
    sr: Semiring,
    weights,
    seed: Seed,
    restrict_image,
    node_domains,
    forbid,
    budget,
):
    """Forest-query semiring DP as dense matrix-vector products.

    The semiring generalisation of the ``matrix`` backend's boolean
    matvec: per query variable a length-``n`` value vector over the
    target, per query edge one ``M @ vec`` (plus-times carriers:
    bool/count/prob) or one ``(M + vec).min/max(axis=1)`` tropical
    reduction (minplus/maxplus), bottom-up over the forest.  Domains
    are pre-filtered by the decomp bitset semijoin pass, so the dense
    arithmetic only aggregates values — it never has to search.
    Callers gate on ``numpy``, a forest-shaped plan (width <= 1), a
    dense dtype and ``node_filter is None``.
    """
    np = numpy_or_none()
    plan = _decomp.decomp_plan(source)
    if plan.n == 0:
        return sr.one
    prepared = _decomp._mask_domains(
        plan, target, seed, restrict_image, None, node_domains, forbid
    )
    if prepared is None:
        return sr.zero
    domains, bidx = prepared
    if not _decomp._forest_filter(plan, bidx, domains, budget):
        return sr.zero
    midx = target.matrix_index
    n = midx.n
    additive = sr.name in ("minplus", "maxplus")
    # COUNT rides int64 here (explicit matrix routing only; the default
    # COUNT path is the exact python-int decomp/enumeration kernel).
    dtype = np.int64 if sr.dtype == "int" else np.float64
    names = bidx.nodes
    # bit position (bitset interning order) -> matrix row/column
    pos = [midx.index[name] for name in names]

    def dom_vec(mask: int):
        v = np.zeros(n, dtype=bool)
        while mask:
            b = mask & -mask
            mask ^= b
            v[pos[b.bit_length() - 1]] = True
        return v

    def edge_matrix(p: str, child_is_src: bool):
        """``M[parent, child] = weight of the oriented atom's fact``
        (``zero`` — 0 or ±inf — where no such fact exists)."""
        base = midx.adj_t[p] if child_is_src else midx.adj[p]
        if additive:
            mat = np.where(base, 0.0, sr.zero)
        else:
            mat = base.astype(dtype)
        if weights:
            for fact, val in weights.items():
                if not isinstance(fact, BinaryFact) or fact.pred != p:
                    continue
                i = midx.index.get(fact.src)
                j = midx.index.get(fact.dst)
                if i is None or j is None or not midx.adj[p][i, j]:
                    continue
                if child_is_src:
                    mat[j, i] = val
                else:
                    mat[i, j] = val
        return mat

    def unary_vec(var: int, domvec):
        if additive:
            u = np.where(domvec, 0.0, sr.zero)
        else:
            u = domvec.astype(dtype)
        if weights:
            labels = plan.labels[var]
            loops = plan.self_loops[var]
            for fact, val in weights.items():
                if isinstance(fact, UnaryFact):
                    if fact.label not in labels:
                        continue
                    j = midx.index.get(fact.node)
                elif fact.src == fact.dst and fact.pred in loops:
                    j = midx.index.get(fact.src)
                else:
                    continue
                if j is None or not domvec[j]:
                    continue
                if additive:
                    u[j] += val
                else:
                    u[j] *= val
        return u

    vals: list = [None] * plan.n
    for var in reversed(plan.forest_order):
        domvec = dom_vec(domains[var])
        if budget is not None:
            budget.charge(int(domvec.sum()) or 1)
        u = unary_vec(var, domvec)
        for c in plan.forest_children[var]:
            mat = None
            for p, child_is_src in plan.forest_atoms[c]:
                m = edge_matrix(p, child_is_src)
                if mat is None:
                    mat = m
                elif additive:
                    mat = mat + m
                else:
                    mat = mat * m
            shifted = mat + vals[c][None, :] if additive else mat @ vals[c]
            if additive:
                contrib = (
                    shifted.min(axis=1)
                    if sr.name == "minplus"
                    else shifted.max(axis=1)
                )
                u = u + contrib
            else:
                u = u * shifted
        vals[var] = u
    terms = []
    for var in plan.forest_order:
        if plan.forest_parent[var] < 0:
            v = vals[var]
            if additive:
                terms.append(
                    float(v.min() if sr.name == "minplus" else v.max())
                )
            else:
                terms.append(v.sum())
    if additive:
        return sum(terms)  # tropical ⊗ is +
    result = terms[0]
    for t in terms[1:]:
        result = result * t
    if sr.dtype == "bool":
        return bool(result != 0)
    if sr.dtype == "int":
        return int(result)
    return float(result)


def semiring_evaluate(
    source: Structure,
    target: Structure,
    semiring: str | Semiring = "bool",
    seed: Seed | None = None,
    restrict_image: frozenset[Node] | None = None,
    node_filter: Callable[[Node, Node], bool] | None = None,
    *,
    node_domains: NodeDomains | None = None,
    forbid: frozenset[Node] | None = None,
    weights: Mapping | None = None,
    backend: str | None = None,
    use_cache: bool | None = None,
    session=None,
    budget: Budget | None = None,
) -> Evaluation:
    """``⊕_h ⊗_atoms w(h(atom))`` over all homomorphisms, as a typed
    :class:`~repro.core.semiring.Evaluation`.

    The engine-level kernel behind ``Session.evaluate``: resolves the
    semiring (name or instance) and the backend, then routes —

    * unweighted idempotent semirings (``bool``, bare ``minplus``/
      ``maxplus``) ride the cached :func:`find_homomorphism` path and
      carry the witness;
    * unweighted ``count`` (and any non-idempotent carrier) rides the
      exact :func:`_count_homomorphisms` kernel, mapped into the
      carrier by logarithmic ``⊕``-doubling;
    * weighted ``decomp`` runs the bag-value DP
      (:func:`repro.core.decomp.semiring_decomp`);
    * weighted ``matrix`` on a forest-shaped query with a dense dtype
      runs :func:`_matrix_forest_value` (semiring matvecs);
    * everything else — ``naive``/``bitset``, ``why``'s object carrier,
      ``node_filter`` callables — folds the weighted enumeration
      oracle, tracking an arg-best witness for selective semirings.

    Values are LRU-cached under ``("semiring", name, frozen-weights)``
    tagged keys (wire-encoded, so cached ``why`` polynomials stay
    canonical); unhashable weight values simply bypass the cache.
    This is an *inner* surface: a tripped budget raises
    :class:`~repro.core.errors.ResourceExhausted` — ``Session.evaluate``
    is the governed outermost wrapper that converts it to an
    ``Evaluation`` with ``reason`` set.
    """
    sr = resolve_semiring(semiring)
    engine = _engine(session)
    resolved = engine.resolve_backend(backend, target, source)
    weighted = weights is not None or sr.annotate_fact is not None
    if not weighted:
        # Every hom contributes ``one``: the value is determined by
        # existence (idempotent ⊕) or the exact count (general ⊕).
        if sr.is_idempotent:
            hom = find_homomorphism(
                source, target, seed, restrict_image, node_filter,
                node_domains=node_domains, forbid=forbid, backend=resolved,
                use_cache=use_cache, session=session, budget=budget,
            )
            value = sr.one if hom is not None else sr.zero
            return Evaluation(value, sr.name, resolved, witness=hom)
        count = _count_homomorphisms(
            source, target, seed, restrict_image, node_filter,
            node_domains=node_domains, forbid=forbid, backend=resolved,
            use_cache=use_cache, session=session, budget=budget,
        )
        value = count if sr.name == "count" else _nfold_sum(sr, count)
        return Evaluation(value, sr.name, resolved)
    frozen = freeze_weights(weights) if weights is not None else ()
    cacheable = (
        node_filter is None
        and use_cache is not False
        and engine.cache_enabled
        and (weights is None or frozen is not None)
    )
    if cacheable:
        key = ("semiring", sr.name, frozen) + _cache_key(
            resolved, source, target, seed, restrict_image,
            node_domains, forbid,
        )
        hit = engine._cache_get(key)
        if hit is not _MISS:
            return Evaluation(sr.decode(hit), sr.name, resolved)
    if budget is None:
        budget = call_budget(session)
    witness = None
    if resolved == "decomp":
        value = _decomp.semiring_decomp(
            source, target, sr, weights, dict(seed or {}), restrict_image,
            node_filter, node_domains, forbid, budget,
        )
    elif (
        resolved == "matrix"
        and node_filter is None
        and sr.dtype in ("bool", "int", "float")
        and numpy_or_none() is not None
        and _decomp.decomp_plan(source).forest_order is not None
    ):
        value = _matrix_forest_value(
            source, target, sr, weights, dict(seed or {}), restrict_image,
            node_domains, forbid, budget,
        )
    else:
        # Weighted enumeration: the oracle tier every dense path is
        # cross-validated against (and the only route for ``why``'s
        # object carrier or opaque node_filter callables).
        value = sr.zero
        for hom in iter_homomorphisms(
            source, target, seed, restrict_image, node_filter,
            node_domains=node_domains, forbid=forbid, backend=resolved,
            session=session, budget=budget,
        ):
            w = hom_weight(source, hom, sr, weights)
            if w == sr.zero:
                continue
            new = sr.plus(value, w)
            if witness is None or (sr.is_selective and new != value):
                witness = hom
            value = new
    if cacheable:
        engine._cache_put(key, sr.encode(value))
    return Evaluation(value, sr.name, resolved, witness=witness)


def has_homomorphism(
    source: Structure,
    target: Structure,
    seed: Seed | None = None,
    restrict_image: frozenset[Node] | None = None,
    node_filter: Callable[[Node, Node], bool] | None = None,
    *,
    node_domains: NodeDomains | None = None,
    forbid: frozenset[Node] | None = None,
    backend: str | None = None,
    use_cache: bool | None = None,
    session=None,
    budget: Budget | None = None,
) -> bool:
    """Does any homomorphism exist?  Shares the :func:`find_homomorphism`
    cache."""
    return (
        find_homomorphism(
            source,
            target,
            seed,
            restrict_image,
            node_filter,
            node_domains=node_domains,
            forbid=forbid,
            backend=backend,
            use_cache=use_cache,
            session=session,
            budget=budget,
        )
        is not None
    )


# ----------------------------------------------------------------------
# Batch APIs
# ----------------------------------------------------------------------


def _source_seed_pairs(
    sources: Iterable[Structure | tuple[Structure, Seed | None]],
    seeds: Sequence[Seed | None] | None,
) -> Iterable[tuple[Structure, Seed | None]]:
    """Normalise the batch source/seed conventions to lazy pairs.

    Shared by :func:`covers_any` and the runtime's sharded counterpart,
    so the accepted forms (bare structures, ``(structure, seed)``
    pairs, a parallel ``seeds=`` sequence — never both) cannot drift
    apart.  Mismatched ``seeds`` lengths raise via the strict zip.
    """
    if seeds is not None:
        def paired() -> Iterable:
            for s, seed in zip(sources, seeds, strict=True):
                if isinstance(s, tuple):
                    raise ValueError(
                        "pass seeds either as (structure, seed) pairs or "
                        "as a parallel seeds= sequence, not both"
                    )
                yield s, seed

        return paired()
    return (s if isinstance(s, tuple) else (s, None) for s in sources)


def covers_any(
    target: Structure,
    sources: Iterable[Structure | tuple[Structure, Seed | None]],
    seeds: Sequence[Seed | None] | None = None,
    *,
    backend: str | None = None,
    use_cache: bool | None = None,
    session=None,
    budget: Budget | None = None,
) -> bool:
    """Does any of ``sources`` map homomorphically into ``target``?

    ``sources`` is an iterable of structures or ``(structure, seed)``
    pairs; alternatively pass a parallel ``seeds`` sequence.  The target
    indexes are built once and shared across the batch, sources are
    consumed lazily, and the scan stops at the first success — this is
    the inner loop of the Proposition 2 probe (does any shallow cactus
    cover this deep one?) and of UCQ evaluation.  One budget spans the
    whole scan.
    """
    if budget is None:
        budget = call_budget(session)
    for structure, seed in _source_seed_pairs(sources, seeds):
        if budget is not None:
            budget.checkpoint()
        if has_homomorphism(
            structure,
            target,
            seed=seed,
            backend=backend,
            use_cache=use_cache,
            session=session,
            budget=budget,
        ):
            return True
    return False


def evaluate_batch(
    query: Structure,
    instances: Iterable[Structure],
    *,
    backend: str | None = None,
    use_cache: bool | None = None,
    session=None,
    budget: Budget | None = None,
) -> list[bool]:
    """Evaluate one Boolean CQ over many data instances.

    The query-side indexes and domains are shared across the batch and
    each per-instance answer goes through the hom-cache, so repeated
    instances (common in completion lattices and probe universes) are
    answered once.  One budget spans the whole batch; exhaustion raises
    (use :func:`evaluate_batch_governed` to keep partial results).
    """
    if budget is None:
        budget = call_budget(session)
    return [
        has_homomorphism(
            query, data, backend=backend, use_cache=use_cache,
            session=session, budget=budget,
        )
        for data in instances
    ]


def evaluate_batch_governed(
    query: Structure,
    instances: Iterable[Structure],
    *,
    backend: str | None = None,
    use_cache: bool | None = None,
    session=None,
    budget: Budget | None = None,
) -> list[bool | str]:
    """:func:`evaluate_batch` that degrades instead of raising.

    Entries are plain booleans until the budget trips; from that point
    every remaining slot holds the exhaustion reason tag (the wire form
    of ``Answer.unknown`` — see
    :meth:`repro.core.errors.Answer.decode`), so a governed batch
    preserves every answer computed before the budget ran out.  With an
    ungoverned session this is exactly :func:`evaluate_batch`.
    """
    if budget is None:
        budget = call_budget(session)
    out: list[bool | str] = []
    reason: str | None = None
    for data in instances:
        if reason is None:
            try:
                if budget is not None:
                    budget.checkpoint()
                out.append(
                    has_homomorphism(
                        query, data, backend=backend, use_cache=use_cache,
                        session=session, budget=budget,
                    )
                )
                continue
            except ResourceExhausted as exc:
                reason = exc.reason
        out.append(reason)
    return out
