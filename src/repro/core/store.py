"""Durable state tier: a crash-safe, checksummed, disk-backed store.

This module is the persistence layer under every session cache: hom
answers (witnesses, counts, semiring-tagged evaluations) written
through from :class:`~repro.core.homengine.HomEngine`'s LRU, compiled
:class:`~repro.core.decomp.DecompPlan`s shared process-wide via
:func:`repro.core.decomp.set_plan_store`, and the checkpoint rows that
let :meth:`repro.session.Session.screen` and the boundedness probe
resume after a crash.  Everything is keyed by *content fingerprints*
(:attr:`repro.core.structure.Structure.fingerprint` — a stable blake2b
multiset hash), so a store written by one process, worker, or deploy is
valid for any other that computes the same structures.

The atomicity / corruption contract
===================================

The store must never turn disk trouble into a *wrong answer*.  Three
layers enforce that:

* **Atomic writes.**  The backing file is sqlite in WAL mode; every
  mutation happens inside a transaction, so a ``kill -9`` (or power
  loss) mid-write leaves either the old state or the new state on
  disk, never a half-written row.  ``synchronous=NORMAL`` under WAL
  survives process death unconditionally (a committed transaction is
  in the WAL); only an OS-level crash can lose the tail of the WAL,
  which again rolls back to a consistent prior state.
* **Per-row checksums + version tags.**  Every payload is stored with
  a CRC32 of its encoded bytes, and the whole file carries a
  ``schema`` version tag in its ``meta`` table.  A bit-flipped payload
  fails its checksum on read and is *dropped and treated as a miss*
  (sqlite's own page checks catch most structural damage; the row CRC
  catches silent payload damage inside an intact page).  A schema tag
  this build does not recognise means the file was written by an
  incompatible engine: the store refuses to read a single row from it.
* **Quarantine, then rebuild.**  A file that fails to open, fails the
  schema check, or raises a database-corruption error mid-use is
  *quarantined* — renamed to ``<name>.quarantined-N`` next to the
  store, preserving the evidence — and a fresh, empty store is built
  in its place.  The engine then recomputes; it never guesses.

Degradation is graceful by default (``durability="best-effort"``): an
unavailable, full, or read-only disk silently disables the store and
the engine runs on its in-memory LRUs alone, byte-for-byte as if
``cache_dir`` had never been set.  ``durability="strict"`` turns every
quarantine/degrade event into a raised
:class:`~repro.core.errors.StoreCorruption` instead, for deployments
that monitor their cache tier.

Writes to the key-value tier are buffered and flushed in batches
(cheap under WAL); checkpoint rows — whose entire point is surviving a
crash *mid-operation* — are flushed transactionally as they are
written (:meth:`DurableStore.write_rows`).
"""

from __future__ import annotations

import functools
import glob
import hashlib
import os
import pickle
import sqlite3
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

from .errors import StoreCorruption

__all__ = [
    "JOB_NS",
    "LEASE_NS",
    "MISS",
    "DurableStore",
    "StoreStats",
    "op_digest",
    "resolve_store_path",
]

#: Sentinel returned by :meth:`DurableStore.get` when a key is absent
#: (or its row failed the checksum and was dropped).
MISS = object()

#: Bumped whenever the row encoding or the table layout changes; a
#: store whose ``meta.schema`` differs is quarantined, never read.
SCHEMA_VERSION = 1

STORE_FILENAME = "repro_store.sqlite"

#: Namespace of the job service's durable job records
#: (:mod:`repro.service.jobs`).  Versioned separately from the store
#: schema: a record layout change bumps this tag, orphaning (not
#: corrupting) records written by older services.
JOB_NS = "job:v1"

#: Namespace of job ownership leases (:mod:`repro.service.jobs`).
#: A running job's manager holds ``job_id -> {"owner", "expires"}``
#: here, heartbeat-renewed; ``recover()`` only adopts a job whose
#: lease is absent or expired, so "crashed mid-run" and "still running
#: under another manager" are distinguishable after a restart.
LEASE_NS = "lease:v1"

# Buffered puts are flushed every this many entries (and on close /
# checkpoint / stats).  WAL commits are cheap, but one transaction per
# hom-cache insert would still dominate small-answer workloads.
_FLUSH_EVERY = 64

# When the file outgrows ``cache_bytes``, the oldest rows (by insertion
# order) are deleted until occupancy is back under this fraction.
_PRUNE_TO = 0.8

_PICKLE_PROTOCOL = 4

# Failures the guard converts into degradation / quarantine instead of
# letting them escape an engine call.  sqlite3.Error covers corruption
# (DatabaseError) and disk-full/locked (OperationalError); OSError
# covers a vanished or read-only directory; pickle errors cover
# unpicklable keys/payloads, which are simply not persisted.
_STORE_FAILURES = (sqlite3.Error, OSError, pickle.PickleError, ValueError)

# pickle reports unpicklable payloads inconsistently: PicklingError for
# some, bare TypeError/AttributeError for lambdas, local classes and
# closed handles.  Encoding sites catch this wider net (such entries
# simply stay memory-only); it is NOT part of the general guard above,
# where a TypeError would mask a real programming error.
_ENCODE_FAILURES = _STORE_FAILURES + (TypeError, AttributeError)


def resolve_store_path(cache_dir: "str | os.PathLike | None") -> Path | None:
    """The absolute sqlite file path a ``cache_dir`` resolves to, or
    ``None`` when the durable store is disabled (no ``cache_dir``)."""
    if not cache_dir:
        return None
    return Path(cache_dir).expanduser().resolve() / STORE_FILENAME


def op_digest(*parts) -> str:
    """A stable digest naming one long-running operation.

    ``parts`` must be plain data (strings, ints, bools, None, nested
    tuples — typically structure fingerprints plus the knobs that pin
    the operation's answers).  Checkpoint rows live in the namespace
    ``"ckpt:" + op_digest(...)``, so an identical re-invocation finds
    them and any other invocation cannot.
    """
    blob = pickle.dumps(parts, protocol=_PICKLE_PROTOCOL)
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


@dataclass(frozen=True)
class StoreStats:
    """One snapshot of a store's occupancy and traffic counters.

    ``hits``/``misses``/``writes`` are *lifetime* counters persisted in
    the store's ``meta`` table (this process's deltas folded in), so
    ``repro cache stats`` reports the store's whole history, not just
    the CLI process's.  ``corrupt_dropped`` counts rows discarded by
    checksum failures; ``quarantined`` counts sibling files a past
    corruption event renamed aside.
    """

    path: str
    enabled: bool
    schema_version: int
    entries: int
    total_bytes: int
    cache_bytes: int
    namespaces: tuple[tuple[str, int], ...]
    hits: int
    misses: int
    writes: int
    corrupt_dropped: int
    quarantined: int

    def describe(self) -> str:
        lines = [
            f"path={self.path}",
            f"enabled={self.enabled}",
            f"schema_version={self.schema_version}",
            f"entries={self.entries}",
            f"bytes={self.total_bytes} (cap {self.cache_bytes})",
            f"hits={self.hits} misses={self.misses} writes={self.writes}",
            f"corrupt_dropped={self.corrupt_dropped}",
            f"quarantined_files={self.quarantined}",
        ]
        for ns, count in self.namespaces:
            lines.append(f"  ns {ns}: {count} entries")
        return "\n".join(lines)


def _locked(method):
    """Serialize a store operation on the instance lock: one sqlite
    connection is shared across threads (``check_same_thread=False``),
    so every touch of ``_conn`` / ``_pending`` must be exclusive."""

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        with self._lock:
            return method(self, *args, **kwargs)

    return wrapper


class DurableStore:
    """The disk tier: a checksummed key-value store over sqlite WAL.

    One instance per :class:`~repro.session.Session`; many processes
    (the parent and every pool worker shipping the same resolved
    config) may hold instances over the *same* file — WAL plus a busy
    timeout makes concurrent readers/writers safe, and content-keyed
    entries make lost races harmless (both sides write the same
    value).  Within a process the instance is thread-safe: the service
    tier's job manager persists records from executor threads, so the
    single connection is shared (``check_same_thread=False``) and every
    operation serializes on an internal lock.

    Use :meth:`open` — it applies the durability policy — rather than
    the constructor.
    """

    def __init__(
        self,
        path: Path,
        cache_bytes: int,
        durability: str = "best-effort",
    ) -> None:
        self.path = path
        self.cache_bytes = cache_bytes
        self.durability = durability
        self.enabled = False
        self.last_error: str | None = None
        self._conn: sqlite3.Connection | None = None
        self._pending: dict[tuple[str, bytes], tuple[bytes, int]] = {}
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._corrupt_dropped = 0
        self._lock = threading.RLock()
        self._connect_or_recover()

    # -- lifecycle ------------------------------------------------------

    @classmethod
    def open(
        cls,
        cache_dir: "str | os.PathLike | None",
        cache_bytes: int,
        durability: str = "best-effort",
    ) -> "DurableStore | None":
        """A store for ``cache_dir``, or ``None`` when disabled.

        Best-effort policy: any failure to create the directory or the
        file yields a *disabled* store object (every operation a no-op)
        rather than an exception.  Strict policy raises
        :class:`~repro.core.errors.StoreCorruption`.
        """
        path = resolve_store_path(cache_dir)
        if path is None:
            return None
        store = cls(path, cache_bytes, durability)
        if not store.enabled and durability == "strict":
            raise StoreCorruption(
                f"cannot open durable store at {path}: {store.last_error}"
            )
        return store

    def _connect_or_recover(self) -> None:
        """Open (creating if needed) and schema-check the backing file;
        quarantine and retry once on corruption or version mismatch."""
        for attempt in (0, 1):
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                conn = sqlite3.connect(
                    str(self.path), timeout=5.0, check_same_thread=False
                )
                conn.execute("PRAGMA journal_mode=WAL")
                conn.execute("PRAGMA synchronous=NORMAL")
                conn.execute("PRAGMA busy_timeout=5000")
                with conn:
                    conn.execute(
                        "CREATE TABLE IF NOT EXISTS meta "
                        "(k TEXT PRIMARY KEY, v TEXT NOT NULL)"
                    )
                    conn.execute(
                        "CREATE TABLE IF NOT EXISTS kv ("
                        " ns TEXT NOT NULL,"
                        " key BLOB NOT NULL,"
                        " value BLOB NOT NULL,"
                        " crc INTEGER NOT NULL,"
                        " nbytes INTEGER NOT NULL,"
                        " PRIMARY KEY (ns, key))"
                    )
                    conn.execute(
                        "INSERT OR IGNORE INTO meta (k, v) VALUES "
                        "('schema', ?), ('hits', '0'), ('misses', '0'),"
                        " ('writes', '0')",
                        (str(SCHEMA_VERSION),),
                    )
                row = conn.execute(
                    "SELECT v FROM meta WHERE k = 'schema'"
                ).fetchone()
                if row is None or row[0] != str(SCHEMA_VERSION):
                    conn.close()
                    raise sqlite3.DatabaseError(
                        f"schema tag {row[0] if row else None!r} != "
                        f"{SCHEMA_VERSION}"
                    )
                self._conn = conn
                self.enabled = True
                return
            except sqlite3.DatabaseError as exc:
                # Corrupt or stale-schema file: quarantine the evidence
                # and build fresh on the retry pass.
                self.last_error = f"{type(exc).__name__}: {exc}"
                if attempt == 0:
                    self._quarantine()
                    continue
                self._disable()
                return
            except OSError as exc:
                # Unavailable / read-only / full disk: nothing to
                # quarantine, nothing to retry.
                self.last_error = f"{type(exc).__name__}: {exc}"
                self._disable()
                return

    def _quarantine(self) -> None:
        """Rename the backing file (and its WAL/SHM) aside, preserving
        the corrupt evidence; raise under the strict policy."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        n = 0
        while True:
            target = Path(f"{self.path}.quarantined-{n}")
            if not target.exists():
                break
            n += 1
        try:
            if self.path.exists():
                os.replace(self.path, target)
            for suffix in ("-wal", "-shm"):
                side = Path(str(self.path) + suffix)
                if side.exists():
                    side.unlink()
        except OSError as exc:
            self.last_error = f"{type(exc).__name__}: {exc}"
            self._disable()
            return
        if self.durability == "strict":
            raise StoreCorruption(
                f"durable store at {self.path} failed integrity checks "
                f"({self.last_error}); quarantined to {target}"
            )

    def _disable(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        self.enabled = False
        self._pending.clear()

    @_locked
    def close(self) -> None:
        """Flush buffered writes and counters, then drop the connection.
        Idempotent; a closed store answers every ``get`` with MISS."""
        if self._conn is not None:
            try:
                self.flush()
            except _STORE_FAILURES:
                pass
        self._disable()

    # -- failure policy -------------------------------------------------

    def _failed(self, exc: BaseException):
        """Apply the degradation policy to one failed operation."""
        self.last_error = f"{type(exc).__name__}: {exc}"
        if isinstance(exc, sqlite3.DatabaseError) and not isinstance(
            exc, sqlite3.OperationalError
        ):
            # Structural corruption discovered mid-use: quarantine and
            # rebuild so the *next* operation runs on a clean store.
            self._quarantine()
            self._connect_or_recover()
            return
        if self.durability == "strict":
            raise StoreCorruption(
                f"durable store operation failed: {self.last_error}"
            ) from exc
        # Disk full / locked / gone: degrade to memory-only.
        self._disable()

    # -- encoding -------------------------------------------------------

    @staticmethod
    def _encode_key(key) -> bytes:
        return pickle.dumps(key, protocol=_PICKLE_PROTOCOL)

    @staticmethod
    def _encode_value(value) -> tuple[bytes, int]:
        blob = pickle.dumps(value, protocol=_PICKLE_PROTOCOL)
        return blob, zlib.crc32(blob)

    def _decode_row(self, ns: str, key_blob: bytes, blob: bytes, crc: int):
        """Checksum-verified decode; a failed row is dropped (returns
        MISS) rather than trusted."""
        if zlib.crc32(blob) != crc:
            self._corrupt_dropped += 1
            try:
                with self._conn:
                    self._conn.execute(
                        "DELETE FROM kv WHERE ns = ? AND key = ?",
                        (ns, key_blob),
                    )
            except _STORE_FAILURES:
                pass
            if self.durability == "strict":
                raise StoreCorruption(
                    f"checksum mismatch in namespace {ns!r}"
                )
            return MISS
        try:
            return pickle.loads(blob)
        except Exception:  # noqa: BLE001 - any unpickling failure is a miss
            self._corrupt_dropped += 1
            return MISS

    # -- the key-value tier ---------------------------------------------

    @_locked
    def get(self, ns: str, key):
        """The stored payload for ``(ns, key)``, or :data:`MISS`."""
        if not self.enabled:
            return MISS
        try:
            key_blob = self._encode_key(key)
        except _ENCODE_FAILURES:
            return MISS
        pending = self._pending.get((ns, key_blob))
        if pending is not None:
            self._hits += 1
            return pickle.loads(pending[0])
        try:
            row = self._conn.execute(
                "SELECT value, crc FROM kv WHERE ns = ? AND key = ?",
                (ns, key_blob),
            ).fetchone()
        except _STORE_FAILURES as exc:
            self._failed(exc)
            return MISS
        if row is None:
            self._misses += 1
            return MISS
        value = self._decode_row(ns, key_blob, row[0], row[1])
        if value is MISS:
            self._misses += 1
            return MISS
        self._hits += 1
        return value

    @_locked
    def put(self, ns: str, key, value, flush: bool = False) -> None:
        """Buffer ``(ns, key) -> value`` for write-through; ``flush``
        commits the whole buffer transactionally now."""
        if not self.enabled:
            return
        try:
            key_blob = self._encode_key(key)
            blob, crc = self._encode_value(value)
        except _ENCODE_FAILURES:
            return  # unpicklable entries just stay memory-only
        self._pending[(ns, key_blob)] = (blob, crc)
        self._writes += 1
        if flush or len(self._pending) >= _FLUSH_EVERY:
            self.flush()

    @_locked
    def flush(self) -> None:
        """Commit buffered puts and persist the traffic counters."""
        if not self.enabled or self._conn is None:
            self._pending.clear()
            return
        try:
            with self._conn:
                if self._pending:
                    self._conn.executemany(
                        "INSERT OR REPLACE INTO kv "
                        "(ns, key, value, crc, nbytes) "
                        "VALUES (?, ?, ?, ?, ?)",
                        [
                            (ns, kb, blob, crc, len(kb) + len(blob))
                            for (ns, kb), (blob, crc) in self._pending.items()
                        ],
                    )
                for name, delta in (
                    ("hits", self._hits),
                    ("misses", self._misses),
                    ("writes", self._writes),
                ):
                    if delta:
                        self._conn.execute(
                            "UPDATE meta SET v = CAST(CAST(v AS INTEGER) "
                            "+ ? AS TEXT) WHERE k = ?",
                            (delta, name),
                        )
            self._hits = self._misses = self._writes = 0
            self._pending.clear()
            self._maybe_prune()
        except _STORE_FAILURES as exc:
            self._pending.clear()
            self._failed(exc)

    def _maybe_prune(self) -> None:
        """FIFO-evict the oldest rows once past the byte cap."""
        if self.cache_bytes <= 0 or self._conn is None:
            return
        total = self._conn.execute(
            "SELECT COALESCE(SUM(nbytes), 0) FROM kv"
        ).fetchone()[0]
        if total <= self.cache_bytes:
            return
        target = int(self.cache_bytes * _PRUNE_TO)
        with self._conn:
            for rowid, nbytes in self._conn.execute(
                "SELECT rowid, nbytes FROM kv ORDER BY rowid"
            ).fetchall():
                if total <= target:
                    break
                self._conn.execute(
                    "DELETE FROM kv WHERE rowid = ?", (rowid,)
                )
                total -= nbytes

    # -- checkpoint rows ------------------------------------------------

    @_locked
    def write_rows(self, ns: str, rows) -> None:
        """Durably commit ``(key, value)`` rows in one transaction.

        The checkpoint write path: unlike :meth:`put` these rows are
        *never* buffered — when this returns, a ``kill -9`` cannot lose
        them (WAL commit).  Rows are plain data, keyed within the
        operation's ``ckpt:`` namespace.
        """
        if not self.enabled or not rows:
            return
        try:
            encoded = []
            for key, value in rows:
                kb = self._encode_key(key)
                blob, crc = self._encode_value(value)
                encoded.append((ns, kb, blob, crc, len(kb) + len(blob)))
            with self._conn:
                self._conn.executemany(
                    "INSERT OR REPLACE INTO kv (ns, key, value, crc, nbytes)"
                    " VALUES (?, ?, ?, ?, ?)",
                    encoded,
                )
            self._writes += len(rows)
        except _STORE_FAILURES as exc:
            self._failed(exc)

    @_locked
    def load_ns(self, ns: str) -> dict:
        """Every checksum-verified ``key -> value`` in a namespace
        (corrupt rows dropped), e.g. one operation's checkpoint rows."""
        if not self.enabled:
            return {}
        try:
            rows = self._conn.execute(
                "SELECT key, value, crc FROM kv WHERE ns = ?", (ns,)
            ).fetchall()
        except _STORE_FAILURES as exc:
            self._failed(exc)
            return {}
        out: dict = {}
        for key_blob, blob, crc in rows:
            value = self._decode_row(ns, key_blob, blob, crc)
            if value is MISS:
                continue
            try:
                out[pickle.loads(key_blob)] = value
            except Exception:  # noqa: BLE001
                continue
        return out

    @_locked
    def clear_ns(self, ns: str) -> int:
        """Drop one namespace; returns the number of rows removed."""
        if not self.enabled:
            return 0
        self._pending = {
            k: v for k, v in self._pending.items() if k[0] != ns
        }
        try:
            with self._conn:
                cur = self._conn.execute(
                    "DELETE FROM kv WHERE ns = ?", (ns,)
                )
            return cur.rowcount
        except _STORE_FAILURES as exc:
            self._failed(exc)
            return 0

    # -- job records (the service tier's durable state) -----------------

    def job_put(self, job_id: str, record: dict) -> None:
        """Durably commit one job record (see :data:`JOB_NS`).

        Job state transitions use the checkpoint write path
        (:meth:`write_rows`), never the buffered one: a service killed
        right after marking a job done must still report it done after
        restart.
        """
        self.write_rows(JOB_NS, [(job_id, record)])

    def job_get(self, job_id: str) -> dict | None:
        """The stored record of one job, or ``None``."""
        value = self.get(JOB_NS, job_id)
        return None if value is MISS or not isinstance(value, dict) else value

    def job_list(self) -> dict[str, dict]:
        """Every stored ``job_id -> record`` (corrupt rows dropped)."""
        return {
            key: value
            for key, value in self.load_ns(JOB_NS).items()
            if isinstance(key, str) and isinstance(value, dict)
        }

    @_locked
    def job_delete(self, job_id: str) -> None:
        """Drop one job record (a no-op when absent)."""
        if not self.enabled:
            return
        try:
            key_blob = self._encode_key(job_id)
            with self._conn:
                self._conn.execute(
                    "DELETE FROM kv WHERE ns = ? AND key = ?",
                    (JOB_NS, key_blob),
                )
        except _STORE_FAILURES as exc:
            self._failed(exc)

    # -- job leases (ownership rows, see :data:`LEASE_NS`) ---------------

    def lease_acquire(
        self, job_id: str, owner: str, ttl_s: float, now: float | None = None
    ) -> bool:
        """Claim the lease on ``job_id`` for ``owner``; True iff taken.

        A lease held by a *different* owner and not yet expired refuses
        the claim; an absent, expired, or same-owner lease is
        (re)written with a fresh expiry.  The read-decide-write runs as
        one compare-and-swap (:meth:`_lease_cas`), so two managers —
        sibling threads sharing this store object or separate processes
        sharing the file — can never both observe an expired lease and
        both claim it.  With no disk tier attached the claim trivially
        succeeds — leases are an ownership signal, not a correctness
        requirement.
        """
        if not self.enabled:
            return True
        now = time.time() if now is None else now
        return self._lease_cas(job_id, owner, ttl_s, now, require_owner=False)

    def lease_renew(
        self, job_id: str, owner: str, ttl_s: float, now: float | None = None
    ) -> bool:
        """Push the expiry of a lease ``owner`` still holds; False when
        the lease is gone or was taken over (the heartbeat's cue to
        stop claiming the job)."""
        if not self.enabled:
            return True
        now = time.time() if now is None else now
        return self._lease_cas(job_id, owner, ttl_s, now, require_owner=True)

    @_locked
    def _lease_cas(
        self,
        job_id: str,
        owner: str,
        ttl_s: float,
        now: float,
        require_owner: bool,
    ) -> bool:
        """One atomic check-and-write on a lease row.

        ``BEGIN IMMEDIATE`` takes sqlite's write lock before the read,
        so a concurrent process's CAS serialises here instead of racing
        the SELECT; the instance lock covers sibling threads.  With
        ``require_owner`` the write only lands when ``owner`` already
        holds the row (renew discipline); otherwise an absent, expired,
        corrupt, or same-owner row is claimable.
        """
        try:
            key_blob = self._encode_key(job_id)
            blob, crc = self._encode_value(
                {"owner": owner, "expires": now + ttl_s}
            )
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                row = self._conn.execute(
                    "SELECT value, crc FROM kv WHERE ns = ? AND key = ?",
                    (LEASE_NS, key_blob),
                ).fetchone()
                current = self._decode_lease_row(row)
                if require_owner:
                    allowed = (
                        current is not None and current.get("owner") == owner
                    )
                else:
                    allowed = (
                        current is None
                        or current.get("owner") == owner
                        or current.get("expires", 0.0) <= now
                    )
                if not allowed:
                    self._conn.execute("ROLLBACK")
                    return False
                self._conn.execute(
                    "INSERT OR REPLACE INTO kv (ns, key, value, crc, nbytes)"
                    " VALUES (?, ?, ?, ?, ?)",
                    (LEASE_NS, key_blob, blob, crc, len(key_blob) + len(blob)),
                )
                self._conn.execute("COMMIT")
                self._writes += 1
                return True
            except BaseException:
                self._lease_rollback()
                raise
        except _STORE_FAILURES as exc:
            self._failed(exc)
            # A degraded-to-memory store grants advisorily (matching
            # the no-disk-tier policy); a store that recovered refuses
            # this round — refusing a claim is always the safe answer.
            return not self.enabled

    @staticmethod
    def _decode_lease_row(row) -> "dict | None":
        """Decode one raw lease row; corrupt or mistyped rows read as
        absent (the CAS overwrites them) — never deleted mid-CAS, which
        would commit the surrounding explicit transaction early."""
        if row is None or zlib.crc32(row[0]) != row[1]:
            return None
        try:
            value = pickle.loads(row[0])
        except Exception:  # noqa: BLE001 - any unpickling failure is a miss
            return None
        return value if isinstance(value, dict) else None

    def _lease_rollback(self) -> None:
        try:
            if self._conn is not None and self._conn.in_transaction:
                self._conn.execute("ROLLBACK")
        except sqlite3.Error:
            pass

    @_locked
    def lease_release(self, job_id: str, owner: str | None = None) -> None:
        """Drop a lease (a no-op when absent).  With ``owner`` given,
        only that owner's lease is dropped — atomically, so a manager
        releasing a job it lost to takeover can never clobber a lease
        the new owner wrote between the check and the delete."""
        if not self.enabled:
            return
        try:
            key_blob = self._encode_key(job_id)
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                if owner is not None:
                    row = self._conn.execute(
                        "SELECT value, crc FROM kv WHERE ns = ? AND key = ?",
                        (LEASE_NS, key_blob),
                    ).fetchone()
                    current = self._decode_lease_row(row)
                    if current is not None and current.get("owner") != owner:
                        self._conn.execute("ROLLBACK")
                        return
                self._conn.execute(
                    "DELETE FROM kv WHERE ns = ? AND key = ?",
                    (LEASE_NS, key_blob),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._lease_rollback()
                raise
        except _STORE_FAILURES as exc:
            self._failed(exc)

    def lease_get(self, job_id: str) -> dict | None:
        """The stored lease row of one job, or ``None``."""
        value = self.get(LEASE_NS, job_id)
        return None if value is MISS or not isinstance(value, dict) else value

    def lease_list(self) -> dict[str, dict]:
        """Every stored ``job_id -> lease`` row (corrupt rows dropped)."""
        return {
            key: value
            for key, value in self.load_ns(LEASE_NS).items()
            if isinstance(key, str) and isinstance(value, dict)
        }

    # -- maintenance (the CLI surface) ----------------------------------

    @_locked
    def clear(self) -> int:
        """Drop every entry (the ``repro cache clear`` action); the
        file and its schema stay."""
        if not self.enabled:
            return 0
        self._pending.clear()
        try:
            with self._conn:
                cur = self._conn.execute("DELETE FROM kv")
            return cur.rowcount
        except _STORE_FAILURES as exc:
            self._failed(exc)
            return 0

    @_locked
    def verify(self) -> tuple[int, int]:
        """Full checksum sweep: ``(rows_checked, rows_dropped)``.

        Every row's CRC is recomputed; rows that fail are deleted (the
        ``repro cache verify`` action and the fuzz leg's final sweep).
        """
        if not self.enabled:
            return (0, 0)
        self.flush()
        if not self.enabled:
            return (0, 0)
        try:
            rows = self._conn.execute(
                "SELECT ns, key, value, crc FROM kv"
            ).fetchall()
            bad = [
                (ns, key_blob)
                for ns, key_blob, blob, crc in rows
                if zlib.crc32(blob) != crc
            ]
            if bad:
                self._corrupt_dropped += len(bad)
                with self._conn:
                    self._conn.executemany(
                        "DELETE FROM kv WHERE ns = ? AND key = ?", bad
                    )
            return (len(rows), len(bad))
        except _STORE_FAILURES as exc:
            self._failed(exc)
            return (0, 0)

    @_locked
    def stats(self) -> StoreStats:
        """Occupancy + lifetime traffic counters (see
        :class:`StoreStats`)."""
        entries = total = 0
        namespaces: tuple[tuple[str, int], ...] = ()
        hits, misses, writes = self._hits, self._misses, self._writes
        if self.enabled:
            self.flush()
        if self.enabled:
            try:
                entries, total = self._conn.execute(
                    "SELECT COUNT(*), COALESCE(SUM(nbytes), 0) FROM kv"
                ).fetchone()
                namespaces = tuple(
                    self._conn.execute(
                        "SELECT ns, COUNT(*) FROM kv GROUP BY ns ORDER BY ns"
                    ).fetchall()
                )
                counters = dict(
                    self._conn.execute(
                        "SELECT k, v FROM meta WHERE k IN "
                        "('hits', 'misses', 'writes')"
                    ).fetchall()
                )
                hits = int(counters.get("hits", 0))
                misses = int(counters.get("misses", 0))
                writes = int(counters.get("writes", 0))
            except _STORE_FAILURES as exc:
                self._failed(exc)
        quarantined = len(
            glob.glob(str(self.path) + ".quarantined-*")
        )
        return StoreStats(
            path=str(self.path),
            enabled=self.enabled,
            schema_version=SCHEMA_VERSION,
            entries=entries,
            total_bytes=total,
            cache_bytes=self.cache_bytes,
            namespaces=namespaces,
            hits=hits,
            misses=misses,
            writes=writes,
            corrupt_dropped=self._corrupt_dropped,
            quarantined=quarantined,
        )
