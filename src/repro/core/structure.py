"""Labelled-digraph structures: the common substrate for CQs and data.

The paper works with conjunctive queries and data instances over unary
predicates (``F``, ``T``, ``A``, plus auxiliary labels used by the
Theorem 3 gadgets) and arbitrary binary predicates.  Both are finite
relational structures, which we represent uniformly as labelled digraphs:

* nodes (query variables or data constants),
* unary facts ``label(node)``,
* binary facts ``pred(src, dst)``.

A :class:`Structure` is immutable once frozen; builders use
:class:`StructureBuilder`.  Conjunctive queries are structures whose nodes
are read as existentially quantified variables; data instances are
structures whose nodes are read as constants.

Derived structures that only *add* material (and possibly drop unary
labels) can be produced through :meth:`Structure.extended`, which copies
the base structure's eager indexes at C speed, appends to its interning
order, extends its :class:`BitsetIndex` and per-predicate neighbour maps
in place of a rebuild, and updates the content fingerprint by a multiset
delta instead of rehashing every fact — the substrate of the incremental
cactus construction engine in :mod:`repro.core.cactus`.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping

Node = Hashable


# numpy is an optional extra (``pip install .[matrix]``): the dense
# MatrixIndex and the hom engine's ``matrix`` backend use it when
# present and fall back to the Python-int bitset machinery otherwise.
_numpy_module = None
_numpy_checked = False


def numpy_or_none():
    """The numpy module, or ``None`` when the extra is not installed."""
    global _numpy_module, _numpy_checked
    if not _numpy_checked:
        _numpy_checked = True
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_module = numpy
    return _numpy_module


_ATOMIC_KEY_TYPES = (str, int, float, bool, bytes, complex, type(None))


def _canonical_key(node: Node) -> str:
    """A stable textual key for a node, for fingerprints and sort orders.

    Tuples and frozensets (the composite node names used by cactus and
    segment gluing) are rendered recursively, with frozenset elements
    sorted, so that equal nodes always produce equal keys regardless of
    set iteration order.  Builtin atoms use ``repr`` (injective across
    those types); any other object is keyed by its type's qualified name
    plus ``repr``.

    The fingerprint-keyed hom-cache relies on distinct nodes producing
    distinct keys, so custom node classes must have a ``repr`` that is
    injective up to ``__eq__`` (dataclass field reprs qualify); a
    constant or identity-blind ``repr`` on a custom node type can alias
    cache entries of structurally different structures.
    """
    if isinstance(node, tuple):
        return "(" + "\x1f".join(_canonical_key(x) for x in node) + ")"
    if isinstance(node, frozenset):
        return "{" + "\x1f".join(sorted(_canonical_key(x) for x in node)) + "}"
    if isinstance(node, _ATOMIC_KEY_TYPES):
        return repr(node)
    cls = type(node)
    return f"{cls.__module__}.{cls.__qualname__}\x1d{node!r}"

# The content fingerprint is a *multiset hash*: every fact (and node)
# renders to a canonical line, every line hashes to a 128-bit integer,
# and the fingerprint is their sum modulo 2**128.  Addition is
# commutative, so equal fact sets fingerprint equally regardless of
# build order — and a derived structure's fingerprint is the base's plus
# the added lines minus the removed ones, which is what lets
# :meth:`Structure.extended` maintain fingerprints incrementally.
_FP_MASK = (1 << 128) - 1


def _line_hash(line: str) -> int:
    digest = hashlib.blake2b(
        line.encode("utf-8", "backslashreplace"), digest_size=16
    ).digest()
    return int.from_bytes(digest, "big")


def _node_line(node: Node) -> str:
    return f"N\x1e{_canonical_key(node)}"


def _unary_line(fact: "UnaryFact") -> str:
    return f"U\x1e{fact.label}\x1e{_canonical_key(fact.node)}"


def _binary_line(fact: "BinaryFact") -> str:
    return (
        f"B\x1e{fact.pred}\x1e{_canonical_key(fact.src)}"
        f"\x1e{_canonical_key(fact.dst)}"
    )


# Unary predicate names with fixed meaning throughout the library.
F = "F"
T = "T"
A = "A"

# Default binary predicate used by most of the paper's example queries.
R = "R"
S = "S"


@dataclass(frozen=True)
class UnaryFact:
    """A unary atom ``label(node)``."""

    label: str
    node: Node

    def rename(self, mapping: Mapping[Node, Node]) -> "UnaryFact":
        return UnaryFact(self.label, mapping.get(self.node, self.node))


@dataclass(frozen=True)
class BinaryFact:
    """A binary atom ``pred(src, dst)``."""

    pred: str
    src: Node
    dst: Node

    def rename(self, mapping: Mapping[Node, Node]) -> "BinaryFact":
        return BinaryFact(
            self.pred,
            mapping.get(self.src, self.src),
            mapping.get(self.dst, self.dst),
        )


def _group_by_pred(
    facts: tuple["BinaryFact", ...], outgoing: bool
) -> dict[str, frozenset[Node]]:
    """Per-predicate endpoint sets of one node's edge tuple."""
    grouped: dict[str, set[Node]] = {}
    for fact in facts:
        grouped.setdefault(fact.pred, set()).add(
            fact.dst if outgoing else fact.src
        )
    return {p: frozenset(s) for p, s in grouped.items()}


class BitsetIndex:
    """Integer-interned, bitmask-encoded view of a :class:`Structure`.

    Nodes are interned to the integers ``0 .. n-1`` (in the structure's
    stable :attr:`Structure.node_order`); every node set is then a Python
    int used as a bitset.  The homomorphism engine's ``bitset`` backend
    runs entirely on these masks: candidate-domain filtering is a chain
    of bitwise ANDs and arc-consistency checks AND a domain against the
    precomputed adjacency masks of the candidate image.
    """

    __slots__ = (
        "nodes",
        "index",
        "full_mask",
        "label_nodes",
        "succ",
        "pred",
        "has_out",
        "has_in",
    )

    def __init__(self, structure: "Structure") -> None:
        self.nodes: tuple[Node, ...] = structure.node_order
        self.index: dict[Node, int] = {
            node: i for i, node in enumerate(self.nodes)
        }
        n = len(self.nodes)
        self.full_mask: int = (1 << n) - 1
        # label -> bitmask of nodes carrying the label
        self.label_nodes: dict[str, int] = {}
        for label in structure.unary_predicates:
            mask = 0
            for node in structure.nodes_with_label(label):
                mask |= 1 << self.index[node]
            self.label_nodes[label] = mask
        # pred -> per-node-index masks of successors / predecessors,
        # plus "has at least one out/in edge with pred" node masks.
        self.succ: dict[str, list[int]] = {}
        self.pred: dict[str, list[int]] = {}
        self.has_out: dict[str, int] = {}
        self.has_in: dict[str, int] = {}
        for fact in structure.binary_facts:
            s, d = self.index[fact.src], self.index[fact.dst]
            if fact.pred not in self.succ:
                self.succ[fact.pred] = [0] * n
                self.pred[fact.pred] = [0] * n
                self.has_out[fact.pred] = 0
                self.has_in[fact.pred] = 0
            self.succ[fact.pred][s] |= 1 << d
            self.pred[fact.pred][d] |= 1 << s
            self.has_out[fact.pred] |= 1 << s
            self.has_in[fact.pred] |= 1 << d

    def mask_of(self, nodes: Iterable[Node]) -> int:
        """The bitmask of the given nodes (foreign nodes are ignored)."""
        mask = 0
        index = self.index
        for node in nodes:
            i = index.get(node)
            if i is not None:
                mask |= 1 << i
        return mask

    @classmethod
    def extended(
        cls,
        base: "BitsetIndex",
        structure: "Structure",
        added_unary: Iterable["UnaryFact"],
        removed_unary: Iterable["UnaryFact"],
        added_binary: Iterable["BinaryFact"],
    ) -> "BitsetIndex":
        """The index of a structure derived from ``base``'s structure.

        Requires ``structure.node_order`` to extend the base order (new
        nodes appended), which :meth:`Structure.extended` guarantees:
        every existing node keeps its bit position, so the base masks
        stay valid and only the delta's bits are edited.
        """
        idx = cls.__new__(cls)
        idx.nodes = structure.node_order
        index = dict(base.index)
        for i in range(len(base.nodes), len(idx.nodes)):
            index[idx.nodes[i]] = i
        idx.index = index
        n = len(idx.nodes)
        idx.full_mask = (1 << n) - 1
        label_nodes = dict(base.label_nodes)
        for fact in removed_unary:
            label_nodes[fact.label] &= ~(1 << index[fact.node])
        for fact in added_unary:
            label_nodes[fact.label] = label_nodes.get(fact.label, 0) | (
                1 << index[fact.node]
            )
        # A fresh build only has keys for labels that still occur.
        idx.label_nodes = {
            label: mask for label, mask in label_nodes.items() if mask
        }
        has_out = dict(base.has_out)
        has_in = dict(base.has_in)
        pad = n - len(base.nodes)
        touched = {fact.pred for fact in added_binary}
        succ: dict[str, list[int]] = {}
        pred: dict[str, list[int]] = {}
        for p in base.succ:
            if pad:
                succ[p] = base.succ[p] + [0] * pad
                pred[p] = base.pred[p] + [0] * pad
            elif p in touched:
                succ[p] = list(base.succ[p])
                pred[p] = list(base.pred[p])
            else:
                # Untouched mask lists are shared with the base (they
                # are never mutated again).
                succ[p] = base.succ[p]
                pred[p] = base.pred[p]
        for fact in added_binary:
            s, d = index[fact.src], index[fact.dst]
            if fact.pred not in succ:
                succ[fact.pred] = [0] * n
                pred[fact.pred] = [0] * n
                has_out[fact.pred] = 0
                has_in[fact.pred] = 0
            succ[fact.pred][s] |= 1 << d
            pred[fact.pred][d] |= 1 << s
            has_out[fact.pred] |= 1 << s
            has_in[fact.pred] |= 1 << d
        idx.succ = succ
        idx.pred = pred
        idx.has_out = has_out
        idx.has_in = has_in
        return idx


class MatrixIndex:
    """Dense boolean-matrix view of a :class:`Structure` (numpy only).

    Nodes are interned to ``0 .. n-1`` in :attr:`Structure.node_order`;
    every node set becomes a boolean vector and every binary predicate a
    dense ``n x n`` boolean adjacency matrix (``adj[p][u, w]`` iff the
    fact ``p(u, w)`` holds).  The homomorphism engine's ``matrix``
    backend runs arc consistency as boolean-semiring matrix-vector
    products (``adj[p] @ domain`` — numpy evaluates boolean ``dot`` in
    the OR-AND semiring) and forward checking as row ANDs, replacing the
    per-candidate Python loops of the ``bitset`` backend with one
    vectorized operation per revision.  Dense matrices pay off on large,
    edge-rich targets; the ``bitset`` index remains the right view for
    small structures.
    """

    __slots__ = (
        "nodes",
        "index",
        "n",
        "full",
        "label_nodes",
        "adj",
        "adj_t",
        "has_out",
        "has_in",
    )

    def __init__(self, structure: "Structure") -> None:
        np = numpy_or_none()
        if np is None:  # pragma: no cover - exercised on numpy-free builds
            raise RuntimeError(
                "MatrixIndex requires numpy (install the 'matrix' extra); "
                "use Structure.bitset_index / the 'bitset' backend instead"
            )
        self.nodes: tuple[Node, ...] = structure.node_order
        self.index: Mapping[Node, int] = structure.node_index
        n = len(self.nodes)
        self.n = n
        self.full = np.ones(n, dtype=bool)
        self.label_nodes: dict[str, object] = {}
        for label in structure.unary_predicates:
            vec = np.zeros(n, dtype=bool)
            for node in structure.nodes_with_label(label):
                vec[self.index[node]] = True
            self.label_nodes[label] = vec
        self.adj: dict[str, object] = {}
        self.adj_t: dict[str, object] = {}
        for fact in structure.binary_facts:
            mat = self.adj.get(fact.pred)
            if mat is None:
                mat = np.zeros((n, n), dtype=bool)
                self.adj[fact.pred] = mat
            mat[self.index[fact.src], self.index[fact.dst]] = True
        for pred, mat in self.adj.items():
            self.adj_t[pred] = np.ascontiguousarray(mat.T)
        self.has_out = {p: m.any(axis=1) for p, m in self.adj.items()}
        self.has_in = {p: m.any(axis=0) for p, m in self.adj.items()}

    def mask_of(self, nodes: Iterable[Node]):
        """The boolean vector of the given nodes (foreign nodes ignored)."""
        np = numpy_or_none()
        vec = np.zeros(self.n, dtype=bool)
        index = self.index
        for node in nodes:
            i = index.get(node)
            if i is not None:
                vec[i] = True
        return vec


class Structure:
    """An immutable finite structure over unary and binary predicates.

    Provides the indexed views needed by the homomorphism engine:
    labels per node, outgoing/incoming edges per node, nodes per label,
    and — built lazily on first use — an integer interning of the nodes
    (:attr:`node_order` / :attr:`node_index`), per-``(node, pred)``
    successor/predecessor frozensets, a :class:`BitsetIndex` of adjacency
    bitmasks, and a stable content :attr:`fingerprint` for cache keys.
    """

    __slots__ = (
        "_nodes",
        "_unary",
        "_binary",
        "_labels_by_node",
        "_nodes_by_label",
        "_out",
        "_in",
        "_hash",
        "_node_order",
        "_order_hint",
        "_node_index",
        "_out_by_pred",
        "_in_by_pred",
        "_bitset_index",
        "_matrix_index",
        "_fingerprint",
        "_fingerprint_int",
        "_engine_plan",
        "_tree_decomp",
        "_decomp_plan",
        "_extend_hint",
        "_delta",
        "_unary_preds",
        "_binary_preds",
    )

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        unary: Iterable[UnaryFact] = (),
        binary: Iterable[BinaryFact] = (),
    ) -> None:
        unary = frozenset(unary)
        binary = frozenset(binary)
        explicit = set(nodes)
        for fact in unary:
            explicit.add(fact.node)
        for fact in binary:
            explicit.add(fact.src)
            explicit.add(fact.dst)
        self._nodes = frozenset(explicit)
        self._unary = unary
        self._binary = binary
        # Everything below the frozen fact sets — the label / adjacency
        # maps, the hash, the engine indexes — is built lazily on first
        # use (and, for extended() results, from the base's maps plus
        # the delta), so constructing a structure costs only the
        # frozensets themselves.
        self._labels_by_node = None
        self._nodes_by_label = None
        self._out = None
        self._in = None
        self._hash = None
        self._delta = None
        # Lazily-built engine indexes (see the properties below).
        self._node_order: tuple[Node, ...] | None = None
        self._order_hint = None  # (base, new_nodes): lazy order descent
        self._node_index: dict[Node, int] | None = None
        self._out_by_pred: dict[Node, dict[str, frozenset[Node]]] | None = None
        self._in_by_pred: dict[Node, dict[str, frozenset[Node]]] | None = None
        self._bitset_index: BitsetIndex | None = None
        self._matrix_index: MatrixIndex | None = None
        self._fingerprint: str | None = None
        self._fingerprint_int: int | None = None
        # Opaque per-structure scratch of the homomorphism engine: the
        # compiled source-side search plan (see homengine._source_plan),
        # the tree decomposition of the primal graph and the compiled
        # decomposition-DP plan (see repro.core.decomp).
        self._engine_plan = None
        self._tree_decomp = None
        self._decomp_plan = None
        # Set by extended(): (base, touched_nodes, added_binary), letting
        # the engine derive this structure's plan from the base's.
        self._extend_hint = None
        self._unary_preds: frozenset[str] | None = None
        self._binary_preds: frozenset[str] | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    def _ensure_maps(self) -> None:
        """Build the label / adjacency maps on first use.

        A structure produced by :meth:`extended` whose base has built
        maps copies them (C-speed dict copies) and applies only the
        delta; everything else scans its own fact sets once.
        """
        if self._labels_by_node is not None:
            return
        delta = self._delta
        if delta is not None and delta[0]._labels_by_node is not None:
            base, added_u, removed_u, added_b, new_nodes = delta
            labels_by_node = dict(base._labels_by_node)
            nodes_by_label = dict(base._nodes_by_label)
            out = dict(base._out)
            inc = dict(base._in)
            for n in new_nodes:
                labels_by_node[n] = frozenset()
                out[n] = ()
                inc[n] = ()
            for f in removed_u:
                labels_by_node[f.node] = labels_by_node[f.node] - {f.label}
                nodes_by_label[f.label] = nodes_by_label[f.label] - {f.node}
            for f in added_u:
                labels_by_node[f.node] = labels_by_node[f.node] | {f.label}
                nodes_by_label[f.label] = (
                    nodes_by_label.get(f.label, frozenset()) | {f.node}
                )
            for f in added_b:
                out[f.src] = out[f.src] + (f,)
                inc[f.dst] = inc[f.dst] + (f,)
            self._labels_by_node = labels_by_node
            self._nodes_by_label = nodes_by_label
            self._out = out
            self._in = inc
            # Release the derivation chain: keeping the delta would pin
            # every ancestor structure for this structure's lifetime.
            # The pred maps, if asked for later, rebuild from own facts.
            self._delta = None
            return
        labels: dict[Node, set[str]] = {n: set() for n in self._nodes}
        by_label: dict[str, set[Node]] = {}
        for fact in self._unary:
            labels[fact.node].add(fact.label)
            by_label.setdefault(fact.label, set()).add(fact.node)
        out_lists: dict[Node, list[BinaryFact]] = {n: [] for n in self._nodes}
        in_lists: dict[Node, list[BinaryFact]] = {n: [] for n in self._nodes}
        for fact in self._binary:
            out_lists[fact.src].append(fact)
            in_lists[fact.dst].append(fact)
        self._labels_by_node = {
            n: frozenset(ls) for n, ls in labels.items()
        }
        self._nodes_by_label = {
            label: frozenset(ns) for label, ns in by_label.items()
        }
        self._out = {n: tuple(facts) for n, facts in out_lists.items()}
        self._in = {n: tuple(facts) for n, facts in in_lists.items()}

    @property
    def nodes(self) -> frozenset[Node]:
        return self._nodes

    @property
    def unary_facts(self) -> frozenset[UnaryFact]:
        return self._unary

    @property
    def binary_facts(self) -> frozenset[BinaryFact]:
        return self._binary

    def labels(self, node: Node) -> frozenset[str]:
        """All unary labels on ``node``."""
        if self._labels_by_node is None:
            self._ensure_maps()
        return self._labels_by_node.get(node, frozenset())

    def has_label(self, node: Node, label: str) -> bool:
        return label in self.labels(node)

    def nodes_with_label(self, label: str) -> frozenset[Node]:
        if self._nodes_by_label is None:
            self._ensure_maps()
        return self._nodes_by_label.get(label, frozenset())

    def out_edges(self, node: Node) -> tuple[BinaryFact, ...]:
        if self._out is None:
            self._ensure_maps()
        return self._out.get(node, ())

    def in_edges(self, node: Node) -> tuple[BinaryFact, ...]:
        if self._in is None:
            self._ensure_maps()
        return self._in.get(node, ())

    def successors(self, node: Node) -> Iterator[Node]:
        for fact in self.out_edges(node):
            yield fact.dst

    def predecessors(self, node: Node) -> Iterator[Node]:
        for fact in self.in_edges(node):
            yield fact.src

    def degree(self, node: Node) -> int:
        return len(self.out_edges(node)) + len(self.in_edges(node))

    @property
    def unary_predicates(self) -> frozenset[str]:
        if self._unary_preds is None:
            self._unary_preds = frozenset(
                fact.label for fact in self._unary
            )
        return self._unary_preds

    @property
    def binary_predicates(self) -> frozenset[str]:
        if self._binary_preds is None:
            self._binary_preds = frozenset(
                fact.pred for fact in self._binary
            )
        return self._binary_preds

    def __len__(self) -> int:
        return len(self._nodes)

    def size(self) -> int:
        """Total number of facts (atoms) in the structure."""
        return len(self._unary) + len(self._binary)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self._nodes == other._nodes
            and self._unary == other._unary
            and self._binary == other._binary
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._nodes, self._unary, self._binary))
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Structure(|nodes|={len(self._nodes)}, "
            f"|unary|={len(self._unary)}, |binary|={len(self._binary)})"
        )

    # ------------------------------------------------------------------
    # Lazily-built engine indexes
    # ------------------------------------------------------------------

    @property
    def node_order(self) -> tuple[Node, ...]:
        """The nodes in a stable, per-instance interning order.

        Freshly-built structures sort by canonical key; structures from
        :meth:`extended` keep the base's order and append the new nodes
        — *whether or not* the base's order was materialised at
        extension time (a pending inheritance is recorded as an order
        hint and resolved lazily, walking the derivation chain) — so
        existing integer ids (and therefore bitset positions) survive
        extension all the way down a derivation chain.  Position in
        this tuple is the node's integer id; see :attr:`node_index` for
        the inverse map.
        """
        if self._node_order is None:
            # Materialise the deepest unresolved ancestor first, then
            # walk back down inheriting order prefixes.
            chain = [self]
            hint = self._order_hint
            while hint is not None and hint[0]._node_order is None:
                chain.append(hint[0])
                hint = hint[0]._order_hint
            for s in reversed(chain):
                s_hint = s._order_hint
                if s_hint is not None:
                    base, new_nodes = s_hint
                    s._node_order = base._node_order + tuple(
                        sorted(new_nodes, key=_canonical_key)
                    )
                else:
                    s._node_order = tuple(
                        sorted(s._nodes, key=_canonical_key)
                    )
                s._order_hint = None  # release the ancestor reference
        return self._node_order

    @property
    def node_index(self) -> Mapping[Node, int]:
        """The node -> int interning table (inverse of :attr:`node_order`)."""
        if self._node_index is None:
            self._node_index = {
                node: i for i, node in enumerate(self.node_order)
            }
        return self._node_index

    def _build_pred_maps(self) -> None:
        delta = self._delta
        if delta is not None and delta[0]._out_by_pred is not None:
            base, _added_u, _removed_u, added_b, new_nodes = delta
            out_bp = dict(base._out_by_pred)
            in_bp = dict(base._in_by_pred)
            for n in new_nodes:
                out_bp[n] = {}
                in_bp[n] = {}
            for n in {f.src for f in added_b}:
                out_bp[n] = _group_by_pred(self.out_edges(n), True)
            for n in {f.dst for f in added_b}:
                in_bp[n] = _group_by_pred(self.in_edges(n), False)
            self._out_by_pred = out_bp
            self._in_by_pred = in_bp
            self._delta = None  # consumed: release the derivation chain
            return
        out: dict[Node, dict[str, set[Node]]] = {n: {} for n in self._nodes}
        inc: dict[Node, dict[str, set[Node]]] = {n: {} for n in self._nodes}
        for fact in self._binary:
            out[fact.src].setdefault(fact.pred, set()).add(fact.dst)
            inc[fact.dst].setdefault(fact.pred, set()).add(fact.src)
        self._out_by_pred = {
            n: {p: frozenset(s) for p, s in preds.items()}
            for n, preds in out.items()
        }
        self._in_by_pred = {
            n: {p: frozenset(s) for p, s in preds.items()}
            for n, preds in inc.items()
        }

    def out_by_pred(self, node: Node) -> Mapping[str, frozenset[Node]]:
        """Per-predicate successor sets of ``node`` (lazily indexed)."""
        if self._out_by_pred is None:
            self._build_pred_maps()
        return self._out_by_pred.get(node, {})

    def in_by_pred(self, node: Node) -> Mapping[str, frozenset[Node]]:
        """Per-predicate predecessor sets of ``node`` (lazily indexed)."""
        if self._in_by_pred is None:
            self._build_pred_maps()
        return self._in_by_pred.get(node, {})

    def out_pred_set(self, node: Node) -> frozenset[str]:
        """The predicates of the outgoing edges of ``node``."""
        return frozenset(self.out_by_pred(node))

    def in_pred_set(self, node: Node) -> frozenset[str]:
        """The predicates of the incoming edges of ``node``."""
        return frozenset(self.in_by_pred(node))

    @property
    def bitset_index(self) -> BitsetIndex:
        """The interned bitmask view used by the ``bitset`` hom backend."""
        if self._bitset_index is None:
            self._bitset_index = BitsetIndex(self)
        return self._bitset_index

    @property
    def matrix_index(self) -> MatrixIndex:
        """The dense boolean-matrix view used by the ``matrix`` hom
        backend (lazily built; raises :class:`RuntimeError` when numpy is
        not installed — callers should check
        :func:`repro.core.homengine.matrix_backend_available` first)."""
        if self._matrix_index is None:
            self._matrix_index = MatrixIndex(self)
        return self._matrix_index

    @property
    def _fp_int(self) -> int:
        """The 128-bit multiset fingerprint (see module header)."""
        if self._fingerprint_int is None:
            total = 0
            for n in self._nodes:
                total += _line_hash(_node_line(n))
            for f in self._unary:
                total += _line_hash(_unary_line(f))
            for f in self._binary:
                total += _line_hash(_binary_line(f))
            self._fingerprint_int = total & _FP_MASK
        return self._fingerprint_int

    @property
    def fingerprint(self) -> str:
        """A stable content digest, usable as a cross-instance cache key.

        Two structures with equal nodes and facts always produce the same
        fingerprint, even when built in different orders, as distinct
        instances, or through :meth:`extended` (which maintains the
        digest by a delta); the homomorphism cache relies on this.
        """
        if self._fingerprint is None:
            self._fingerprint = format(self._fp_int, "032x")
        return self._fingerprint

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------

    def extended(
        self,
        add_nodes: Iterable[Node] = (),
        add_unary: Iterable[UnaryFact] = (),
        add_binary: Iterable[BinaryFact] = (),
        remove_unary: Iterable[UnaryFact] = (),
    ) -> "Structure":
        """A derived structure: this one plus a delta, sharing index work.

        The result equals ``Structure(nodes | add_nodes, (unary -
        remove_unary) | add_unary, binary | add_binary)`` — node for
        node, fact for fact, fingerprint for fingerprint — but is built
        by copying this structure's eager indexes and applying only the
        delta, appending to the interning order, extending the
        :class:`BitsetIndex` and per-predicate maps when already built,
        and updating the multiset fingerprint by the delta's line
        hashes.  Nodes are never removed (dropping a unary fact keeps
        its node), and binary facts are add-only; use the from-scratch
        constructors for anything else.  This is the fast path under
        incremental cactus budding, ``union`` and ``relabel_node``.
        """
        add_unary = frozenset(add_unary)
        add_binary = frozenset(add_binary)
        remove_unary = frozenset(remove_unary)
        # Normalise through the (small) delta side: every set operation
        # below iterates the delta, not the base, except the final
        # unions producing the new fact sets.
        removed_u = (remove_unary & self._unary) - add_unary
        surviving = self._unary - removed_u if removed_u else self._unary
        added_u = add_unary - surviving
        new_unary = surviving | added_u if added_u else surviving
        added_b = add_binary - self._binary
        new_binary = self._binary | added_b if added_b else self._binary
        explicit = set(add_nodes)
        for f in added_u:
            explicit.add(f.node)
        for f in added_b:
            explicit.add(f.src)
            explicit.add(f.dst)
        new_nodes_set = explicit - self._nodes
        if not (new_nodes_set or removed_u or added_u or added_b):
            return self

        s = Structure.__new__(Structure)
        s._nodes = (
            self._nodes | new_nodes_set if new_nodes_set else self._nodes
        )
        s._unary = new_unary
        s._binary = new_binary
        s._hash = None

        touched: set[Node] = set(new_nodes_set)
        for f in removed_u:
            touched.add(f.node)
        for f in added_u:
            touched.add(f.node)
        for f in added_b:
            touched.add(f.src)
            touched.add(f.dst)

        # The label / adjacency maps stay lazy: _ensure_maps copies the
        # base's and applies this delta if (and when) anyone asks.
        s._labels_by_node = None
        s._nodes_by_label = None
        s._out = None
        s._in = None
        s._delta = (self, added_u, removed_u, added_b, new_nodes_set)

        # Interning order: keep the base's ids, append the new nodes.
        # When the base's order is not materialised yet, the
        # inheritance is recorded as a hint and resolved lazily (pure
        # construction — the cactus factory's cold path — then pays
        # nothing for ordering).
        if self._node_order is not None:
            s._node_order = self._node_order + tuple(
                sorted(new_nodes_set, key=_canonical_key)
            )
            s._order_hint = None
        else:
            s._node_order = None
            # new_nodes_set is a fresh local set: share it, no copy.
            s._order_hint = (self, new_nodes_set)
        s._node_index = None

        # Per-predicate neighbour maps: lazy, delta-aware (see
        # _build_pred_maps).
        s._out_by_pred = None
        s._in_by_pred = None

        if self._bitset_index is not None and s._node_order is not None:
            s._bitset_index = BitsetIndex.extended(
                self._bitset_index, s, added_u, removed_u, added_b
            )
        else:
            s._bitset_index = None
        # Dense matrices don't extend cheaply (a pad reallocates every
        # predicate's n x n block); derived structures rebuild on demand.
        s._matrix_index = None

        if self._fingerprint_int is not None:
            delta = 0
            for n in new_nodes_set:
                delta += _line_hash(_node_line(n))
            for f in added_u:
                delta += _line_hash(_unary_line(f))
            for f in added_b:
                delta += _line_hash(_binary_line(f))
            for f in removed_u:
                delta -= _line_hash(_unary_line(f))
            s._fingerprint_int = (self._fingerprint_int + delta) & _FP_MASK
        else:
            s._fingerprint_int = None
        s._fingerprint = None

        s._engine_plan = None
        # Decompositions and decomp plans depend on the full primal
        # graph; a delta can change the width, so derived structures
        # rebuild them on demand (the fingerprint-keyed plan intern in
        # repro.core.decomp still dedupes content-equal rebuilds).
        s._tree_decomp = None
        s._decomp_plan = None
        # Order inheritance (eager or hinted) guarantees the id prefix
        # the engine's plan derivation relies on, so the hint is always
        # usable.  ``touched`` is a fresh local set and ``added_b`` a
        # frozenset; both are shared uncopied (consumers only iterate).
        s._extend_hint = (self, touched, added_b)
        s._unary_preds = None
        s._binary_preds = None
        return s

    def rename(self, mapping: Mapping[Node, Node]) -> "Structure":
        """A copy with nodes renamed; identity outside ``mapping``.

        The mapping may be non-injective, in which case nodes are merged
        (glued), as in the budding operation.
        """
        return Structure(
            (mapping.get(n, n) for n in self._nodes),
            (f.rename(mapping) for f in self._unary),
            (f.rename(mapping) for f in self._binary),
        )

    def relabel_node(
        self,
        node: Node,
        remove: Iterable[str] = (),
        add: Iterable[str] = (),
    ) -> "Structure":
        """A copy with some unary labels on ``node`` removed/added."""
        remove = set(remove)
        return self.extended(
            add_unary=[UnaryFact(label, node) for label in add],
            remove_unary=[
                UnaryFact(label, node)
                for label in self.labels(node)
                if label in remove
            ],
        )

    def union(self, other: "Structure") -> "Structure":
        """Disjoint-or-not union: facts of both structures together.

        Nodes with equal names are identified, which is how gluing is
        expressed throughout the library (rename first for disjointness).
        The larger side's indexes are extended by the smaller side's
        facts instead of rebuilding from scratch.
        """
        big, small = (
            (self, other) if len(self._nodes) >= len(other._nodes) else
            (other, self)
        )
        return big.extended(
            add_nodes=small._nodes,
            add_unary=small._unary,
            add_binary=small._binary,
        )

    def restrict(self, keep: Iterable[Node]) -> "Structure":
        """The induced substructure on the node set ``keep``."""
        keep = set(keep)
        return Structure(
            keep & self._nodes,
            (f for f in self._unary if f.node in keep),
            (
                f
                for f in self._binary
                if f.src in keep and f.dst in keep
            ),
        )

    def without_nodes(self, drop: Iterable[Node]) -> "Structure":
        drop = set(drop)
        return self.restrict(self._nodes - drop)

    def with_fresh_nodes(self, prefix: str) -> tuple["Structure", dict[Node, Node]]:
        """A disjoint copy whose nodes are ``(prefix, original)`` pairs."""
        mapping: dict[Node, Node] = {n: (prefix, n) for n in self._nodes}
        return self.rename(mapping), mapping

    # ------------------------------------------------------------------
    # Graph-theoretic helpers
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """Weak connectivity of the underlying graph."""
        if not self._nodes:
            return True
        seen: set[Node] = set()
        stack = [next(iter(self._nodes))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.successors(node))
            stack.extend(self.predecessors(node))
        return seen == self._nodes

    def weak_components(self) -> list[frozenset[Node]]:
        remaining = set(self._nodes)
        components: list[frozenset[Node]] = []
        while remaining:
            seed = next(iter(remaining))
            seen: set[Node] = set()
            stack = [seed]
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(self.successors(node))
                stack.extend(self.predecessors(node))
            components.append(frozenset(seen))
            remaining -= seen
        return components

    def is_dag(self) -> bool:
        """True if the binary-edge digraph has no directed cycle."""
        indeg = {n: 0 for n in self._nodes}
        for fact in self._binary:
            indeg[fact.dst] += 1
        queue = [n for n, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for fact in self.out_edges(node):
                indeg[fact.dst] -= 1
                if indeg[fact.dst] == 0:
                    queue.append(fact.dst)
        return seen == len(self._nodes)

    def is_ditree(self) -> bool:
        """True if the digraph is a rooted directed tree.

        Exactly one node of in-degree 0, every other node of in-degree 1,
        connected, and no parallel edges collapsing (multi-edges between
        the same pair with different predicates disqualify tree shape).
        """
        if not self._nodes:
            return False
        roots = [n for n in self._nodes if not self.in_edges(n)]
        if len(roots) != 1:
            return False
        for node in self._nodes:
            if node == roots[0]:
                continue
            if len(self.in_edges(node)) != 1:
                return False
        return self.is_connected()

    def ditree_root(self) -> Node:
        """The unique in-degree-0 node of a ditree (raises otherwise)."""
        roots = [n for n in self._nodes if not self.in_edges(n)]
        if len(roots) != 1:
            raise ValueError("structure is not a rooted ditree")
        return roots[0]

    # ------------------------------------------------------------------
    # Pretty printing
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """A stable human-readable listing of all facts."""
        lines = []
        for fact in sorted(self._unary, key=lambda f: (str(f.node), f.label)):
            lines.append(f"{fact.label}({fact.node})")
        for fact in sorted(
            self._binary, key=lambda f: (str(f.src), f.pred, str(f.dst))
        ):
            lines.append(f"{fact.pred}({fact.src}, {fact.dst})")
        return "\n".join(lines)


@dataclass
class StructureBuilder:
    """Mutable accumulator for constructing a :class:`Structure`."""

    nodes: set[Node] = field(default_factory=set)
    unary: set[UnaryFact] = field(default_factory=set)
    binary: set[BinaryFact] = field(default_factory=set)
    _fresh_counter: itertools.count = field(default_factory=itertools.count)

    def add_node(self, node: Node, *labels: str) -> Node:
        self.nodes.add(node)
        for label in labels:
            self.unary.add(UnaryFact(label, node))
        return node

    def fresh_node(self, *labels: str, hint: str = "n") -> Node:
        node = f"{hint}#{next(self._fresh_counter)}"
        while node in self.nodes:
            node = f"{hint}#{next(self._fresh_counter)}"
        return self.add_node(node, *labels)

    def add_label(self, node: Node, *labels: str) -> None:
        self.nodes.add(node)
        for label in labels:
            self.unary.add(UnaryFact(label, node))

    def add_edge(self, src: Node, dst: Node, pred: str = R) -> None:
        self.nodes.add(src)
        self.nodes.add(dst)
        self.binary.add(BinaryFact(pred, src, dst))

    def add_structure(self, other: Structure) -> None:
        self.nodes |= other.nodes
        self.unary |= other.unary_facts
        self.binary |= other.binary_facts

    def build(self) -> Structure:
        return Structure(self.nodes, self.unary, self.binary)


def path_structure(
    labels: Iterable[Iterable[str] | str],
    preds: Iterable[str] | None = None,
    prefix: str = "v",
) -> Structure:
    """An R-path (or mixed-predicate path) with the given node labels.

    ``labels`` lists per-node unary labels; a bare string means one label
    and the empty string means no label.  ``preds`` optionally gives the
    edge predicate per consecutive pair (defaults to all ``R``).

    >>> q = path_structure(["T", "T", "F"])          # T -R-> T -R-> F
    >>> sorted(q.nodes)
    ['v0', 'v1', 'v2']
    """
    label_lists: list[tuple[str, ...]] = []
    for item in labels:
        if isinstance(item, str):
            label_lists.append((item,) if item else ())
        else:
            label_lists.append(tuple(item))
    n = len(label_lists)
    pred_list = list(preds) if preds is not None else [R] * max(n - 1, 0)
    if len(pred_list) != max(n - 1, 0):
        raise ValueError("need exactly len(labels) - 1 edge predicates")
    builder = StructureBuilder()
    names = [f"{prefix}{i}" for i in range(n)]
    for name, labs in zip(names, label_lists):
        builder.add_node(name, *labs)
    for i, pred in enumerate(pred_list):
        builder.add_edge(names[i], names[i + 1], pred)
    return builder.build()
