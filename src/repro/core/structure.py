"""Labelled-digraph structures: the common substrate for CQs and data.

The paper works with conjunctive queries and data instances over unary
predicates (``F``, ``T``, ``A``, plus auxiliary labels used by the
Theorem 3 gadgets) and arbitrary binary predicates.  Both are finite
relational structures, which we represent uniformly as labelled digraphs:

* nodes (query variables or data constants),
* unary facts ``label(node)``,
* binary facts ``pred(src, dst)``.

A :class:`Structure` is immutable once frozen; builders use
:class:`StructureBuilder`.  Conjunctive queries are structures whose nodes
are read as existentially quantified variables; data instances are
structures whose nodes are read as constants.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping

Node = Hashable


_ATOMIC_KEY_TYPES = (str, int, float, bool, bytes, complex, type(None))


def _canonical_key(node: Node) -> str:
    """A stable textual key for a node, for fingerprints and sort orders.

    Tuples and frozensets (the composite node names used by cactus and
    segment gluing) are rendered recursively, with frozenset elements
    sorted, so that equal nodes always produce equal keys regardless of
    set iteration order.  Builtin atoms use ``repr`` (injective across
    those types); any other object is keyed by its type's qualified name
    plus ``repr``.

    The fingerprint-keyed hom-cache relies on distinct nodes producing
    distinct keys, so custom node classes must have a ``repr`` that is
    injective up to ``__eq__`` (dataclass field reprs qualify); a
    constant or identity-blind ``repr`` on a custom node type can alias
    cache entries of structurally different structures.
    """
    if isinstance(node, tuple):
        return "(" + "\x1f".join(_canonical_key(x) for x in node) + ")"
    if isinstance(node, frozenset):
        return "{" + "\x1f".join(sorted(_canonical_key(x) for x in node)) + "}"
    if isinstance(node, _ATOMIC_KEY_TYPES):
        return repr(node)
    cls = type(node)
    return f"{cls.__module__}.{cls.__qualname__}\x1d{node!r}"

# Unary predicate names with fixed meaning throughout the library.
F = "F"
T = "T"
A = "A"

# Default binary predicate used by most of the paper's example queries.
R = "R"
S = "S"


@dataclass(frozen=True)
class UnaryFact:
    """A unary atom ``label(node)``."""

    label: str
    node: Node

    def rename(self, mapping: Mapping[Node, Node]) -> "UnaryFact":
        return UnaryFact(self.label, mapping.get(self.node, self.node))


@dataclass(frozen=True)
class BinaryFact:
    """A binary atom ``pred(src, dst)``."""

    pred: str
    src: Node
    dst: Node

    def rename(self, mapping: Mapping[Node, Node]) -> "BinaryFact":
        return BinaryFact(
            self.pred,
            mapping.get(self.src, self.src),
            mapping.get(self.dst, self.dst),
        )


class BitsetIndex:
    """Integer-interned, bitmask-encoded view of a :class:`Structure`.

    Nodes are interned to the integers ``0 .. n-1`` (in the structure's
    stable :attr:`Structure.node_order`); every node set is then a Python
    int used as a bitset.  The homomorphism engine's ``bitset`` backend
    runs entirely on these masks: candidate-domain filtering is a chain
    of bitwise ANDs and arc-consistency checks AND a domain against the
    precomputed adjacency masks of the candidate image.
    """

    __slots__ = (
        "nodes",
        "index",
        "full_mask",
        "label_nodes",
        "succ",
        "pred",
        "has_out",
        "has_in",
    )

    def __init__(self, structure: "Structure") -> None:
        self.nodes: tuple[Node, ...] = structure.node_order
        self.index: dict[Node, int] = {
            node: i for i, node in enumerate(self.nodes)
        }
        n = len(self.nodes)
        self.full_mask: int = (1 << n) - 1
        # label -> bitmask of nodes carrying the label
        self.label_nodes: dict[str, int] = {}
        for label in structure.unary_predicates:
            mask = 0
            for node in structure.nodes_with_label(label):
                mask |= 1 << self.index[node]
            self.label_nodes[label] = mask
        # pred -> per-node-index masks of successors / predecessors,
        # plus "has at least one out/in edge with pred" node masks.
        self.succ: dict[str, list[int]] = {}
        self.pred: dict[str, list[int]] = {}
        self.has_out: dict[str, int] = {}
        self.has_in: dict[str, int] = {}
        for fact in structure.binary_facts:
            s, d = self.index[fact.src], self.index[fact.dst]
            if fact.pred not in self.succ:
                self.succ[fact.pred] = [0] * n
                self.pred[fact.pred] = [0] * n
                self.has_out[fact.pred] = 0
                self.has_in[fact.pred] = 0
            self.succ[fact.pred][s] |= 1 << d
            self.pred[fact.pred][d] |= 1 << s
            self.has_out[fact.pred] |= 1 << s
            self.has_in[fact.pred] |= 1 << d

    def mask_of(self, nodes: Iterable[Node]) -> int:
        """The bitmask of the given nodes (foreign nodes are ignored)."""
        mask = 0
        index = self.index
        for node in nodes:
            i = index.get(node)
            if i is not None:
                mask |= 1 << i
        return mask


class Structure:
    """An immutable finite structure over unary and binary predicates.

    Provides the indexed views needed by the homomorphism engine:
    labels per node, outgoing/incoming edges per node, nodes per label,
    and — built lazily on first use — an integer interning of the nodes
    (:attr:`node_order` / :attr:`node_index`), per-``(node, pred)``
    successor/predecessor frozensets, a :class:`BitsetIndex` of adjacency
    bitmasks, and a stable content :attr:`fingerprint` for cache keys.
    """

    __slots__ = (
        "_nodes",
        "_unary",
        "_binary",
        "_labels_by_node",
        "_nodes_by_label",
        "_out",
        "_in",
        "_hash",
        "_node_order",
        "_node_index",
        "_out_by_pred",
        "_in_by_pred",
        "_bitset_index",
        "_fingerprint",
        "_engine_plan",
        "_unary_preds",
        "_binary_preds",
    )

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        unary: Iterable[UnaryFact] = (),
        binary: Iterable[BinaryFact] = (),
    ) -> None:
        unary = frozenset(unary)
        binary = frozenset(binary)
        explicit = set(nodes)
        for fact in unary:
            explicit.add(fact.node)
        for fact in binary:
            explicit.add(fact.src)
            explicit.add(fact.dst)
        self._nodes = frozenset(explicit)
        self._unary = unary
        self._binary = binary

        labels_by_node: dict[Node, set[str]] = {n: set() for n in self._nodes}
        nodes_by_label: dict[str, set[Node]] = {}
        for fact in unary:
            labels_by_node[fact.node].add(fact.label)
            nodes_by_label.setdefault(fact.label, set()).add(fact.node)
        out: dict[Node, list[BinaryFact]] = {n: [] for n in self._nodes}
        inc: dict[Node, list[BinaryFact]] = {n: [] for n in self._nodes}
        for fact in binary:
            out[fact.src].append(fact)
            inc[fact.dst].append(fact)
        self._labels_by_node = {
            n: frozenset(ls) for n, ls in labels_by_node.items()
        }
        self._nodes_by_label = {
            label: frozenset(ns) for label, ns in nodes_by_label.items()
        }
        self._out = {n: tuple(facts) for n, facts in out.items()}
        self._in = {n: tuple(facts) for n, facts in inc.items()}
        self._hash = hash((self._nodes, self._unary, self._binary))
        # Lazily-built engine indexes (see the properties below).
        self._node_order: tuple[Node, ...] | None = None
        self._node_index: dict[Node, int] | None = None
        self._out_by_pred: dict[Node, dict[str, frozenset[Node]]] | None = None
        self._in_by_pred: dict[Node, dict[str, frozenset[Node]]] | None = None
        self._bitset_index: BitsetIndex | None = None
        self._fingerprint: str | None = None
        # Opaque per-structure scratch of the homomorphism engine: the
        # compiled source-side search plan (see homengine._source_plan).
        self._engine_plan = None
        self._unary_preds: frozenset[str] | None = None
        self._binary_preds: frozenset[str] | None = None

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> frozenset[Node]:
        return self._nodes

    @property
    def unary_facts(self) -> frozenset[UnaryFact]:
        return self._unary

    @property
    def binary_facts(self) -> frozenset[BinaryFact]:
        return self._binary

    def labels(self, node: Node) -> frozenset[str]:
        """All unary labels on ``node``."""
        return self._labels_by_node.get(node, frozenset())

    def has_label(self, node: Node, label: str) -> bool:
        return label in self.labels(node)

    def nodes_with_label(self, label: str) -> frozenset[Node]:
        return self._nodes_by_label.get(label, frozenset())

    def out_edges(self, node: Node) -> tuple[BinaryFact, ...]:
        return self._out.get(node, ())

    def in_edges(self, node: Node) -> tuple[BinaryFact, ...]:
        return self._in.get(node, ())

    def successors(self, node: Node) -> Iterator[Node]:
        for fact in self.out_edges(node):
            yield fact.dst

    def predecessors(self, node: Node) -> Iterator[Node]:
        for fact in self.in_edges(node):
            yield fact.src

    def degree(self, node: Node) -> int:
        return len(self.out_edges(node)) + len(self.in_edges(node))

    @property
    def unary_predicates(self) -> frozenset[str]:
        if self._unary_preds is None:
            self._unary_preds = frozenset(self._nodes_by_label)
        return self._unary_preds

    @property
    def binary_predicates(self) -> frozenset[str]:
        if self._binary_preds is None:
            self._binary_preds = frozenset(
                fact.pred for fact in self._binary
            )
        return self._binary_preds

    def __len__(self) -> int:
        return len(self._nodes)

    def size(self) -> int:
        """Total number of facts (atoms) in the structure."""
        return len(self._unary) + len(self._binary)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self._nodes == other._nodes
            and self._unary == other._unary
            and self._binary == other._binary
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Structure(|nodes|={len(self._nodes)}, "
            f"|unary|={len(self._unary)}, |binary|={len(self._binary)})"
        )

    # ------------------------------------------------------------------
    # Lazily-built engine indexes
    # ------------------------------------------------------------------

    @property
    def node_order(self) -> tuple[Node, ...]:
        """The nodes in a stable interning order (sorted by canonical key).

        Position in this tuple is the node's integer id; see
        :attr:`node_index` for the inverse map.
        """
        if self._node_order is None:
            self._node_order = tuple(sorted(self._nodes, key=_canonical_key))
        return self._node_order

    @property
    def node_index(self) -> Mapping[Node, int]:
        """The node -> int interning table (inverse of :attr:`node_order`)."""
        if self._node_index is None:
            self._node_index = {
                node: i for i, node in enumerate(self.node_order)
            }
        return self._node_index

    def _build_pred_maps(self) -> None:
        out: dict[Node, dict[str, set[Node]]] = {n: {} for n in self._nodes}
        inc: dict[Node, dict[str, set[Node]]] = {n: {} for n in self._nodes}
        for fact in self._binary:
            out[fact.src].setdefault(fact.pred, set()).add(fact.dst)
            inc[fact.dst].setdefault(fact.pred, set()).add(fact.src)
        self._out_by_pred = {
            n: {p: frozenset(s) for p, s in preds.items()}
            for n, preds in out.items()
        }
        self._in_by_pred = {
            n: {p: frozenset(s) for p, s in preds.items()}
            for n, preds in inc.items()
        }

    def out_by_pred(self, node: Node) -> Mapping[str, frozenset[Node]]:
        """Per-predicate successor sets of ``node`` (lazily indexed)."""
        if self._out_by_pred is None:
            self._build_pred_maps()
        return self._out_by_pred.get(node, {})

    def in_by_pred(self, node: Node) -> Mapping[str, frozenset[Node]]:
        """Per-predicate predecessor sets of ``node`` (lazily indexed)."""
        if self._in_by_pred is None:
            self._build_pred_maps()
        return self._in_by_pred.get(node, {})

    def out_pred_set(self, node: Node) -> frozenset[str]:
        """The predicates of the outgoing edges of ``node``."""
        return frozenset(self.out_by_pred(node))

    def in_pred_set(self, node: Node) -> frozenset[str]:
        """The predicates of the incoming edges of ``node``."""
        return frozenset(self.in_by_pred(node))

    @property
    def bitset_index(self) -> BitsetIndex:
        """The interned bitmask view used by the ``bitset`` hom backend."""
        if self._bitset_index is None:
            self._bitset_index = BitsetIndex(self)
        return self._bitset_index

    @property
    def fingerprint(self) -> str:
        """A stable content digest, usable as a cross-instance cache key.

        Two structures with equal nodes and facts always produce the same
        fingerprint, even when built in different orders or as distinct
        instances; the homomorphism cache relies on this.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            lines = [f"N\x1e{_canonical_key(n)}" for n in self._nodes]
            lines += [
                f"U\x1e{f.label}\x1e{_canonical_key(f.node)}"
                for f in self._unary
            ]
            lines += [
                f"B\x1e{f.pred}\x1e{_canonical_key(f.src)}"
                f"\x1e{_canonical_key(f.dst)}"
                for f in self._binary
            ]
            for line in sorted(lines):
                digest.update(line.encode("utf-8", "backslashreplace"))
                digest.update(b"\n")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------

    def rename(self, mapping: Mapping[Node, Node]) -> "Structure":
        """A copy with nodes renamed; identity outside ``mapping``.

        The mapping may be non-injective, in which case nodes are merged
        (glued), as in the budding operation.
        """
        return Structure(
            (mapping.get(n, n) for n in self._nodes),
            (f.rename(mapping) for f in self._unary),
            (f.rename(mapping) for f in self._binary),
        )

    def relabel_node(
        self,
        node: Node,
        remove: Iterable[str] = (),
        add: Iterable[str] = (),
    ) -> "Structure":
        """A copy with some unary labels on ``node`` removed/added."""
        remove = set(remove)
        unary = {
            f
            for f in self._unary
            if not (f.node == node and f.label in remove)
        }
        unary.update(UnaryFact(label, node) for label in add)
        return Structure(self._nodes, unary, self._binary)

    def union(self, other: "Structure") -> "Structure":
        """Disjoint-or-not union: facts of both structures together.

        Nodes with equal names are identified, which is how gluing is
        expressed throughout the library (rename first for disjointness).
        """
        return Structure(
            self._nodes | other._nodes,
            self._unary | other._unary,
            self._binary | other._binary,
        )

    def restrict(self, keep: Iterable[Node]) -> "Structure":
        """The induced substructure on the node set ``keep``."""
        keep = set(keep)
        return Structure(
            keep & self._nodes,
            (f for f in self._unary if f.node in keep),
            (
                f
                for f in self._binary
                if f.src in keep and f.dst in keep
            ),
        )

    def without_nodes(self, drop: Iterable[Node]) -> "Structure":
        drop = set(drop)
        return self.restrict(self._nodes - drop)

    def with_fresh_nodes(self, prefix: str) -> tuple["Structure", dict[Node, Node]]:
        """A disjoint copy whose nodes are ``(prefix, original)`` pairs."""
        mapping: dict[Node, Node] = {n: (prefix, n) for n in self._nodes}
        return self.rename(mapping), mapping

    # ------------------------------------------------------------------
    # Graph-theoretic helpers
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """Weak connectivity of the underlying graph."""
        if not self._nodes:
            return True
        seen: set[Node] = set()
        stack = [next(iter(self._nodes))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.successors(node))
            stack.extend(self.predecessors(node))
        return seen == self._nodes

    def weak_components(self) -> list[frozenset[Node]]:
        remaining = set(self._nodes)
        components: list[frozenset[Node]] = []
        while remaining:
            seed = next(iter(remaining))
            seen: set[Node] = set()
            stack = [seed]
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(self.successors(node))
                stack.extend(self.predecessors(node))
            components.append(frozenset(seen))
            remaining -= seen
        return components

    def is_dag(self) -> bool:
        """True if the binary-edge digraph has no directed cycle."""
        indeg = {n: 0 for n in self._nodes}
        for fact in self._binary:
            indeg[fact.dst] += 1
        queue = [n for n, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for fact in self.out_edges(node):
                indeg[fact.dst] -= 1
                if indeg[fact.dst] == 0:
                    queue.append(fact.dst)
        return seen == len(self._nodes)

    def is_ditree(self) -> bool:
        """True if the digraph is a rooted directed tree.

        Exactly one node of in-degree 0, every other node of in-degree 1,
        connected, and no parallel edges collapsing (multi-edges between
        the same pair with different predicates disqualify tree shape).
        """
        if not self._nodes:
            return False
        roots = [n for n in self._nodes if not self._in.get(n)]
        if len(roots) != 1:
            return False
        for node in self._nodes:
            if node == roots[0]:
                continue
            if len(self._in.get(node, ())) != 1:
                return False
        return self.is_connected()

    def ditree_root(self) -> Node:
        """The unique in-degree-0 node of a ditree (raises otherwise)."""
        roots = [n for n in self._nodes if not self._in.get(n)]
        if len(roots) != 1:
            raise ValueError("structure is not a rooted ditree")
        return roots[0]

    # ------------------------------------------------------------------
    # Pretty printing
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """A stable human-readable listing of all facts."""
        lines = []
        for fact in sorted(self._unary, key=lambda f: (str(f.node), f.label)):
            lines.append(f"{fact.label}({fact.node})")
        for fact in sorted(
            self._binary, key=lambda f: (str(f.src), f.pred, str(f.dst))
        ):
            lines.append(f"{fact.pred}({fact.src}, {fact.dst})")
        return "\n".join(lines)


@dataclass
class StructureBuilder:
    """Mutable accumulator for constructing a :class:`Structure`."""

    nodes: set[Node] = field(default_factory=set)
    unary: set[UnaryFact] = field(default_factory=set)
    binary: set[BinaryFact] = field(default_factory=set)
    _fresh_counter: itertools.count = field(default_factory=itertools.count)

    def add_node(self, node: Node, *labels: str) -> Node:
        self.nodes.add(node)
        for label in labels:
            self.unary.add(UnaryFact(label, node))
        return node

    def fresh_node(self, *labels: str, hint: str = "n") -> Node:
        node = f"{hint}#{next(self._fresh_counter)}"
        while node in self.nodes:
            node = f"{hint}#{next(self._fresh_counter)}"
        return self.add_node(node, *labels)

    def add_label(self, node: Node, *labels: str) -> None:
        self.nodes.add(node)
        for label in labels:
            self.unary.add(UnaryFact(label, node))

    def add_edge(self, src: Node, dst: Node, pred: str = R) -> None:
        self.nodes.add(src)
        self.nodes.add(dst)
        self.binary.add(BinaryFact(pred, src, dst))

    def add_structure(self, other: Structure) -> None:
        self.nodes |= other.nodes
        self.unary |= other.unary_facts
        self.binary |= other.binary_facts

    def build(self) -> Structure:
        return Structure(self.nodes, self.unary, self.binary)


def path_structure(
    labels: Iterable[Iterable[str] | str],
    preds: Iterable[str] | None = None,
    prefix: str = "v",
) -> Structure:
    """An R-path (or mixed-predicate path) with the given node labels.

    ``labels`` lists per-node unary labels; a bare string means one label
    and the empty string means no label.  ``preds`` optionally gives the
    edge predicate per consecutive pair (defaults to all ``R``).

    >>> q = path_structure(["T", "T", "F"])          # T -R-> T -R-> F
    >>> sorted(q.nodes)
    ['v0', 'v1', 'v2']
    """
    label_lists: list[tuple[str, ...]] = []
    for item in labels:
        if isinstance(item, str):
            label_lists.append((item,) if item else ())
        else:
            label_lists.append(tuple(item))
    n = len(label_lists)
    pred_list = list(preds) if preds is not None else [R] * max(n - 1, 0)
    if len(pred_list) != max(n - 1, 0):
        raise ValueError("need exactly len(labels) - 1 edge predicates")
    builder = StructureBuilder()
    names = [f"{prefix}{i}" for i in range(n)]
    for name, labs in zip(names, label_lists):
        builder.add_node(name, *labs)
    for i, pred in enumerate(pred_list):
        builder.add_edge(names[i], names[i + 1], pred)
    return builder.build()
