"""Labelled-digraph structures: the common substrate for CQs and data.

The paper works with conjunctive queries and data instances over unary
predicates (``F``, ``T``, ``A``, plus auxiliary labels used by the
Theorem 3 gadgets) and arbitrary binary predicates.  Both are finite
relational structures, which we represent uniformly as labelled digraphs:

* nodes (query variables or data constants),
* unary facts ``label(node)``,
* binary facts ``pred(src, dst)``.

A :class:`Structure` is immutable once frozen; builders use
:class:`StructureBuilder`.  Conjunctive queries are structures whose nodes
are read as existentially quantified variables; data instances are
structures whose nodes are read as constants.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping

Node = Hashable

# Unary predicate names with fixed meaning throughout the library.
F = "F"
T = "T"
A = "A"

# Default binary predicate used by most of the paper's example queries.
R = "R"
S = "S"


@dataclass(frozen=True)
class UnaryFact:
    """A unary atom ``label(node)``."""

    label: str
    node: Node

    def rename(self, mapping: Mapping[Node, Node]) -> "UnaryFact":
        return UnaryFact(self.label, mapping.get(self.node, self.node))


@dataclass(frozen=True)
class BinaryFact:
    """A binary atom ``pred(src, dst)``."""

    pred: str
    src: Node
    dst: Node

    def rename(self, mapping: Mapping[Node, Node]) -> "BinaryFact":
        return BinaryFact(
            self.pred,
            mapping.get(self.src, self.src),
            mapping.get(self.dst, self.dst),
        )


class Structure:
    """An immutable finite structure over unary and binary predicates.

    Provides the indexed views needed by the homomorphism engine:
    labels per node, outgoing/incoming edges per node, and nodes per label.
    """

    __slots__ = (
        "_nodes",
        "_unary",
        "_binary",
        "_labels_by_node",
        "_nodes_by_label",
        "_out",
        "_in",
        "_hash",
    )

    def __init__(
        self,
        nodes: Iterable[Node] = (),
        unary: Iterable[UnaryFact] = (),
        binary: Iterable[BinaryFact] = (),
    ) -> None:
        unary = frozenset(unary)
        binary = frozenset(binary)
        explicit = set(nodes)
        for fact in unary:
            explicit.add(fact.node)
        for fact in binary:
            explicit.add(fact.src)
            explicit.add(fact.dst)
        self._nodes = frozenset(explicit)
        self._unary = unary
        self._binary = binary

        labels_by_node: dict[Node, set[str]] = {n: set() for n in self._nodes}
        nodes_by_label: dict[str, set[Node]] = {}
        for fact in unary:
            labels_by_node[fact.node].add(fact.label)
            nodes_by_label.setdefault(fact.label, set()).add(fact.node)
        out: dict[Node, list[BinaryFact]] = {n: [] for n in self._nodes}
        inc: dict[Node, list[BinaryFact]] = {n: [] for n in self._nodes}
        for fact in binary:
            out[fact.src].append(fact)
            inc[fact.dst].append(fact)
        self._labels_by_node = {
            n: frozenset(ls) for n, ls in labels_by_node.items()
        }
        self._nodes_by_label = {
            label: frozenset(ns) for label, ns in nodes_by_label.items()
        }
        self._out = {n: tuple(facts) for n, facts in out.items()}
        self._in = {n: tuple(facts) for n, facts in inc.items()}
        self._hash = hash((self._nodes, self._unary, self._binary))

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> frozenset[Node]:
        return self._nodes

    @property
    def unary_facts(self) -> frozenset[UnaryFact]:
        return self._unary

    @property
    def binary_facts(self) -> frozenset[BinaryFact]:
        return self._binary

    def labels(self, node: Node) -> frozenset[str]:
        """All unary labels on ``node``."""
        return self._labels_by_node.get(node, frozenset())

    def has_label(self, node: Node, label: str) -> bool:
        return label in self.labels(node)

    def nodes_with_label(self, label: str) -> frozenset[Node]:
        return self._nodes_by_label.get(label, frozenset())

    def out_edges(self, node: Node) -> tuple[BinaryFact, ...]:
        return self._out.get(node, ())

    def in_edges(self, node: Node) -> tuple[BinaryFact, ...]:
        return self._in.get(node, ())

    def successors(self, node: Node) -> Iterator[Node]:
        for fact in self.out_edges(node):
            yield fact.dst

    def predecessors(self, node: Node) -> Iterator[Node]:
        for fact in self.in_edges(node):
            yield fact.src

    def degree(self, node: Node) -> int:
        return len(self.out_edges(node)) + len(self.in_edges(node))

    @property
    def unary_predicates(self) -> frozenset[str]:
        return frozenset(self._nodes_by_label)

    @property
    def binary_predicates(self) -> frozenset[str]:
        return frozenset(fact.pred for fact in self._binary)

    def __len__(self) -> int:
        return len(self._nodes)

    def size(self) -> int:
        """Total number of facts (atoms) in the structure."""
        return len(self._unary) + len(self._binary)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self._nodes == other._nodes
            and self._unary == other._unary
            and self._binary == other._binary
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return (
            f"Structure(|nodes|={len(self._nodes)}, "
            f"|unary|={len(self._unary)}, |binary|={len(self._binary)})"
        )

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------

    def rename(self, mapping: Mapping[Node, Node]) -> "Structure":
        """A copy with nodes renamed; identity outside ``mapping``.

        The mapping may be non-injective, in which case nodes are merged
        (glued), as in the budding operation.
        """
        return Structure(
            (mapping.get(n, n) for n in self._nodes),
            (f.rename(mapping) for f in self._unary),
            (f.rename(mapping) for f in self._binary),
        )

    def relabel_node(
        self,
        node: Node,
        remove: Iterable[str] = (),
        add: Iterable[str] = (),
    ) -> "Structure":
        """A copy with some unary labels on ``node`` removed/added."""
        remove = set(remove)
        unary = {
            f
            for f in self._unary
            if not (f.node == node and f.label in remove)
        }
        unary.update(UnaryFact(label, node) for label in add)
        return Structure(self._nodes, unary, self._binary)

    def union(self, other: "Structure") -> "Structure":
        """Disjoint-or-not union: facts of both structures together.

        Nodes with equal names are identified, which is how gluing is
        expressed throughout the library (rename first for disjointness).
        """
        return Structure(
            self._nodes | other._nodes,
            self._unary | other._unary,
            self._binary | other._binary,
        )

    def restrict(self, keep: Iterable[Node]) -> "Structure":
        """The induced substructure on the node set ``keep``."""
        keep = set(keep)
        return Structure(
            keep & self._nodes,
            (f for f in self._unary if f.node in keep),
            (
                f
                for f in self._binary
                if f.src in keep and f.dst in keep
            ),
        )

    def without_nodes(self, drop: Iterable[Node]) -> "Structure":
        drop = set(drop)
        return self.restrict(self._nodes - drop)

    def with_fresh_nodes(self, prefix: str) -> tuple["Structure", dict[Node, Node]]:
        """A disjoint copy whose nodes are ``(prefix, original)`` pairs."""
        mapping: dict[Node, Node] = {n: (prefix, n) for n in self._nodes}
        return self.rename(mapping), mapping

    # ------------------------------------------------------------------
    # Graph-theoretic helpers
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """Weak connectivity of the underlying graph."""
        if not self._nodes:
            return True
        seen: set[Node] = set()
        stack = [next(iter(self._nodes))]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.successors(node))
            stack.extend(self.predecessors(node))
        return seen == self._nodes

    def weak_components(self) -> list[frozenset[Node]]:
        remaining = set(self._nodes)
        components: list[frozenset[Node]] = []
        while remaining:
            seed = next(iter(remaining))
            seen: set[Node] = set()
            stack = [seed]
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(self.successors(node))
                stack.extend(self.predecessors(node))
            components.append(frozenset(seen))
            remaining -= seen
        return components

    def is_dag(self) -> bool:
        """True if the binary-edge digraph has no directed cycle."""
        indeg = {n: 0 for n in self._nodes}
        for fact in self._binary:
            indeg[fact.dst] += 1
        queue = [n for n, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            node = queue.pop()
            seen += 1
            for fact in self.out_edges(node):
                indeg[fact.dst] -= 1
                if indeg[fact.dst] == 0:
                    queue.append(fact.dst)
        return seen == len(self._nodes)

    def is_ditree(self) -> bool:
        """True if the digraph is a rooted directed tree.

        Exactly one node of in-degree 0, every other node of in-degree 1,
        connected, and no parallel edges collapsing (multi-edges between
        the same pair with different predicates disqualify tree shape).
        """
        if not self._nodes:
            return False
        roots = [n for n in self._nodes if not self._in.get(n)]
        if len(roots) != 1:
            return False
        for node in self._nodes:
            if node == roots[0]:
                continue
            if len(self._in.get(node, ())) != 1:
                return False
        return self.is_connected()

    def ditree_root(self) -> Node:
        """The unique in-degree-0 node of a ditree (raises otherwise)."""
        roots = [n for n in self._nodes if not self._in.get(n)]
        if len(roots) != 1:
            raise ValueError("structure is not a rooted ditree")
        return roots[0]

    # ------------------------------------------------------------------
    # Pretty printing
    # ------------------------------------------------------------------

    def describe(self) -> str:
        """A stable human-readable listing of all facts."""
        lines = []
        for fact in sorted(self._unary, key=lambda f: (str(f.node), f.label)):
            lines.append(f"{fact.label}({fact.node})")
        for fact in sorted(
            self._binary, key=lambda f: (str(f.src), f.pred, str(f.dst))
        ):
            lines.append(f"{fact.pred}({fact.src}, {fact.dst})")
        return "\n".join(lines)


@dataclass
class StructureBuilder:
    """Mutable accumulator for constructing a :class:`Structure`."""

    nodes: set[Node] = field(default_factory=set)
    unary: set[UnaryFact] = field(default_factory=set)
    binary: set[BinaryFact] = field(default_factory=set)
    _fresh_counter: itertools.count = field(default_factory=itertools.count)

    def add_node(self, node: Node, *labels: str) -> Node:
        self.nodes.add(node)
        for label in labels:
            self.unary.add(UnaryFact(label, node))
        return node

    def fresh_node(self, *labels: str, hint: str = "n") -> Node:
        node = f"{hint}#{next(self._fresh_counter)}"
        while node in self.nodes:
            node = f"{hint}#{next(self._fresh_counter)}"
        return self.add_node(node, *labels)

    def add_label(self, node: Node, *labels: str) -> None:
        self.nodes.add(node)
        for label in labels:
            self.unary.add(UnaryFact(label, node))

    def add_edge(self, src: Node, dst: Node, pred: str = R) -> None:
        self.nodes.add(src)
        self.nodes.add(dst)
        self.binary.add(BinaryFact(pred, src, dst))

    def add_structure(self, other: Structure) -> None:
        self.nodes |= other.nodes
        self.unary |= other.unary_facts
        self.binary |= other.binary_facts

    def build(self) -> Structure:
        return Structure(self.nodes, self.unary, self.binary)


def path_structure(
    labels: Iterable[Iterable[str] | str],
    preds: Iterable[str] | None = None,
    prefix: str = "v",
) -> Structure:
    """An R-path (or mixed-predicate path) with the given node labels.

    ``labels`` lists per-node unary labels; a bare string means one label
    and the empty string means no label.  ``preds`` optionally gives the
    edge predicate per consecutive pair (defaults to all ``R``).

    >>> q = path_structure(["T", "T", "F"])          # T -R-> T -R-> F
    >>> sorted(q.nodes)
    ['v0', 'v1', 'v2']
    """
    label_lists: list[tuple[str, ...]] = []
    for item in labels:
        if isinstance(item, str):
            label_lists.append((item,) if item else ())
        else:
            label_lists.append(tuple(item))
    n = len(label_lists)
    pred_list = list(preds) if preds is not None else [R] * max(n - 1, 0)
    if len(pred_list) != max(n - 1, 0):
        raise ValueError("need exactly len(labels) - 1 edge predicates")
    builder = StructureBuilder()
    names = [f"{prefix}{i}" for i in range(n)]
    for name, labs in zip(names, label_lists):
        builder.add_node(name, *labs)
    for i, pred in enumerate(pred_list):
        builder.add_edge(names[i], names[i + 1], pred)
    return builder.build()
