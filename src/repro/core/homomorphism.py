"""Homomorphism engine for labelled-digraph structures.

A homomorphism ``h : Q -> D`` maps every node of ``Q`` to a node of ``D``
so that every unary fact ``L(x)`` of ``Q`` yields ``L(h(x))`` in ``D`` and
every binary fact ``P(x, y)`` yields ``P(h(x), h(y))``.

The engine is a backtracking search with:

* per-node candidate domains pre-filtered by unary labels and degrees,
* forward checking against already-assigned neighbours,
* a connectivity-aware variable order (most-constrained first within the
  frontier of assigned nodes), which is what makes cactus-sized targets
  tractable in practice,
* optional *seeds* (partial maps that must be extended), used for the
  paper's focused homomorphisms (``h(r) = r``) and for gadget triggering.

All entry points accept arbitrary :class:`~repro.core.structure.Structure`
values, so the same engine serves CQ evaluation, cactus-to-cactus maps,
and the blow-up checks of the Λ-CQ decider.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from .structure import Node, Structure

Seed = Mapping[Node, Node]


def _initial_domains(
    source: Structure,
    target: Structure,
    seed: Seed,
    restrict_image: frozenset[Node] | None,
) -> dict[Node, list[Node]] | None:
    """Label/degree-filtered candidate sets; ``None`` if some domain is empty."""
    domains: dict[Node, list[Node]] = {}
    target_nodes = (
        target.nodes if restrict_image is None else restrict_image
    )
    for node in source.nodes:
        if node in seed:
            image = seed[node]
            if image not in target.nodes:
                return None
            if not source.labels(node) <= target.labels(image):
                return None
            domains[node] = [image]
            continue
        required = source.labels(node)
        out_preds = {f.pred for f in source.out_edges(node)}
        in_preds = {f.pred for f in source.in_edges(node)}
        candidates = []
        for cand in target_nodes:
            if not required <= target.labels(cand):
                continue
            cand_out = {f.pred for f in target.out_edges(cand)}
            cand_in = {f.pred for f in target.in_edges(cand)}
            if not out_preds <= cand_out or not in_preds <= cand_in:
                continue
            candidates.append(cand)
        if not candidates:
            return None
        domains[node] = candidates
    return domains


def _consistent(
    source: Structure,
    target: Structure,
    assignment: dict[Node, Node],
    node: Node,
    image: Node,
) -> bool:
    """Check all source edges between ``node`` and assigned nodes."""
    for fact in source.out_edges(node):
        other = assignment.get(fact.dst)
        if fact.dst == node:
            other = image
        if other is None:
            continue
        if not any(
            e.pred == fact.pred and e.dst == other
            for e in target.out_edges(image)
        ):
            return False
    for fact in source.in_edges(node):
        other = assignment.get(fact.src)
        if fact.src == node:
            other = image
        if other is None:
            continue
        if not any(
            e.pred == fact.pred and e.src == other
            for e in target.in_edges(image)
        ):
            return False
    return True


def _order_nodes(
    source: Structure, domains: dict[Node, list[Node]], seed: Seed
) -> list[Node]:
    """Connectivity-aware static order: seeded nodes first, then BFS by
    ascending domain size, component by component."""
    order: list[Node] = [n for n in source.nodes if n in seed]
    placed = set(order)
    remaining = set(source.nodes) - placed

    def neighbours(node: Node) -> Iterator[Node]:
        yield from source.successors(node)
        yield from source.predecessors(node)

    while remaining:
        frontier = {
            n
            for n in remaining
            if any(m in placed for m in neighbours(n))
        }
        if not frontier:
            frontier = remaining
        best = min(frontier, key=lambda n: (len(domains[n]), str(n)))
        order.append(best)
        placed.add(best)
        remaining.remove(best)
    return order


def iter_homomorphisms(
    source: Structure,
    target: Structure,
    seed: Seed | None = None,
    restrict_image: frozenset[Node] | None = None,
    node_filter: Callable[[Node, Node], bool] | None = None,
) -> Iterator[dict[Node, Node]]:
    """Yield all homomorphisms from ``source`` to ``target``.

    ``seed`` fixes images for some source nodes.  ``restrict_image``
    limits candidate images of non-seeded nodes.  ``node_filter(x, v)``
    may veto mapping source node ``x`` to target node ``v``.
    """
    seed = dict(seed or {})
    domains = _initial_domains(source, target, seed, restrict_image)
    if domains is None:
        return
    if node_filter is not None:
        for node, cands in domains.items():
            filtered = [v for v in cands if node_filter(node, v)]
            if not filtered:
                return
            domains[node] = filtered
    order = _order_nodes(source, domains, seed)
    assignment: dict[Node, Node] = {}

    def backtrack(index: int) -> Iterator[dict[Node, Node]]:
        if index == len(order):
            yield dict(assignment)
            return
        node = order[index]
        for image in domains[node]:
            if _consistent(source, target, assignment, node, image):
                assignment[node] = image
                yield from backtrack(index + 1)
                del assignment[node]

    yield from backtrack(0)


def find_homomorphism(
    source: Structure,
    target: Structure,
    seed: Seed | None = None,
    restrict_image: frozenset[Node] | None = None,
    node_filter: Callable[[Node, Node], bool] | None = None,
) -> dict[Node, Node] | None:
    """The first homomorphism found, or ``None``."""
    for hom in iter_homomorphisms(
        source, target, seed, restrict_image, node_filter
    ):
        return hom
    return None


def has_homomorphism(
    source: Structure,
    target: Structure,
    seed: Seed | None = None,
    restrict_image: frozenset[Node] | None = None,
    node_filter: Callable[[Node, Node], bool] | None = None,
) -> bool:
    return (
        find_homomorphism(source, target, seed, restrict_image, node_filter)
        is not None
    )


def is_homomorphism(
    source: Structure, target: Structure, mapping: Mapping[Node, Node]
) -> bool:
    """Verify that ``mapping`` is a homomorphism (total on source nodes)."""
    for node in source.nodes:
        if node not in mapping:
            return False
        if mapping[node] not in target.nodes:
            return False
        if not source.labels(node) <= target.labels(mapping[node]):
            return False
    for fact in source.binary_facts:
        src, dst = mapping[fact.src], mapping[fact.dst]
        if not any(
            e.pred == fact.pred and e.dst == dst
            for e in target.out_edges(src)
        ):
            return False
    return True


def compose(
    first: Mapping[Node, Node], second: Mapping[Node, Node]
) -> dict[Node, Node]:
    """``second after first``: the map ``x -> second[first[x]]``."""
    return {x: second[y] for x, y in first.items()}


def is_core(structure: Structure) -> bool:
    """True iff every endomorphism of ``structure`` is surjective.

    Equivalently, there is no homomorphism into a proper substructure.
    Used for the minimality condition on CQs in Section 4 of the paper.
    """
    for node in structure.nodes:
        candidate = structure.without_nodes([node])
        if has_homomorphism(structure, candidate):
            return False
    return True


def retract_to_subset(
    structure: Structure, keep: frozenset[Node]
) -> dict[Node, Node] | None:
    """A homomorphism of ``structure`` into the substructure on ``keep``
    fixing ``keep`` pointwise, if one exists (a retraction witness)."""
    seed = {n: n for n in keep if n in structure.nodes}
    return find_homomorphism(
        structure, structure.restrict(keep), seed=seed
    )
