"""Homomorphism API for labelled-digraph structures.

A homomorphism ``h : Q -> D`` maps every node of ``Q`` to a node of ``D``
so that every unary fact ``L(x)`` of ``Q`` yields ``L(h(x))`` in ``D`` and
every binary fact ``P(x, y)`` yields ``P(h(x), h(y))``.

This module is the stable call surface; the search itself lives in
:mod:`repro.core.homengine`, which provides pluggable backends —
``naive`` (the original backtracker, kept as a correctness oracle),
``bitset`` (integer-interned domains as Python-int bitsets with AC-3
preprocessing, forward checking against precomputed adjacency masks, and
dynamic most-constrained-variable ordering; the default), ``matrix``
(the dense numpy variant) and ``auto`` (per-target selection) — plus a
per-session LRU hom-cache keyed on structure fingerprints and the batch
entry points :func:`~repro.core.homengine.covers_any` and
:func:`~repro.core.homengine.evaluate_batch`.  Every entry point takes
``session=`` to run inside an explicit
:class:`~repro.session.Session`; without it the default session is
used.

All entry points accept arbitrary :class:`~repro.core.structure.Structure`
values, so the same engine serves CQ evaluation, cactus-to-cactus maps,
and the blow-up checks of the Λ-CQ decider.  They support:

* optional *seeds* (partial maps that must be extended), used for the
  paper's focused homomorphisms (``h(r) = r``) and gadget triggering,
* ``restrict_image`` / ``forbid`` / per-node ``node_domains`` image
  constraints (declarative, cache-friendly), and
* an opaque ``node_filter(x, v)`` veto callable (never cached).
"""

from __future__ import annotations

from typing import Mapping

from .homengine import (
    Seed,
    covers_any,
    evaluate_batch,
    find_homomorphism,
    has_homomorphism,
    iter_homomorphisms,
)
from .structure import Node, Structure

__all__ = [
    "Seed",
    "compose",
    "covers_any",
    "evaluate_batch",
    "find_homomorphism",
    "has_homomorphism",
    "is_core",
    "is_homomorphism",
    "iter_homomorphisms",
    "retract_to_subset",
]


def is_homomorphism(
    source: Structure, target: Structure, mapping: Mapping[Node, Node]
) -> bool:
    """Verify that ``mapping`` is a homomorphism (total on source nodes)."""
    for node in source.nodes:
        if node not in mapping:
            return False
        if mapping[node] not in target.nodes:
            return False
        if not source.labels(node) <= target.labels(mapping[node]):
            return False
    for fact in source.binary_facts:
        src, dst = mapping[fact.src], mapping[fact.dst]
        if dst not in target.out_by_pred(src).get(fact.pred, frozenset()):
            return False
    return True


def compose(
    first: Mapping[Node, Node], second: Mapping[Node, Node]
) -> dict[Node, Node]:
    """``second after first``: the map ``x -> second[first[x]]``."""
    return {x: second[y] for x, y in first.items()}


def is_core(structure: Structure) -> bool:
    """True iff every endomorphism of ``structure`` is surjective.

    Equivalently, there is no homomorphism into a proper substructure.
    Used for the minimality condition on CQs in Section 4 of the paper.

    A node ``n`` can only be dropped by a retraction if some *other* node
    dominates its label and incident-predicate profile (the image of
    ``n`` must carry all of ``n``'s labels and partake in all of its edge
    predicates), so nodes with a unique profile are skipped without a
    search.  The remaining checks run against ``structure`` itself with
    ``n``'s image forbidden, sharing one set of target indexes across
    all candidate nodes instead of rebuilding a substructure per node.
    """
    nodes = structure.nodes
    profiles = {
        node: (
            structure.labels(node),
            structure.out_pred_set(node),
            structure.in_pred_set(node),
        )
        for node in nodes
    }
    for node in nodes:
        labels, out_preds, in_preds = profiles[node]
        if not any(
            other != node
            and labels <= profiles[other][0]
            and out_preds <= profiles[other][1]
            and in_preds <= profiles[other][2]
            for other in nodes
        ):
            continue  # unique profile: no endomorphism can drop this node
        # A hom into structure \ {node} is exactly a self-hom whose image
        # avoids node (the induced substructure carries the same facts).
        if has_homomorphism(structure, structure, forbid=frozenset({node})):
            return False
    return True


def retract_to_subset(
    structure: Structure, keep: frozenset[Node]
) -> dict[Node, Node] | None:
    """A homomorphism of ``structure`` into the substructure on ``keep``
    fixing ``keep`` pointwise, if one exists (a retraction witness)."""
    seed = {n: n for n in keep if n in structure.nodes}
    drop = structure.nodes - keep
    # Searching structure -> structure with the dropped nodes forbidden
    # is equivalent to searching into restrict(keep), but reuses the
    # already-built indexes of ``structure``.
    return find_homomorphism(
        structure, structure, seed=seed, forbid=frozenset(drop)
    )
