"""Compilation of 1-CQs into the paper's programs ``Π_q`` and ``Σ_q``.

For a 1-CQ ``q`` with solitary F node ``x`` and solitary T nodes
``y_1 .. y_n`` (Section 2, rules (5)-(7)):

* ``Π_q``:   ``G  <- F(x), q-, P(y_1), .., P(y_n)``
             ``P(x) <- T(x)``
             ``P(x) <- A(x), q-, P(y_1), .., P(y_n)``
* ``Σ_q``:   the last two rules only (the monadic *sirup* with goal P).

Here ``q-`` is ``q`` minus the atoms ``F(x), T(y_1), .., T(y_n)`` — the
twins keep both their labels.  ``A`` and ``P`` are fresh predicates.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cq import OneCQ
from .datalog import GOAL, Program, Rule
from .structure import A, F, Node, Structure, T, UnaryFact

P = "P"


def _q_minus(one_cq: OneCQ) -> Structure:
    """``q-``: drop F(x) and the solitary T atoms (twins keep F and T)."""
    dropped = {UnaryFact(F, one_cq.focus)}
    dropped |= {UnaryFact(T, y) for y in one_cq.solitary_ts}
    return Structure(
        one_cq.query.nodes,
        one_cq.query.unary_facts - dropped,
        one_cq.query.binary_facts,
    )


def goal_rule(one_cq: OneCQ) -> Rule:
    """Rule (5): ``G <- F(x), q-, P(y_1), .., P(y_n)``."""
    body = _q_minus(one_cq)
    extra = {UnaryFact(F, one_cq.focus)}
    extra |= {UnaryFact(P, y) for y in one_cq.solitary_ts}
    body = Structure(body.nodes, body.unary_facts | extra, body.binary_facts)
    return Rule(GOAL, None, body)


def base_rule() -> Rule:
    """Rule (6): ``P(x) <- T(x)``."""
    x: Node = "x"
    return Rule(P, x, Structure((x,), (UnaryFact(T, x),), ()))


def recursive_rule(one_cq: OneCQ) -> Rule:
    """Rule (7): ``P(x) <- A(x), q-, P(y_1), .., P(y_n)``."""
    body = _q_minus(one_cq)
    extra = {UnaryFact(A, one_cq.focus)}
    extra |= {UnaryFact(P, y) for y in one_cq.solitary_ts}
    body = Structure(body.nodes, body.unary_facts | extra, body.binary_facts)
    return Rule(P, one_cq.focus, body)


@dataclass(frozen=True)
class CompiledPrograms:
    """``Π_q`` and its sirup sub-program ``Σ_q`` for a 1-CQ ``q``."""

    one_cq: OneCQ
    pi: Program
    sigma: Program

    @property
    def goal(self) -> str:
        return GOAL

    @property
    def sirup_predicate(self) -> str:
        return P


def compile_programs(one_cq: OneCQ | Structure) -> CompiledPrograms:
    """Build ``Π_q`` and ``Σ_q`` from a 1-CQ."""
    if isinstance(one_cq, Structure):
        one_cq = OneCQ.from_structure(one_cq)
    g = goal_rule(one_cq)
    b = base_rule()
    r = recursive_rule(one_cq)
    return CompiledPrograms(
        one_cq=one_cq,
        pi=Program((g, b, r)),
        sigma=Program((b, r)),
    )
