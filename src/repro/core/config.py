"""Engine configuration: one frozen dataclass, one env-var ingestion point.

Everything tunable about the engine — hom backend, hom-cache, cactus
factory pool, structure intern table, shard executor — is described by
an immutable :class:`EngineConfig`.  A :class:`~repro.session.Session`
owns exactly one config plus the mutable state it parameterises; the
module-level default session is built from :meth:`EngineConfig.from_env`
on first use.

Precedence is ``env < config < per-call kwarg``:

* :meth:`EngineConfig.from_env` reads every ``REPRO_*`` variable — this
  module is the *single* place in the package where ``os.environ`` is
  consulted (enforced by a grep gate in ``make lint``), and the read
  happens at call time, never at import time, so a monkeypatched
  environment behaves consistently;
* explicit keyword arguments to :meth:`from_env` (or a plain
  ``EngineConfig(...)`` constructor call) override the environment;
* per-call keywords on the session/engine entry points (``backend=``,
  ``workers=``, ``use_cache=`` ...) override the config for that call.

Environment variables
=====================

``REPRO_HOM_BACKEND``
    Default hom-search backend: ``naive``, ``bitset`` (default),
    ``matrix``, ``decomp`` (tree-decomposition semijoin DP), or
    ``auto`` (route per call: ``decomp`` for tree-shaped queries on
    non-trivial targets, else ``matrix`` vs ``bitset`` from the
    target's size and edge density).
``REPRO_HOM_CACHE`` / ``REPRO_HOM_CACHE_SIZE``
    Enable (default) / size (8192) of the fingerprint-keyed hom-cache.
``REPRO_PROBE_WARMSTART``
    Enable (default) the boundedness probe's delta warm-started
    coverage checks; ``0`` restores the sharded batch path.
``REPRO_HOM_WORKERS`` / ``REPRO_HOM_PARALLEL_MIN``
    Shard-executor worker count (unset: CPU count; ``<= 1`` disables
    parallelism) and the batch size below which batch entry points
    stay serial (default 24).
``REPRO_HOM_WORKER_CACHE``
    Capacity of each worker process's wire-keyed structure cache
    (default 64 structures; ``0`` disables it).
``REPRO_CACTUS_FACTORIES`` / ``REPRO_CACTUS_CACHE_SIZE``
    Factory-pool capacity (32 queries) and per-factory cactus LRU size
    (20000 cactuses).
``REPRO_CACTUS_INTERN_SIZE``
    Capacity of the cross-factory structure intern table (4096).
``REPRO_DEADLINE_MS`` / ``REPRO_HOM_FUEL``
    Cooperative resource governance (unset: off).  ``deadline_ms`` is a
    wall-clock budget per governed operation; ``hom_fuel`` caps the
    number of coarse search steps (AC-3 edge revisions, backtracking
    candidates, semijoin tuples).  When either is set, governed
    surfaces return tri-state :class:`~repro.core.errors.Answer`
    results instead of hanging on hostile inputs.
``REPRO_CACTUS_MAX_NODES``
    Hard cap on the node count of any single cactus the factory will
    materialise (unset: unlimited); raises
    :class:`~repro.core.errors.CactusBudgetExceeded` past it.
``REPRO_SHARD_TIMEOUT_MS``
    Per-shard wall-clock timeout in the pool runtime (unset: none).  A
    shard that exceeds it is treated as a worker failure: requeued once
    on a rebuilt pool, then quarantined to in-parent serial execution.
``REPRO_POOL_COOLDOWN_MS``
    How long a pool that failed repeatedly stays quarantined before the
    next large batch probes it again (default 5000); replaces the old
    permanently-broken behaviour.
``REPRO_CACHE_DIR``
    Directory for the durable store (:mod:`repro.core.store`): hom
    answers, semiring evaluations, decomp plans and screen/probe
    checkpoints persist there across restarts and are shared by pool
    workers.  Unset or empty (the default): no disk tier, memory LRUs
    only.
``REPRO_CACHE_BYTES``
    Byte cap on the durable store file (default 256 MiB); past it the
    oldest entries are evicted FIFO.  ``0`` means uncapped.
``REPRO_DURABILITY``
    ``best-effort`` (default): a missing, full, read-only or corrupt
    store degrades/quarantines silently and the engine recomputes.
    ``strict``: the same conditions raise
    :class:`~repro.core.errors.StoreCorruption` instead.
``REPRO_DURABLE_CHECKPOINTS``
    Enable (default) checkpoint/resume for ``Session.screen`` and the
    boundedness probe when a durable store is attached; ``0`` keeps
    the store as a pure cache tier with no checkpoint rows.
``REPRO_SERVICE_HOST`` / ``REPRO_SERVICE_PORT``
    Bind address of the job service (:mod:`repro.service`); default
    ``127.0.0.1:8765``.  Port ``0`` binds an ephemeral port (printed
    by ``repro serve`` on startup).
``REPRO_SERVICE_TENANTS``
    Capacity of the service's tenant -> :class:`~repro.session.Session`
    LRU (default 8); the least recently used tenant session is closed
    on eviction.
``REPRO_SERVICE_THREADS``
    Worker threads of the service's job executor (default 4) — the
    bound on jobs *running* concurrently across all tenants.
``REPRO_SERVICE_QUEUE_DEPTH``
    Admission cap on jobs queued or running (default 64); a submit
    past it is rejected (HTTP 429), the service analogue of the pool
    runtime's serial degradation.
``REPRO_SERVICE_TENANT_JOBS``
    Per-tenant concurrency cap (default 2): a tenant with that many
    jobs running has further jobs *queued* (not rejected) until one
    finishes.
``REPRO_SERVICE_RETRY_MAX``
    How many execution attempts a job gets before the manager
    quarantines it to a terminal FAILED state (default 3).  Transient
    failures — a pool worker crash, a best-effort store hiccup —
    re-enqueue the job with exponential backoff until this cap; a
    poison job that fails every attempt settles as
    ``FAILED(quarantined after N attempts)`` instead of re-queueing
    forever.
``REPRO_SERVICE_RETRY_BACKOFF_MS``
    Base of the retry backoff (default 100): attempt ``k`` waits
    ``backoff * 2^(k-1)`` milliseconds, jittered, capped at 30 s.
``REPRO_SERVICE_LEASE_TTL_MS``
    TTL of the ownership lease a running job holds in the durable
    store's ``lease:v1`` namespace (default 10000).  A heartbeat
    renews it at TTL/3 while the executor thread makes progress;
    ``recover()`` only takes over jobs whose lease has expired, so a
    record that says "running" under a live lease is left to its
    owner, and a stuck thread is detected by its lease lapsing.
``REPRO_SERVICE_DRAIN_MS``
    Graceful-drain deadline (default 10000): on SIGTERM the server
    stops admission (503 + ``Retry-After``), lets running jobs
    checkpoint and settle for up to this long, persists whatever is
    still in flight as re-queueable, then exits.
``REPRO_FAULT_PLAN``
    Test-only fault injection, ``mode:ordinal[,mode:ordinal...]``
    (e.g. ``kill:0,jobfail:2``) — the environment form of
    ``EngineConfig.fault_plan`` so chaos harnesses can arm faults in a
    spawned ``repro serve`` process.  Malformed entries are ignored.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Mapping

BACKENDS = ("naive", "bitset", "matrix", "decomp")
#: Accepted values for ``EngineConfig.backend`` — the concrete backends
#: plus ``auto`` (resolved per call by :func:`choose_auto_backend`).
BACKEND_CHOICES = BACKENDS + ("auto",)

_FALSY = ("0", "off", "false", "no")

#: Accepted values for ``EngineConfig.durability`` (see
#: :mod:`repro.core.store` for the contract each implies).
DURABILITY_CHOICES = ("best-effort", "strict")

#: Accepted fault-injection modes (``EngineConfig.fault_plan``):
#: worker-process faults plus the service tier's ``jobfail``.
FAULT_MODES = ("crash", "hang", "corrupt", "kill", "jobfail")

# Calibration of the auto heuristic, from the committed BENCH_batch.json
# backend duel: the ``matrix`` backend's boolean-semiring matvecs win
# >=2x on targets with n >= 200 nodes at edge density (edges/node) >= 4
# and keep winning down the measured grid, while ``bitset``'s
# label-pruned int domains win on the small structures of the paper's
# examples.  The thresholds sit below the measured win region (half of
# the smallest measured n, half its density) so the crossover lands in
# matrix territory without claiming wins the bench never measured.
AUTO_MIN_NODES = 100
AUTO_MIN_EDGES_PER_NODE = 2.0

# Routing on *query shape*, from the committed BENCH_decomp.json duel:
# for forest-shaped queries (decomposition width <= 1) the ``decomp``
# backend's single directional-semijoin pass beats both backtracking
# backends on every measured large target *except* the dense-and-numpy
# corner (edge density >= ~6 per node, where the matrix backend's C
# matvecs win the satisfiable cases) — so width-1 queries route to
# ``decomp`` whenever the target clears the size floor and is not in
# matrix's dense home turf; higher-width queries keep the bitset/matrix
# crossover.  The density boundary sits between the measured decomp win
# at 3 edges/node and the measured matrix win at 6.
AUTO_DECOMP_MAX_WIDTH = 1
AUTO_DECOMP_MIN_NODES = 100
AUTO_DECOMP_MAX_EDGES_PER_NODE = 4.0


def choose_auto_backend(
    nodes: int,
    edges: int,
    matrix_available: bool = True,
    query_width: int | None = None,
) -> str:
    """The concrete backend ``backend="auto"`` resolves to for a target
    with the given node and binary-fact counts.

    ``query_width`` is the query's cached tree-decomposition width
    (:func:`repro.core.decomp.query_width`) when the caller knows the
    source: tree-shaped queries (width <= 1) route to the poly-time
    ``decomp`` DP on large targets outside the dense-numpy corner,
    while high-width queries keep the bitset/matrix crossover.  Pure
    and deterministic so tests can pin the heuristic on both sides of
    every threshold; the live path feeds it the target structure's
    counts, numpy availability and the source's cached width.
    """
    if (
        query_width is not None
        and query_width <= AUTO_DECOMP_MAX_WIDTH
        and nodes >= AUTO_DECOMP_MIN_NODES
        and (
            not matrix_available
            or edges < AUTO_DECOMP_MAX_EDGES_PER_NODE * nodes
        )
    ):
        return "decomp"
    if (
        matrix_available
        and nodes >= AUTO_MIN_NODES
        and edges >= AUTO_MIN_EDGES_PER_NODE * nodes
    ):
        return "matrix"
    return "bitset"


def _env_bool(env: dict, name: str, default: bool) -> bool:
    raw = env.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def _env_int(env: dict, name: str, default: int) -> int:
    raw = env.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


def _env_fault_plan(env: dict, name: str, default: tuple) -> tuple:
    """Parse ``mode:ordinal,mode:ordinal`` into a fault plan; entries
    that fail to parse (or name an unknown mode) are dropped rather
    than crashing the server they were meant to test."""
    raw = env.get(name)
    if raw is None:
        return default
    plan = []
    for part in raw.split(","):
        mode, _, when = part.strip().partition(":")
        try:
            ordinal = int(when)
        except ValueError:
            continue
        if mode in FAULT_MODES and ordinal >= 0:
            plan.append((mode, ordinal))
    return tuple(plan)


@dataclass(frozen=True)
class EngineConfig:
    """Frozen description of one engine instance's tunables.

    Field defaults are the engine's hardcoded defaults; the environment
    only enters through :meth:`from_env`.  Use :meth:`replace` (or
    ``dataclasses.replace``) to derive variants.
    """

    # hom engine
    backend: str = "bitset"
    hom_cache: bool = True
    hom_cache_size: int = 8192
    # Delta warm-start of the boundedness probe's coverage checks
    # (repro.core.decomp.ProbeCoverage).  Disabling it restores the
    # sharded parallel_covers_any path for every coverage batch.
    probe_warmstart: bool = True
    # shard runtime.  ``workers=None`` (the default) means the
    # machine's CPU count; an explicit value <= 1 — constructor, env or
    # CLI — disables parallelism, exactly as it always has.
    workers: int | None = None
    parallel_min: int = 24
    worker_cache_size: int = 64
    # cactus engine
    factory_pool_size: int = 32
    cactus_cache_size: int = 20000
    structure_intern_size: int = 4096
    # resource governance (None = ungoverned: no deadline, no fuel cap,
    # unbounded cactuses — the historical behaviour, and the default)
    deadline_ms: int | None = None
    hom_fuel: int | None = None
    cactus_max_nodes: int | None = None
    # pool resilience.  shard_timeout_ms=None means shards may run
    # unboundedly (a hung worker is then only caught by the deadline);
    # pool_cooldown_ms is how long a repeatedly-failing pool stays
    # quarantined before it is probed again.
    shard_timeout_ms: int | None = None
    pool_cooldown_ms: int = 5000
    # durable state tier (repro.core.store).  cache_dir=None (the
    # default) disables the disk tier entirely; durable_checkpoints
    # additionally gates the screen/probe checkpoint rows, keeping the
    # store a pure cache when off.
    cache_dir: str | None = None
    cache_bytes: int = 256 * 1024 * 1024
    durability: str = "best-effort"
    durable_checkpoints: bool = True
    # Job service (repro.service).  These knobs only matter to a
    # process running `repro serve` (or embedding ServiceServer);
    # library sessions ignore them, so they ride along in the frozen
    # config and ship unchanged to any worker.
    service_host: str = "127.0.0.1"
    service_port: int = 8765
    service_tenants: int = 8
    service_threads: int = 4
    service_queue_depth: int = 64
    service_tenant_jobs: int = 2
    # Service supervision (PR 10): bounded retry + poison quarantine,
    # lease-based job ownership, graceful drain.  See the matching
    # REPRO_* entries in the module docstring.
    service_retry_max: int = 3
    service_retry_backoff_ms: int = 100
    service_lease_ttl_ms: int = 10000
    service_drain_ms: int = 10000
    # Test-only fault injection: ((mode, ordinal), ...) with mode in
    # {"crash", "hang", "corrupt", "kill", "jobfail"}.  The first four
    # fire inside pool worker processes (runtime._worker_session) at
    # the ordinal-th chunk task; "jobfail" fires inside the service's
    # JobManager at the ordinal-th job execution (a deterministic
    # transient WorkerFailure, for exercising the retry/quarantine
    # ladder).  Empty in production.  "kill" is SIGKILL (uncatchable,
    # unlike "crash"'s os._exit), for proving checkpoint durability.
    fault_plan: tuple = ()

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_CHOICES:
            raise ValueError(
                f"backend must be one of {BACKEND_CHOICES}, "
                f"got {self.backend!r}"
            )
        for name in (
            "hom_cache_size",
            "parallel_min",
            "worker_cache_size",
            "factory_pool_size",
            "cactus_cache_size",
            "structure_intern_size",
            "pool_cooldown_ms",
            "cache_bytes",
            "service_port",
            "service_queue_depth",
            "service_retry_backoff_ms",
            "service_drain_ms",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in (
            "service_tenants",
            "service_threads",
            "service_tenant_jobs",
            "service_retry_max",
            "service_lease_ttl_ms",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.durability not in DURABILITY_CHOICES:
            raise ValueError(
                f"durability must be one of {DURABILITY_CHOICES}, "
                f"got {self.durability!r}"
            )
        for name in (
            "deadline_ms",
            "hom_fuel",
            "cactus_max_nodes",
            "shard_timeout_ms",
        ):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive (or None)")
        for entry in self.fault_plan:
            mode, when = entry  # ValueError on malformed entries
            if mode not in FAULT_MODES or when < 0:
                raise ValueError(f"bad fault_plan entry {entry!r}")

    @property
    def governed(self) -> bool:
        """Whether governed surfaces should produce tri-state results
        (any of the deadline/fuel budgets is set)."""
        return self.deadline_ms is not None or self.hom_fuel is not None

    @classmethod
    def from_env(cls, environ: Mapping | None = None, **overrides):
        """Build a config from ``REPRO_*`` variables, then apply
        ``overrides`` on top (the ``env < config`` half of the
        precedence chain).

        ``environ`` defaults to ``os.environ`` and is read *now* — the
        one place in the package environment variables are ingested.
        An invalid ``REPRO_HOM_BACKEND`` raises immediately (a silently
        ignored backend typo would send every workload to the wrong
        search); malformed integers fall back to the field default.
        """
        env = dict(os.environ if environ is None else environ)
        defaults = cls()
        backend = env.get("REPRO_HOM_BACKEND", defaults.backend)
        if backend not in BACKEND_CHOICES:
            raise ValueError(
                f"REPRO_HOM_BACKEND must be one of {BACKEND_CHOICES}, "
                f"got {backend!r}"
            )
        durability = env.get("REPRO_DURABILITY", defaults.durability)
        if durability not in DURABILITY_CHOICES:
            raise ValueError(
                f"REPRO_DURABILITY must be one of {DURABILITY_CHOICES}, "
                f"got {durability!r}"
            )
        values = dict(
            backend=backend,
            hom_cache=_env_bool(env, "REPRO_HOM_CACHE", defaults.hom_cache),
            hom_cache_size=_env_int(
                env, "REPRO_HOM_CACHE_SIZE", defaults.hom_cache_size
            ),
            probe_warmstart=_env_bool(
                env, "REPRO_PROBE_WARMSTART", defaults.probe_warmstart
            ),
            workers=_env_int(env, "REPRO_HOM_WORKERS", defaults.workers),
            parallel_min=_env_int(
                env, "REPRO_HOM_PARALLEL_MIN", defaults.parallel_min
            ),
            worker_cache_size=_env_int(
                env, "REPRO_HOM_WORKER_CACHE", defaults.worker_cache_size
            ),
            factory_pool_size=_env_int(
                env, "REPRO_CACTUS_FACTORIES", defaults.factory_pool_size
            ),
            cactus_cache_size=_env_int(
                env, "REPRO_CACTUS_CACHE_SIZE", defaults.cactus_cache_size
            ),
            structure_intern_size=_env_int(
                env, "REPRO_CACTUS_INTERN_SIZE", defaults.structure_intern_size
            ),
            deadline_ms=_env_int(
                env, "REPRO_DEADLINE_MS", defaults.deadline_ms
            ),
            hom_fuel=_env_int(env, "REPRO_HOM_FUEL", defaults.hom_fuel),
            cactus_max_nodes=_env_int(
                env, "REPRO_CACTUS_MAX_NODES", defaults.cactus_max_nodes
            ),
            shard_timeout_ms=_env_int(
                env, "REPRO_SHARD_TIMEOUT_MS", defaults.shard_timeout_ms
            ),
            pool_cooldown_ms=_env_int(
                env, "REPRO_POOL_COOLDOWN_MS", defaults.pool_cooldown_ms
            ),
            cache_dir=env.get("REPRO_CACHE_DIR") or defaults.cache_dir,
            cache_bytes=_env_int(
                env, "REPRO_CACHE_BYTES", defaults.cache_bytes
            ),
            durability=durability,
            durable_checkpoints=_env_bool(
                env, "REPRO_DURABLE_CHECKPOINTS", defaults.durable_checkpoints
            ),
            service_host=env.get("REPRO_SERVICE_HOST", defaults.service_host),
            service_port=_env_int(
                env, "REPRO_SERVICE_PORT", defaults.service_port
            ),
            service_tenants=_env_int(
                env, "REPRO_SERVICE_TENANTS", defaults.service_tenants
            ),
            service_threads=_env_int(
                env, "REPRO_SERVICE_THREADS", defaults.service_threads
            ),
            service_queue_depth=_env_int(
                env, "REPRO_SERVICE_QUEUE_DEPTH", defaults.service_queue_depth
            ),
            service_tenant_jobs=_env_int(
                env, "REPRO_SERVICE_TENANT_JOBS", defaults.service_tenant_jobs
            ),
            service_retry_max=_env_int(
                env, "REPRO_SERVICE_RETRY_MAX", defaults.service_retry_max
            ),
            service_retry_backoff_ms=_env_int(
                env,
                "REPRO_SERVICE_RETRY_BACKOFF_MS",
                defaults.service_retry_backoff_ms,
            ),
            service_lease_ttl_ms=_env_int(
                env,
                "REPRO_SERVICE_LEASE_TTL_MS",
                defaults.service_lease_ttl_ms,
            ),
            service_drain_ms=_env_int(
                env, "REPRO_SERVICE_DRAIN_MS", defaults.service_drain_ms
            ),
            fault_plan=_env_fault_plan(
                env, "REPRO_FAULT_PLAN", defaults.fault_plan
            ),
        )
        values.update(overrides)
        return cls(**values)

    def replace(self, **changes) -> "EngineConfig":
        """A copy with the given fields changed (validation re-runs)."""
        return replace(self, **changes)

    def effective_workers(self) -> int:
        """The worker count with the ``None = CPU count`` default
        resolved.  Explicit values pass through untouched, so ``0`` /
        ``1`` / negatives disable parallelism downstream."""
        if self.workers is None:
            return os.cpu_count() or 1
        return self.workers

    def describe(self) -> str:
        """One ``field=value`` line per knob, for ``repro config``."""
        lines = [
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        ]
        lines.append(f"effective_workers={self.effective_workers()!r}")
        return "\n".join(lines)
