"""Cactuses: the Q-expansions of ``(Π_q, G)`` (Section 2 of the paper).

Starting from ``C_G = {q}``, the (bud) rule replaces a solitary atom
``T(y)`` in a cactus by a fresh copy of ``A(x), q-, T(y_1), .., T(y_n)``
with ``x`` renamed to ``y``.  The resulting set ``𝔎_q`` of cactuses
characterises certain answers (Proposition 1) and boundedness
(Proposition 2).

A cactus is represented by

* its materialised :class:`~repro.core.structure.Structure` (nodes are
  ``(path, variable)`` pairs, where ``path`` is the tuple of bud indices
  from the root to the segment, glued at buds),
* a skeleton: the ditree of segments with bud labels, and
* per-segment variable maps back into the 1-CQ.

Cactus *shapes* — the skeleton trees annotated with which solitary T
indices were budded — enumerate ``𝔎_q`` canonically (one cactus per
shape), so enumeration never produces duplicates.

Construction is *incremental*: a :class:`CactusFactory` (one per 1-CQ,
pooled per session in a :class:`CactusState`) interns one frozen copy
of every segment fact set
and variable map per skeleton path, memoises every cactus it has ever
materialised by shape, and builds a depth-``d`` cactus by extending the
cached depth-``d-1`` prefix with only the new generation of segments —
a copy-on-write :meth:`~repro.core.structure.Structure.extended` delta
(drop the budded ``T`` facts, union in the interned leaf segments) that
also transfers the parent's engine indexes and fingerprint.  Path-based
node naming makes this sound: a segment keeps the same nodes in every
cactus that contains it, so a prefix's structure is literally a
substructure of every extension.  The same delta derives ``C°``
(:meth:`Cactus.sigma_structure`) from the parent's ``C°``, and a
per-session intern table shares one structure object per (query
content, shape) *across* factory instances, so a fresh factory for a
content-equal query reuses every structure — and every built index —
an earlier factory materialised.  The pre-engine from-scratch builder
survives as :func:`build_cactus_from_scratch`, the correctness oracle
cross-validated in the tests and the baseline of
``scripts/bench_cactus.py``.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterator, Mapping

from .config import EngineConfig
from .cq import OneCQ
from .errors import CactusBudgetExceeded, call_budget
from .homomorphism import covers_any, find_homomorphism
from .structure import (
    A,
    BinaryFact,
    F,
    Node,
    Structure,
    T,
    UnaryFact,
    _canonical_key,
)


# ----------------------------------------------------------------------
# Shapes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Shape:
    """A cactus shape: which T indices are budded, with child shapes.

    ``children`` maps a budded index ``j`` (position in
    ``one_cq.solitary_ts``) to the shape grown at that bud.

    Hash, depth and bud tuple are computed once at construction: shapes
    are the keys of the factory's cactus cache, so they get hashed (and
    their depths read) far more often than they are built.
    """

    children: tuple[tuple[int, "Shape"], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(self.children))
        object.__setattr__(
            self, "_budded", tuple(j for j, _ in self.children)
        )
        object.__setattr__(
            self,
            "_depth",
            1 + max(s._depth for _, s in self.children)
            if self.children
            else 0,
        )
        # Lazily-memoised prune by one generation (see parent_shape).
        object.__setattr__(self, "_parent_shape", None)

    def __hash__(self) -> int:
        return self._hash

    @classmethod
    def leaf(cls) -> "Shape":
        return cls(())

    @classmethod
    def make(cls, children: Mapping[int, "Shape"]) -> "Shape":
        return cls(tuple(sorted(children.items())))

    @property
    def budded(self) -> tuple[int, ...]:
        return self._budded

    @property
    def depth(self) -> int:
        return self._depth

    def segment_count(self) -> int:
        return 1 + sum(shape.segment_count() for _, shape in self.children)

    def describe(self) -> str:
        if not self.children:
            return "*"
        inner = ", ".join(
            f"{j}:{shape.describe()}" for j, shape in self.children
        )
        return "{" + inner + "}"


def count_shapes(span: int, max_depth: int) -> int:
    """``|{shapes of depth <= max_depth}|`` — the tower-of-exponentials
    recurrence ``g(d) = (1 + g(d-1))**span``, computed without
    enumerating.  Callers use it to refuse workloads that would never
    finish (see :func:`repro.core.dsirup.evaluate_via_cactuses`)."""
    count = 1
    for _ in range(max_depth):
        count = (1 + count) ** span
    return count


def iter_shapes(
    span: int, max_depth: int, budget=None
) -> Iterator[Shape]:
    """All shapes of depth at most ``max_depth`` for a given span.

    The count grows as a tower in ``span`` (see :func:`count_shapes`);
    callers should keep ``max_depth`` small for span >= 2.  The
    recursion *materialises* each subshape universe before yielding
    anything from the level above, so for span >= 2 a deep enumeration
    spends unbounded time with nothing reaching the caller's loop —
    which is why the optional ``budget`` is charged here, per
    constructed shape inside every recursive level, and not only at
    the consuming loop.
    """
    if max_depth < 0:
        return
    if max_depth == 0 or span == 0:
        if budget is not None:
            budget.charge()
        yield Shape.leaf()
        return
    subshapes = list(iter_shapes(span, max_depth - 1, budget))
    indices = list(range(span))
    for r in range(span + 1):
        for budset in itertools.combinations(indices, r):
            for combo in itertools.product(subshapes, repeat=len(budset)):
                if budget is not None:
                    budget.charge()
                yield Shape.make(dict(zip(budset, combo)))


def full_shape(span: int, depth: int) -> Shape:
    """The shape budding every solitary T down to the given depth."""
    if depth == 0 or span == 0:
        return Shape.leaf()
    child = full_shape(span, depth - 1)
    return Shape.make({j: child for j in range(span)})


def chain_shape(indices: list[int]) -> Shape:
    """A single-branch shape budding ``indices[0]``, then ``indices[1]``.."""
    shape = Shape.leaf()
    for j in reversed(indices):
        shape = Shape.make({j: shape})
    return shape


# ----------------------------------------------------------------------
# Cactuses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SegmentInfo:
    """Bookkeeping for one segment of a cactus."""

    seg_id: int
    parent: int | None
    bud_index: int | None  # index into one_cq.solitary_ts, None for root
    depth: int
    # CQ variable -> cactus node.  Factory-built cactuses share one
    # read-only mapping per skeleton path (a MappingProxyType), so the
    # table cannot be corrupted through one cactus's SegmentInfo.
    var_map: Mapping[Node, Node]
    budded: tuple[int, ...]
    path: tuple[int, ...] = ()  # bud indices from the root to this segment


class Cactus:
    """A materialised cactus ``C ∈ 𝔎_q`` with its skeleton.

    Cactuses coming out of a :class:`CactusFactory` are cached and
    shared between callers; treat them (and their ``segments`` tables)
    as immutable.
    """

    def __init__(
        self,
        one_cq: OneCQ,
        structure: Structure,
        segments,
        shape: Shape,
        sigma_delta: tuple | None = None,
        cover_delta: tuple | None = None,
    ) -> None:
        self.one_cq = one_cq
        self.structure = structure
        self.shape = shape
        self._sigma: Structure | None = None
        # Set by the incremental factory: (parent cactus, add_nodes,
        # add_unary, add_binary, removed_unary) — the same delta that
        # grew this cactus's structure from its depth-pruned parent,
        # letting sigma_structure() derive C° from the parent's C°.
        self._sigma_delta = sigma_delta
        # The same construction delta in durable form, consumed by the
        # boundedness probe's delta warm-start
        # (:class:`repro.core.decomp.ProbeCoverage`); None for depth-0
        # cactuses, intern hits and the from-scratch oracle.  Stored
        # raw as (parent structure, delta sets) and resolved to
        # (parent *fingerprint*, delta sets) on first access: probes
        # need fingerprints anyway, but eager hashing would tax pure
        # construction (the bench_cactus workload), and keying by
        # fingerprint releases the ancestor reference once resolved.
        self._cover_delta_raw = cover_delta
        self._cover_delta: tuple | None = None
        # ``segments`` is either the materialised table or a zero-arg
        # thunk producing it: the skeleton bookkeeping is pure metadata
        # that enumeration-heavy consumers (probes, rewritings) never
        # look at, so the factory defers building it.
        if callable(segments):
            self._segments = None
            self._segments_thunk = segments
        else:
            self._segments = segments
            self._segments_thunk = None

    @property
    def segments(self) -> dict[int, SegmentInfo]:
        if self._segments is None:
            self._segments = self._segments_thunk()
            self._segments_thunk = None
        return self._segments

    @property
    def cover_delta(self) -> tuple | None:
        """``(parent fingerprint, add_nodes, add_unary, add_binary,
        removed_unary)`` — the construction delta of this cactus, or
        ``None`` when it was not built by extension."""
        if self._cover_delta is None and self._cover_delta_raw is not None:
            base, *rest = self._cover_delta_raw
            self._cover_delta = (base.fingerprint, *rest)
            self._cover_delta_raw = None
        return self._cover_delta

    @property
    def depth(self) -> int:
        return self.shape.depth

    @property
    def root_focus(self) -> Node:
        """The unique solitary F node of the cactus (its root-focus r).

        Path naming makes this a constant: the root segment (path
        ``()``) maps the focus variable to ``((), focus)``.
        """
        return ((), self.one_cq.focus)

    def segment_focus(self, seg_id: int) -> Node:
        return self.segments[seg_id].var_map[self.one_cq.focus]

    def segment_nodes(self, seg_id: int) -> frozenset[Node]:
        return frozenset(self.segments[seg_id].var_map.values())

    def sigma_structure(self) -> Structure:
        """``C°``: the cactus with the root F label replaced by A.

        Memoised, and — for factory-built cactuses — derived from the
        *parent* cactus's ``C°`` by replaying the same
        :meth:`~repro.core.structure.Structure.extended` delta that
        grew this cactus from its depth-pruned parent (sound because
        the delta never touches the root focus's F/A labels: budded
        nodes are solitary Ts, never the solitary F).  The sigma family
        therefore shares index work generation to generation exactly
        like the cactus family itself, instead of one relabel per
        cactus.  Cactuses without a recorded delta (depth 0, the
        from-scratch oracle, intern hits) fall back to the relabel.
        """
        if self._sigma is None:
            delta = self._sigma_delta
            if delta is not None:
                base, add_nodes, add_unary, add_binary, removed = delta
                self._sigma = base.sigma_structure().extended(
                    add_nodes=add_nodes,
                    add_unary=add_unary,
                    add_binary=add_binary,
                    remove_unary=removed,
                )
                # Release the parent-chain reference: keeping it would
                # pin every ancestor cactus for this object's lifetime.
                self._sigma_delta = None
            else:
                self._sigma = self.structure.relabel_node(
                    self.root_focus, remove=[F], add=[A]
                )
        return self._sigma

    def skeleton_edges(self) -> list[tuple[int, int, int]]:
        """Skeleton as (parent, child, bud_index) triples."""
        return [
            (info.parent, seg_id, info.bud_index)
            for seg_id, info in self.segments.items()
            if info.parent is not None
        ]

    def leaf_segments(self) -> list[int]:
        parents = {info.parent for info in self.segments.values()}
        return [s for s in self.segments if s not in parents]

    def describe(self) -> str:
        return (
            f"cactus depth={self.depth} segments={len(self.segments)} "
            f"shape={self.shape.describe()}"
        )

    def __repr__(self) -> str:
        return f"Cactus({self.describe()})"


def prune_shape(shape: Shape, limit: int) -> Shape:
    """The shape with every segment deeper than ``limit`` removed.

    Returns ``shape`` itself (no allocation) when nothing is deeper
    than ``limit``, so pruning a depth-``d`` shape by one generation
    only rebuilds the spine above the deepest segments.
    """
    if shape.depth <= limit:
        return shape
    if limit <= 0:
        return Shape.leaf()
    return Shape.make(
        {j: prune_shape(c, limit - 1) for j, c in shape.children}
    )


def parent_shape(shape: Shape) -> Shape:
    """``shape`` with its deepest generation removed, memoised on the
    shape object itself: the incremental builder asks for the same
    parent every time a shape is rebuilt (fresh factories included),
    and the answer is intrinsic to the shape."""
    cached = shape._parent_shape
    if cached is None:
        cached = prune_shape(shape, shape.depth - 1)
        object.__setattr__(shape, "_parent_shape", cached)
    return cached


Path = tuple  # bud-index path from the root to a segment


# ----------------------------------------------------------------------
# Per-session cactus state: factory pool + cross-factory intern table
# ----------------------------------------------------------------------
#
# Cactus structures are fully determined by the 1-CQ's *content* (query
# fingerprint, focus, solitary-T order) and the shape: path-based node
# naming uses only variable names and bud indices.  Distinct factory
# instances for content-equal queries — fresh factories in benchmarks,
# pool-evicted-and-recreated factories, hand-built ones — therefore
# rematerialise byte-identical structures.  Each session's
# :class:`CactusState` holds an LRU interning one Structure per (query
# content, shape), so a second factory reuses the first one's object
# together with every index it has built — plus the pool of factories
# themselves, so cactuses built for a boundedness probe are the same
# objects a later UCQ rewriting returns.


class CactusState:
    """The mutable cactus-construction state of one session."""

    def __init__(self, config: EngineConfig) -> None:
        self.factory_pool_size = config.factory_pool_size
        self.cactus_cache_size = config.cactus_cache_size
        self.intern_size = config.structure_intern_size
        self.max_nodes = config.cactus_max_nodes
        self._factories: OrderedDict[OneCQ, CactusFactory] = OrderedDict()
        self._intern: OrderedDict[tuple, Structure] = OrderedDict()

    def factory(self, one_cq: OneCQ) -> "CactusFactory":
        """The pooled factory of ``one_cq`` (LRU-bounded)."""
        factory = self._factories.get(one_cq)
        if factory is None:
            factory = CactusFactory(one_cq, state=self)
            self._factories[one_cq] = factory
            while len(self._factories) > self.factory_pool_size:
                self._factories.popitem(last=False)
        else:
            self._factories.move_to_end(one_cq)
        return factory

    def interned_structure(
        self, factory_key: tuple, shape: Shape
    ) -> Structure | None:
        cached = self._intern.get((factory_key, shape))
        if cached is not None:
            self._intern.move_to_end((factory_key, shape))
        return cached

    def intern_structure(
        self, factory_key: tuple, shape: Shape, structure: Structure
    ) -> None:
        self._intern[(factory_key, shape)] = structure
        while len(self._intern) > self.intern_size:
            self._intern.popitem(last=False)

    def clear_intern(self) -> None:
        self._intern.clear()

    def clear(self) -> None:
        self._factories.clear()
        self._intern.clear()


def _state(session) -> CactusState:
    """The :class:`CactusState` of ``session`` (default if ``None``)."""
    if session is not None:
        return session.cactus
    from ..session import default_session

    return default_session().cactus


def clear_structure_intern(session=None) -> None:
    """Drop the (default) session's interned cactus structures
    (benchmarks call this to measure genuinely cold construction)."""
    _state(session).clear_intern()


class CactusFactory:
    """Incremental, pooled cactus construction for one 1-CQ.

    The factory interns, per skeleton path:

    * the *leaf segment copy* at that path — the frozen node / unary /
      binary fact sets of ``A(x), q⁻, T(y_1) .. T(y_n)`` renamed into
      path coordinates (glued by naming: the copy's focus IS the
      parent's ``y_j`` node), and
    * the variable map from the 1-CQ into those coordinates,

    and memoises every materialised cactus by shape.  A depth-``d``
    cactus is built from the cached depth-``d-1`` prune of its shape by
    one :meth:`~repro.core.structure.Structure.extended` delta: remove
    the newly-budded ``T`` facts, add the interned fact sets of the new
    leaf segments.  Nothing a prefix materialised is ever recomputed —
    not the facts, not the eager structure indexes, not the fingerprint.
    """

    def __init__(
        self, one_cq: OneCQ, state: CactusState | None = None
    ) -> None:
        self.one_cq = one_cq
        # The owning session's cactus state (intern table + LRU bounds);
        # a factory built bare binds the default session's on first use.
        self._state = state
        # Shape -> Cactus, LRU-bounded (EngineConfig.cactus_cache_size):
        # an open-ended probe of a span >= 2 query would otherwise
        # retain an exponential-in-depth number of materialised
        # cactuses for the life of the pooled factory.  Evicting a
        # prefix only costs a rebuild if it is ever extended again.
        self._cactuses: OrderedDict[Shape, Cactus] = OrderedDict()
        self._leaf_facts: dict[Path, tuple] = {}
        self._var_maps: dict[Path, Mapping[Node, Node]] = {}
        self._segment_copies: dict = {}
        self._intern_key: tuple | None = None

    @property
    def state(self) -> CactusState:
        if self._state is None:
            self._state = _state(None)
        return self._state

    @property
    def intern_key(self) -> tuple:
        """The content key this factory interns structures under: the
        query's fingerprint plus the focus and solitary-T order (two
        OneCQs with this key equal build identical cactus structures)."""
        if self._intern_key is None:
            self._intern_key = (
                self.one_cq.query.fingerprint,
                _canonical_key(self.one_cq.focus),
                tuple(_canonical_key(t) for t in self.one_cq.solitary_ts),
            )
        return self._intern_key

    # -- interned per-path segment material ----------------------------

    def var_map(self, path: Path) -> Mapping[Node, Node]:
        """The shared, read-only variable map of the segment at ``path``."""
        cached = self._var_maps.get(path)
        if cached is None:
            q = self.one_cq.query
            focus = self.one_cq.focus
            if path:
                glue = (path[:-1], self.one_cq.solitary_ts[path[-1]])
                cached = MappingProxyType(
                    {v: glue if v == focus else (path, v) for v in q.nodes}
                )
            else:
                cached = MappingProxyType({v: (path, v) for v in q.nodes})
            self._var_maps[path] = cached
        return cached

    def leaf_facts(self, path: Path) -> tuple:
        """Interned ``(nodes, unary, binary)`` of the leaf segment copy
        at ``path`` (root copy when ``path`` is empty)."""
        cached = self._leaf_facts.get(path)
        if cached is None:
            one_cq = self.one_cq
            q = one_cq.query
            var_map = self.var_map(path)
            unary: set[UnaryFact] = set()
            for fact in q.unary_facts:
                if path and fact.node == one_cq.focus and fact.label == F:
                    continue  # non-root focus: the bud relabels it A
                unary.add(UnaryFact(fact.label, var_map[fact.node]))
            if path:
                unary.add(UnaryFact(A, var_map[one_cq.focus]))
            binary = frozenset(
                fact.rename(var_map) for fact in q.binary_facts
            )
            cached = (
                frozenset(var_map.values()),
                frozenset(unary),
                binary,
            )
            self._leaf_facts[path] = cached
        return cached

    # -- cactus materialisation ----------------------------------------

    def cactus(self, shape: Shape) -> Cactus:
        """The (cached) materialised cactus of ``shape``."""
        cached = self._cactuses.get(shape)
        if cached is not None:
            self._cactuses.move_to_end(shape)
            return cached
        depth = shape.depth
        state = self.state
        sigma_delta: tuple | None = None
        cover_delta: tuple | None = None
        structure = state.interned_structure(self.intern_key, shape)
        if structure is None:
            if depth == 0:
                nodes, unary, binary = self.leaf_facts(())
                structure = Structure(nodes, unary, binary)
            else:
                base = self.cactus(parent_shape(shape))
                ts = self.one_cq.solitary_ts
                add_nodes: set[Node] = set()
                add_unary: set[UnaryFact] = set()
                add_binary: set[BinaryFact] = set()
                removed: list[UnaryFact] = []
                for parent_path, j in self._paths_at_depth(shape, depth):
                    removed.append(UnaryFact(T, (parent_path, ts[j])))
                    nodes, unary, binary = self.leaf_facts(parent_path + (j,))
                    add_nodes |= nodes
                    add_unary |= unary
                    add_binary |= binary
                structure = base.structure.extended(
                    add_nodes=add_nodes,
                    add_unary=add_unary,
                    add_binary=add_binary,
                    remove_unary=removed,
                )
                sigma_delta = (
                    base,
                    frozenset(add_nodes),
                    frozenset(add_unary),
                    frozenset(add_binary),
                    tuple(removed),
                )
                cover_delta = (base.structure,) + sigma_delta[1:]
            state.intern_structure(self.intern_key, shape, structure)
        limit = state.max_nodes
        if limit is not None and len(structure.nodes) > limit:
            # The structure is interned above regardless: building it is
            # sunk cost, and a later session/config with a higher cap
            # can reuse it.  Only materialising a *Cactus* past the cap
            # is refused.
            raise CactusBudgetExceeded(
                f"cactus of shape depth {depth} has "
                f"{len(structure.nodes)} nodes > cactus_max_nodes={limit}"
            )
        cactus = Cactus(
            self.one_cq,
            structure,
            lambda shape=shape: self._segment_table(shape),
            shape,
            sigma_delta=sigma_delta,
            cover_delta=cover_delta,
        )
        self._cactuses[shape] = cactus
        while len(self._cactuses) > state.cactus_cache_size:
            self._cactuses.popitem(last=False)
        return cactus

    @staticmethod
    def _paths_at_depth(
        shape: Shape, depth: int
    ) -> Iterator[tuple[Path, int]]:
        """``(parent_path, bud_index)`` of every segment at ``depth``."""
        stack: list[tuple[Path, Shape]] = [((), shape)]
        while stack:
            path, node = stack.pop()
            for j, child in node.children:
                if len(path) + 1 == depth:
                    yield path, j
                else:
                    stack.append((path + (j,), child))

    def _segment_table(self, shape: Shape) -> dict[int, SegmentInfo]:
        """Skeleton bookkeeping in DFS preorder (root gets id 0)."""
        segments: dict[int, SegmentInfo] = {}
        counter = itertools.count()

        def walk(
            node: Shape, path: Path, parent: int | None, bud: int | None
        ) -> None:
            seg_id = next(counter)
            segments[seg_id] = SegmentInfo(
                seg_id=seg_id,
                parent=parent,
                bud_index=bud,
                depth=len(path),
                var_map=self.var_map(path),
                budded=node.budded,
                path=path,
            )
            for j, child in node.children:
                walk(child, path + (j,), seg_id, j)

        walk(shape, (), None, None)
        return segments

    # -- interned segment copies for the Λ-CQ decider ------------------

    def segment_copy(
        self, budded: frozenset[int], root: bool, tag: object
    ) -> tuple[Structure, Mapping[Node, Node]]:
        """An interned standalone segment copy (see
        :func:`repro.ditree.lambda_cq.segment_structure`): focus
        labelled F (root) or A, ``y_j`` relabelled A for ``j`` in
        ``budded``; nodes are ``(tag, v)`` pairs.  The Appendix F
        fixpoint requests the same handful of copies thousands of
        times; interning them also lets the hom engine reuse one
        compiled plan per copy."""
        key = (frozenset(budded), root, tag)
        cached = self._segment_copies.get(key)
        if cached is None:
            one_cq = self.one_cq
            q = one_cq.query
            mapping = {v: (tag, v) for v in q.nodes}
            unary: set[UnaryFact] = set()
            for fact in q.unary_facts:
                if fact.node == one_cq.focus and fact.label == F and not root:
                    continue
                if fact.label == T and fact.node in one_cq.solitary_ts:
                    if one_cq.solitary_ts.index(fact.node) in budded:
                        continue
                unary.add(UnaryFact(fact.label, mapping[fact.node]))
            if not root:
                unary.add(UnaryFact(A, mapping[one_cq.focus]))
            for j in budded:
                unary.add(UnaryFact(A, mapping[one_cq.solitary_ts[j]]))
            binary = {fact.rename(mapping) for fact in q.binary_facts}
            cached = (
                Structure(set(mapping.values()), unary, binary),
                MappingProxyType(mapping),
            )
            self._segment_copies[key] = cached
        return cached


# Every entry point that takes a bare OneCQ (build_cactus,
# iter_cactuses, the probes and rewritings) shares one pooled factory
# per query *within a session*, so cactuses built for a boundedness
# probe are the same objects a later UCQ rewriting returns.


def cactus_factory(one_cq: OneCQ, session=None) -> CactusFactory:
    """The (default) session's pooled :class:`CactusFactory` of
    ``one_cq`` (LRU, bounded by ``EngineConfig.factory_pool_size``,
    default 32 queries)."""
    return _state(session).factory(one_cq)


def clear_cactus_caches(session=None) -> None:
    """Drop the (default) session's pooled factories (and with them all
    cached cactuses) and its structure intern table."""
    _state(session).clear()


def build_cactus(one_cq: OneCQ, shape: Shape, session=None) -> Cactus:
    """Materialise the cactus with the given shape (pooled, incremental).

    Node naming: the segment reached from the root by following bud
    indices ``path`` names its variables ``(path, v)``; a child glues
    its focus onto the parent's budded T node.  Equal shapes return the
    same cached :class:`Cactus` object.
    """
    return cactus_factory(one_cq, session).cactus(shape)


def build_cactus_from_scratch(one_cq: OneCQ, shape: Shape) -> Cactus:
    """The pre-engine builder: rematerialise every segment and rebuild
    the structure without any caching or index transfer.

    Produces node-for-node the same cactus as :func:`build_cactus` —
    the property tests assert equal structures and fingerprints — and
    serves as the baseline that ``scripts/bench_cactus.py`` measures
    the incremental engine against.
    """
    q = one_cq.query
    ts = one_cq.solitary_ts
    counter = itertools.count()
    segments: dict[int, SegmentInfo] = {}
    unary: set[UnaryFact] = set()
    binary: set[BinaryFact] = set()
    nodes: set[Node] = set()

    def add_segment(
        node: Shape, path: Path, parent: int | None, bud: int | None
    ) -> None:
        seg_id = next(counter)
        glue = (
            (path[:-1], ts[path[-1]]) if path else None
        )
        var_map: dict[Node, Node] = {
            v: glue
            if path and v == one_cq.focus
            else (path, v)
            for v in q.nodes
        }
        budded = node.budded
        for fact in q.unary_facts:
            if fact.node == one_cq.focus and fact.label == F and path:
                continue  # non-root focus: label comes from the bud (A)
            if fact.label == T and fact.node in ts:
                if ts.index(fact.node) in budded:
                    continue  # budded: T removed, child glues here
            unary.add(UnaryFact(fact.label, var_map[fact.node]))
        if path:
            unary.add(UnaryFact(A, glue))
        for fact in q.binary_facts:
            binary.add(fact.rename(var_map))
        nodes.update(var_map.values())
        segments[seg_id] = SegmentInfo(
            seg_id=seg_id,
            parent=parent,
            bud_index=bud,
            depth=len(path),
            var_map=var_map,
            budded=budded,
            path=path,
        )
        for j, child in node.children:
            add_segment(child, path + (j,), seg_id, j)

    add_segment(shape, (), None, None)
    structure = Structure(nodes, unary, binary)
    return Cactus(one_cq, structure, segments, shape)


def initial_cactus(one_cq: OneCQ, session=None) -> Cactus:
    """``C_G = {q}``: the cactus with a single (root) segment."""
    return build_cactus(one_cq, Shape.leaf(), session)


def iter_cactuses(
    one_cq: OneCQ,
    max_depth: int,
    max_count: int | None = None,
    factory: CactusFactory | None = None,
    session=None,
) -> Iterator[Cactus]:
    """All cactuses of depth at most ``max_depth`` (canonical, no dupes).

    Streams through the (pooled) incremental factory: enumerating to
    depth ``d`` materialises every depth ``< d`` cactus along the way,
    and a later enumeration — same or greater depth, same query —
    reuses every one of them.  Under a governed session each cactus
    materialised charges the operation budget (one charge plus a
    deadline checkpoint: materialisation is coarse work), so open-ended
    enumerations stop at the deadline instead of filling memory.
    """
    factory = factory or cactus_factory(one_cq, session)
    budget = call_budget(session)
    produced = 0
    for shape in iter_shapes(one_cq.span, max_depth, budget):
        if budget is not None:
            budget.charge()
            budget.checkpoint()
        yield factory.cactus(shape)
        produced += 1
        if max_count is not None and produced >= max_count:
            return


def full_cactus(one_cq: OneCQ, depth: int, session=None) -> Cactus:
    """The cactus budding every solitary T uniformly to ``depth``."""
    return build_cactus(one_cq, full_shape(one_cq.span, depth), session)


# ----------------------------------------------------------------------
# Focusedness (condition (foc))
# ----------------------------------------------------------------------


def find_unfocused_witness(
    one_cq: OneCQ, max_depth: int, session=None
) -> tuple[Cactus, Cactus, dict[Node, Node]] | None:
    """Search for cactuses C, C' and a hom ``h: C -> C'`` with
    ``h(r) != r'``, which refutes (foc).  Returns the witness or ``None``
    if no violation exists up to the probed depth (evidence, not proof,
    of focusedness)."""
    cactuses = list(iter_cactuses(one_cq, max_depth, session=session))
    for source in cactuses:
        for target in cactuses:
            # Ask the engine directly for a hom moving the root focus by
            # excluding the target focus from the root's image domain,
            # instead of enumerating all homs and filtering.
            allowed = target.structure.nodes - {target.root_focus}
            hom = find_homomorphism(
                source.structure,
                target.structure,
                node_domains={source.root_focus: frozenset(allowed)},
                session=session,
            )
            if hom is not None:
                return source, target, hom
    return None


def is_focused_up_to(one_cq: OneCQ, max_depth: int, session=None) -> bool:
    """(foc) restricted to cactuses of depth <= max_depth."""
    return find_unfocused_witness(one_cq, max_depth, session) is None


def structurally_focused(one_cq: OneCQ) -> bool:
    """The sufficient condition used for the Theorem 3 query: the solitary
    F node has a successor while no FT-twin does.  Any hom between
    cactuses must then fix the root focus."""
    q = one_cq.query
    focus_has_successor = bool(q.out_edges(one_cq.focus))
    twins_childless = all(not q.out_edges(v) for v in one_cq.twins)
    return focus_has_successor and twins_childless


# ----------------------------------------------------------------------
# Proposition 1: certain answers via cactuses
# ----------------------------------------------------------------------


def goal_certain_via_cactuses(
    one_cq: OneCQ, data: Structure, max_depth: int, session=None
) -> bool:
    """``G ∈ Π_q(D)`` iff some cactus maps homomorphically into D.

    Sound and complete when the data cannot trigger recursion deeper than
    ``max_depth`` (e.g. |D| bounds the useful depth); used in tests to
    cross-validate the datalog engine.  The cactuses stream lazily into
    one :func:`~repro.core.homengine.covers_any` batch over the data.
    """
    return covers_any(
        data,
        (
            cactus.structure
            for cactus in iter_cactuses(one_cq, max_depth, session=session)
        ),
        session=session,
    )


def sirup_certain_via_cactuses(
    one_cq: OneCQ, data: Structure, node: Node, max_depth: int, session=None
) -> bool:
    """``P(a) ∈ Σ_q(D)`` iff ``T(a) ∈ D`` or some C° maps into D with
    the root focus landing on ``a`` (Proposition 1)."""
    if data.has_label(node, T):
        return True
    return covers_any(
        data,
        (
            (cactus.sigma_structure(), {cactus.root_focus: node})
            for cactus in iter_cactuses(one_cq, max_depth, session=session)
        ),
        session=session,
    )
