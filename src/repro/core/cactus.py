"""Cactuses: the Q-expansions of ``(Π_q, G)`` (Section 2 of the paper).

Starting from ``C_G = {q}``, the (bud) rule replaces a solitary atom
``T(y)`` in a cactus by a fresh copy of ``A(x), q-, T(y_1), .., T(y_n)``
with ``x`` renamed to ``y``.  The resulting set ``𝔎_q`` of cactuses
characterises certain answers (Proposition 1) and boundedness
(Proposition 2).

A cactus is represented by

* its materialised :class:`~repro.core.structure.Structure` (nodes are
  ``(segment_id, variable)`` pairs, glued at buds),
* a skeleton: the ditree of segments with bud labels, and
* per-segment variable maps back into the 1-CQ.

Cactus *shapes* — the skeleton trees annotated with which solitary T
indices were budded — enumerate ``𝔎_q`` canonically (one cactus per
shape), so enumeration never produces duplicates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping

from .cq import OneCQ
from .homomorphism import covers_any, find_homomorphism
from .structure import A, F, Node, Structure, T, UnaryFact


# ----------------------------------------------------------------------
# Shapes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Shape:
    """A cactus shape: which T indices are budded, with child shapes.

    ``children`` maps a budded index ``j`` (position in
    ``one_cq.solitary_ts``) to the shape grown at that bud.
    """

    children: tuple[tuple[int, "Shape"], ...]

    @classmethod
    def leaf(cls) -> "Shape":
        return cls(())

    @classmethod
    def make(cls, children: Mapping[int, "Shape"]) -> "Shape":
        return cls(tuple(sorted(children.items())))

    @property
    def budded(self) -> tuple[int, ...]:
        return tuple(j for j, _ in self.children)

    @property
    def depth(self) -> int:
        if not self.children:
            return 0
        return 1 + max(shape.depth for _, shape in self.children)

    def segment_count(self) -> int:
        return 1 + sum(shape.segment_count() for _, shape in self.children)

    def describe(self) -> str:
        if not self.children:
            return "*"
        inner = ", ".join(
            f"{j}:{shape.describe()}" for j, shape in self.children
        )
        return "{" + inner + "}"


def iter_shapes(span: int, max_depth: int) -> Iterator[Shape]:
    """All shapes of depth at most ``max_depth`` for a given span.

    The count grows as a tower in ``span``; callers should keep
    ``max_depth`` small for span >= 2.
    """
    if max_depth < 0:
        return
    if max_depth == 0 or span == 0:
        yield Shape.leaf()
        return
    subshapes = list(iter_shapes(span, max_depth - 1))
    indices = list(range(span))
    for r in range(span + 1):
        for budset in itertools.combinations(indices, r):
            for combo in itertools.product(subshapes, repeat=len(budset)):
                yield Shape.make(dict(zip(budset, combo)))


def full_shape(span: int, depth: int) -> Shape:
    """The shape budding every solitary T down to the given depth."""
    if depth == 0 or span == 0:
        return Shape.leaf()
    child = full_shape(span, depth - 1)
    return Shape.make({j: child for j in range(span)})


def chain_shape(indices: list[int]) -> Shape:
    """A single-branch shape budding ``indices[0]``, then ``indices[1]``.."""
    shape = Shape.leaf()
    for j in reversed(indices):
        shape = Shape.make({j: shape})
    return shape


# ----------------------------------------------------------------------
# Cactuses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SegmentInfo:
    """Bookkeeping for one segment of a cactus."""

    seg_id: int
    parent: int | None
    bud_index: int | None  # index into one_cq.solitary_ts, None for root
    depth: int
    var_map: dict[Node, Node]  # CQ variable -> cactus node
    budded: tuple[int, ...]


class Cactus:
    """A materialised cactus ``C ∈ 𝔎_q`` with its skeleton."""

    def __init__(
        self,
        one_cq: OneCQ,
        structure: Structure,
        segments: dict[int, SegmentInfo],
        shape: Shape,
    ) -> None:
        self.one_cq = one_cq
        self.structure = structure
        self.segments = segments
        self.shape = shape

    @property
    def depth(self) -> int:
        return self.shape.depth

    @property
    def root_focus(self) -> Node:
        """The unique solitary F node of the cactus (its root-focus r)."""
        return self.segments[0].var_map[self.one_cq.focus]

    def segment_focus(self, seg_id: int) -> Node:
        return self.segments[seg_id].var_map[self.one_cq.focus]

    def segment_nodes(self, seg_id: int) -> frozenset[Node]:
        return frozenset(self.segments[seg_id].var_map.values())

    def sigma_structure(self) -> Structure:
        """``C°``: the cactus with the root F label replaced by A."""
        return self.structure.relabel_node(
            self.root_focus, remove=[F], add=[A]
        )

    def skeleton_edges(self) -> list[tuple[int, int, int]]:
        """Skeleton as (parent, child, bud_index) triples."""
        return [
            (info.parent, seg_id, info.bud_index)
            for seg_id, info in self.segments.items()
            if info.parent is not None
        ]

    def leaf_segments(self) -> list[int]:
        parents = {info.parent for info in self.segments.values()}
        return [s for s in self.segments if s not in parents]

    def describe(self) -> str:
        return (
            f"cactus depth={self.depth} segments={len(self.segments)} "
            f"shape={self.shape.describe()}"
        )

    def __repr__(self) -> str:
        return f"Cactus({self.describe()})"


def build_cactus(one_cq: OneCQ, shape: Shape) -> Cactus:
    """Materialise the cactus with the given shape.

    Node naming: the root segment's variables become ``(0, v)``; a child
    segment glues its focus onto the parent's budded T node and names its
    other variables ``(seg_id, v)``.
    """
    q = one_cq.query
    ts = one_cq.solitary_ts
    counter = itertools.count()
    segments: dict[int, SegmentInfo] = {}
    unary: set[UnaryFact] = set()
    binary = set()

    def add_segment(
        shape: Shape,
        parent: int | None,
        glue_node: Node | None,
        depth: int,
    ) -> int:
        seg_id = next(counter)
        var_map: dict[Node, Node] = {}
        for v in q.nodes:
            if v == one_cq.focus and glue_node is not None:
                var_map[v] = glue_node
            else:
                var_map[v] = (seg_id, v)
        budded = shape.budded
        # Unary facts: focus keeps F at the root, is relabelled A when
        # glued; budded solitary Ts lose their T (the child adds A).
        for fact in q.unary_facts:
            node = var_map[fact.node]
            if fact.node == one_cq.focus and fact.label == F and parent is not None:
                continue  # non-root focus: label comes from the bud (A)
            if fact.label == T and fact.node in ts:
                j = ts.index(fact.node)
                if j in budded:
                    continue  # budded: T removed, child will glue here
            unary.add(UnaryFact(fact.label, node))
        if parent is not None:
            unary.add(UnaryFact(A, glue_node))
        for fact in q.binary_facts:
            binary.add(fact.rename(var_map))
        segments[seg_id] = SegmentInfo(
            seg_id=seg_id,
            parent=parent,
            bud_index=None,
            depth=depth,
            var_map=var_map,
            budded=budded,
        )
        for j, child_shape in shape.children:
            child_glue = var_map[ts[j]]
            child_id = add_segment(child_shape, seg_id, child_glue, depth + 1)
            info = segments[child_id]
            segments[child_id] = SegmentInfo(
                seg_id=child_id,
                parent=seg_id,
                bud_index=j,
                depth=depth + 1,
                var_map=info.var_map,
                budded=info.budded,
            )
        return seg_id

    add_segment(shape, None, None, 0)
    structure = Structure((), unary, binary)
    return Cactus(one_cq, structure, segments, shape)


def initial_cactus(one_cq: OneCQ) -> Cactus:
    """``C_G = {q}``: the cactus with a single (root) segment."""
    return build_cactus(one_cq, Shape.leaf())


def iter_cactuses(
    one_cq: OneCQ,
    max_depth: int,
    max_count: int | None = None,
) -> Iterator[Cactus]:
    """All cactuses of depth at most ``max_depth`` (canonical, no dupes)."""
    produced = 0
    for shape in iter_shapes(one_cq.span, max_depth):
        yield build_cactus(one_cq, shape)
        produced += 1
        if max_count is not None and produced >= max_count:
            return


def full_cactus(one_cq: OneCQ, depth: int) -> Cactus:
    """The cactus budding every solitary T uniformly to ``depth``."""
    return build_cactus(one_cq, full_shape(one_cq.span, depth))


# ----------------------------------------------------------------------
# Focusedness (condition (foc))
# ----------------------------------------------------------------------


def find_unfocused_witness(
    one_cq: OneCQ, max_depth: int
) -> tuple[Cactus, Cactus, dict[Node, Node]] | None:
    """Search for cactuses C, C' and a hom ``h: C -> C'`` with
    ``h(r) != r'``, which refutes (foc).  Returns the witness or ``None``
    if no violation exists up to the probed depth (evidence, not proof,
    of focusedness)."""
    cactuses = list(iter_cactuses(one_cq, max_depth))
    for source in cactuses:
        for target in cactuses:
            # Ask the engine directly for a hom moving the root focus by
            # excluding the target focus from the root's image domain,
            # instead of enumerating all homs and filtering.
            allowed = target.structure.nodes - {target.root_focus}
            hom = find_homomorphism(
                source.structure,
                target.structure,
                node_domains={source.root_focus: frozenset(allowed)},
            )
            if hom is not None:
                return source, target, hom
    return None


def is_focused_up_to(one_cq: OneCQ, max_depth: int) -> bool:
    """(foc) restricted to cactuses of depth <= max_depth."""
    return find_unfocused_witness(one_cq, max_depth) is None


def structurally_focused(one_cq: OneCQ) -> bool:
    """The sufficient condition used for the Theorem 3 query: the solitary
    F node has a successor while no FT-twin does.  Any hom between
    cactuses must then fix the root focus."""
    q = one_cq.query
    focus_has_successor = bool(q.out_edges(one_cq.focus))
    twins_childless = all(not q.out_edges(v) for v in one_cq.twins)
    return focus_has_successor and twins_childless


# ----------------------------------------------------------------------
# Proposition 1: certain answers via cactuses
# ----------------------------------------------------------------------


def goal_certain_via_cactuses(
    one_cq: OneCQ, data: Structure, max_depth: int
) -> bool:
    """``G ∈ Π_q(D)`` iff some cactus maps homomorphically into D.

    Sound and complete when the data cannot trigger recursion deeper than
    ``max_depth`` (e.g. |D| bounds the useful depth); used in tests to
    cross-validate the datalog engine.  The cactuses stream lazily into
    one :func:`~repro.core.homengine.covers_any` batch over the data.
    """
    return covers_any(
        data, (cactus.structure for cactus in iter_cactuses(one_cq, max_depth))
    )


def sirup_certain_via_cactuses(
    one_cq: OneCQ, data: Structure, node: Node, max_depth: int
) -> bool:
    """``P(a) ∈ Σ_q(D)`` iff ``T(a) ∈ D`` or some C° maps into D with
    the root focus landing on ``a`` (Proposition 1)."""
    if data.has_label(node, T):
        return True
    return covers_any(
        data,
        (
            (cactus.sigma_structure(), {cactus.root_focus: node})
            for cactus in iter_cactuses(one_cq, max_depth)
        ),
    )
