"""Typed failure taxonomy + cooperative resource governance.

The engine's search kernels (AC-3 propagation, backtracking, the
decomp semijoin DP) and the cactus builder are complete but not
polynomial: a hostile query can spin them for hours.  This module
gives every layer a shared, *cooperative* way to stop early:

* :class:`EngineError` roots the taxonomy.  :class:`ResourceExhausted`
  (with subclasses :class:`DeadlineExceeded`, :class:`FuelExhausted`,
  :class:`CactusBudgetExceeded`) is raised by the kernels when a budget
  trips; :class:`WorkerFailure` marks a pool worker that crashed, hung
  past its shard timeout, or returned a corrupt result.
* :class:`Budget` is the cooperative meter: a monotonic wall-clock
  deadline plus an integer fuel counter.  Kernels call
  :meth:`Budget.charge` at coarse search steps (an AC-3 edge revision,
  a backtracking candidate, a semijoin tuple — never per bit), which
  burns fuel on every call but only reads the clock every
  ``_DEADLINE_CHECK_EVERY`` charges; loop heads that run rarely but do
  a lot of work per iteration (one cactus materialised, one coverage
  check) call :meth:`Budget.checkpoint`, which always reads the clock.
* :class:`Answer` is the tri-state surface value.  Inner engine calls
  *raise* on exhaustion; only the outermost entry points
  (``Session.certain_answer``, the parallel batch/screen APIs, the
  boundedness probe) convert the exception into
  ``Answer.unknown(reason)`` so partial results survive.

The outermost-surface contract
==============================

Every outermost ``Session`` method returns an *Answer-compatible*
value — one uniform tri-state convention instead of per-method
inventions:

* scalar surfaces (``certain_answer``) return a plain ``bool`` when
  settled and ``Answer.unknown(reason)`` when a governed budget
  tripped; batch surfaces (``ucq_certain_answers``, governed
  ``evaluate_batch``) return lists whose settled entries are plain
  bools and whose unsettled entries are ``Answer`` UNKNOWNs — settled
  prefixes are never discarded and UNKNOWN is never downgraded to
  ``False``;
* structured results expose the same tri-state through an ``answer``
  property: ``ProbeResult.answer`` (boundedness probes) and
  ``Evaluation.answer`` (semiring evaluation) yield an :class:`Answer`
  whose UNKNOWN carries the probe/evaluation's exhaustion reason;
* ungoverned sessions (no ``deadline_ms``/``hom_fuel``/
  ``cactus_max_nodes``) always return settled values and never an
  UNKNOWN; each method's docstring states its governed behaviour.

``tests/test_answer_contract.py`` is the conformance suite for this
contract.

Budget scoping follows the session: :func:`governed_scope` installs one
operation-wide budget on ``session.active_budget`` at a top-level
operation (a d-sirup evaluation, a boundedness probe, a batch sweep),
and :func:`call_budget` hands every nested engine call that shared
budget — or a fresh transient one built from the session config when no
scope is active.  The slot is *per-thread* (a thread-local on the
session), so concurrent top-level operations on one session — the
service tier runs same-tenant jobs on parallel executor threads — each
govern their own deadline, fuel, and cancel hook.  Ungoverned configs (``deadline_ms``, ``hom_fuel`` and
``cactus_max_nodes`` all unset) resolve to ``budget = None`` everywhere,
so governance costs nothing until it is switched on.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = [
    "Answer",
    "Budget",
    "CactusBudgetExceeded",
    "DeadlineExceeded",
    "EngineError",
    "FuelExhausted",
    "JobCancelled",
    "LeaseExpired",
    "ResourceExhausted",
    "StoreCorruption",
    "UnknownSemiring",
    "WorkerFailure",
    "call_budget",
    "governed_scope",
]


# ----------------------------------------------------------------------
# Taxonomy
# ----------------------------------------------------------------------


class EngineError(Exception):
    """Root of the engine's typed failure taxonomy."""


class ResourceExhausted(EngineError):
    """A cooperative budget tripped mid-search.

    ``reason`` is the machine-readable tag carried into tri-state
    results (``Answer.unknown(reason)``) and across the pool wire.
    """

    reason = "resource"

    def __init__(self, message: str = "", *, reason: str | None = None):
        if reason is not None:
            self.reason = reason
        super().__init__(message or self.reason)

    @staticmethod
    def from_reason(reason: str, message: str = "") -> "ResourceExhausted":
        """Rebuild the typed exception from a wire-carried reason tag."""
        cls = _REASON_CLASSES.get(reason)
        if cls is None:
            return ResourceExhausted(message, reason=reason)
        return cls(message)


class DeadlineExceeded(ResourceExhausted):
    """The operation's wall-clock ``deadline_ms`` passed."""

    reason = "deadline"


class FuelExhausted(ResourceExhausted):
    """The operation burned its ``hom_fuel`` search-step budget."""

    reason = "fuel"


class CactusBudgetExceeded(ResourceExhausted):
    """A cactus grew past the session's ``cactus_max_nodes`` cap."""

    reason = "cactus-nodes"


_REASON_CLASSES = {
    cls.reason: cls
    for cls in (DeadlineExceeded, FuelExhausted, CactusBudgetExceeded)
}


class WorkerFailure(EngineError):
    """A pool worker crashed, hung past its shard timeout, or returned
    a result of the wrong shape (corrupt wire)."""


class UnknownSemiring(EngineError):
    """A ``semiring=`` argument named no registered instance (see
    :func:`repro.core.semiring.resolve_semiring` /
    :func:`~repro.core.semiring.register_semiring`)."""


class JobCancelled(EngineError):
    """A service job was cancelled cooperatively.

    Raised from :meth:`Budget.charge` / :meth:`Budget.checkpoint` when
    the budget's ``cancel`` hook reports a pending cancellation, and by
    the job manager's between-shard checks.  Deliberately *not* a
    :class:`ResourceExhausted`: governed surfaces convert exhaustion
    into ``Answer.unknown`` partial results, but a cancellation must
    propagate all the way out so the job settles in the terminal
    ``CANCELLED`` state instead of completing with UNKNOWN answers.
    """


class LeaseExpired(EngineError):
    """A job's ownership lease lapsed (see ``lease:v1`` in
    :mod:`repro.core.store`): the holder stopped heartbeating — a
    crashed process or a stuck executor thread — so another manager may
    take the job over.  Raised when an operation is attempted under a
    lease the caller no longer holds."""


class StoreCorruption(EngineError):
    """The durable store failed an integrity check: a torn or truncated
    sqlite file, a per-row checksum mismatch, or a schema-version tag
    from an incompatible engine build.

    Under the default ``durability="best-effort"`` policy the store
    handles this itself — the bad file is quarantined (renamed aside,
    never trusted) and a fresh store rebuilt, or the store degrades to
    the in-memory tier — and this exception is never raised.  Under
    ``durability="strict"`` the same conditions raise it, so operators
    who want to *know* about corruption instead of silently recomputing
    can fail loudly."""


# ----------------------------------------------------------------------
# Tri-state answers
# ----------------------------------------------------------------------


class Answer:
    """A tri-state certain-answer value: TRUE, FALSE, or UNKNOWN(reason).

    Known answers compare equal to (and hash like) the plain booleans
    they wrap, so governed and ungoverned result lists agree wherever
    no budget tripped; ``bool()`` of an UNKNOWN raises
    :class:`EngineError` rather than silently leaning either way.
    Batch surfaces keep known entries as plain ``True``/``False`` and
    use :class:`Answer` objects only for UNKNOWN slots
    (:meth:`decode`), so partial results are preserved verbatim.
    """

    __slots__ = ("value", "reason")

    TRUE: "Answer"
    FALSE: "Answer"

    def __init__(self, value: bool | None, reason: str | None = None):
        self.value = value
        self.reason = reason

    @classmethod
    def unknown(cls, reason: str) -> "Answer":
        return cls(None, reason)

    @property
    def known(self) -> bool:
        return self.value is not None

    def __bool__(self) -> bool:
        if self.value is None:
            raise EngineError(
                f"UNKNOWN({self.reason}) has no truth value; check "
                "`.known` before branching on a governed answer"
            )
        return self.value

    def __eq__(self, other) -> bool:
        if isinstance(other, Answer):
            return (self.value, self.reason) == (other.value, other.reason)
        if isinstance(other, bool):
            return self.value is other
        return NotImplemented

    def __hash__(self) -> int:
        if self.value is not None:
            return hash(self.value)  # match the bool it wraps
        return hash((None, self.reason))

    def __repr__(self) -> str:
        if self.value is None:
            return f"UNKNOWN({self.reason})"
        return "TRUE" if self.value else "FALSE"

    def encode(self) -> bool | str:
        """The wire form batch entries travel as: a plain bool for a
        known answer, the reason tag for an UNKNOWN one."""
        if self.value is None:
            return self.reason or "resource"
        return self.value

    @staticmethod
    def decode(entry: "bool | str | Answer") -> "bool | Answer":
        """Inverse of :meth:`encode` for one batch entry: bools pass
        through untouched, reason strings become UNKNOWN answers."""
        if isinstance(entry, str):
            return Answer(None, entry)
        if isinstance(entry, Answer):
            return entry
        return bool(entry)


Answer.TRUE = Answer(True)
Answer.FALSE = Answer(False)


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------

# Deadline charges between clock reads.  A charge is a coarse search
# step (edge revision, backtracking candidate, semijoin tuple), each
# already worth many machine operations, so reading the clock every
# 1024th keeps governance overhead out of the perf gates while bounding
# the overshoot to a sliver of any realistic deadline.
_DEADLINE_CHECK_EVERY = 1024


class Budget:
    """One operation's cooperative resource meter.

    Mutable and single-threaded by design: the same object is threaded
    through every nested engine call of one governed operation, so fuel
    and deadline are shared across backends, cactus construction and
    coverage checks alike.
    """

    __slots__ = ("deadline", "fuel", "cancel", "_countdown")

    def __init__(
        self,
        deadline_ms: int | None = None,
        fuel: int | None = None,
        cancel=None,
    ):
        self.deadline = (
            None
            if deadline_ms is None
            else time.monotonic() + deadline_ms / 1000.0
        )
        self.fuel = fuel
        # Cooperative cancellation: a zero-arg callable polled at the
        # same cadence as the deadline (every checkpoint, every
        # ``_DEADLINE_CHECK_EVERY``-th charge).  Truthy => the operation
        # raises JobCancelled at its next cooperative point.  Parent
        # process only — budgets never ship to pool workers.
        self.cancel = cancel
        self._countdown = _DEADLINE_CHECK_EVERY

    @classmethod
    def from_config(cls, config) -> "Budget | None":
        """A fresh budget for one operation under ``config`` — ``None``
        when the config is ungoverned, so the zero-governance fast
        paths stay branch-on-None cheap."""
        if config.deadline_ms is None and config.hom_fuel is None:
            return None
        return cls(config.deadline_ms, config.hom_fuel)

    def charge(self, amount: int = 1) -> None:
        """Burn ``amount`` fuel and (periodically) check the deadline.

        Raises :class:`FuelExhausted` / :class:`DeadlineExceeded`; the
        kernels let these propagate to the governed surface.
        """
        if self.fuel is not None:
            self.fuel -= amount
            if self.fuel < 0:
                raise FuelExhausted("hom_fuel search-step budget exhausted")
        if self.deadline is not None or self.cancel is not None:
            self._countdown -= 1
            if self._countdown <= 0:
                self._countdown = _DEADLINE_CHECK_EVERY
                if (
                    self.deadline is not None
                    and time.monotonic() >= self.deadline
                ):
                    raise DeadlineExceeded("deadline_ms exceeded")
                if self.cancel is not None and self.cancel():
                    raise JobCancelled("operation cancelled mid-search")

    def checkpoint(self) -> None:
        """Immediate deadline + cancellation check, for loop heads
        whose iterations are few but individually expensive (cactus
        materialisation, one coverage check, one batch item)."""
        if self.deadline is not None and time.monotonic() >= self.deadline:
            raise DeadlineExceeded("deadline_ms exceeded")
        if self.cancel is not None and self.cancel():
            raise JobCancelled("operation cancelled at checkpoint")

    def remaining_fuel(self) -> int | None:
        return self.fuel


# ----------------------------------------------------------------------
# Session scoping
# ----------------------------------------------------------------------


def _resolve_session(session):
    if session is not None:
        return session
    from ..session import default_session

    return default_session()


def call_budget(session) -> Budget | None:
    """The budget one engine call should charge.

    Inside :func:`governed_scope` this is the operation-wide shared
    budget; outside, a fresh transient budget built from the session
    config (making ``hom_fuel`` a per-call cap for bare engine calls).
    ``None`` — the common, ungoverned case — means "don't charge".
    """
    s = _resolve_session(session)
    active = s.active_budget
    if active is not None:
        return active
    return Budget.from_config(s.config)


@contextmanager
def governed_scope(session):
    """Install one operation-wide budget on the session.

    Top-level operations (d-sirup evaluation, boundedness probes, batch
    sweeps, worker chunk tasks) enter this scope so every nested engine
    call shares a single deadline and fuel pool via
    :func:`call_budget`.  Nested scopes reuse the outer budget;
    ungoverned configs yield ``None`` and install nothing.
    """
    s = _resolve_session(session)
    if s.active_budget is not None:
        yield s.active_budget
        return
    budget = Budget.from_config(s.config)
    if budget is None:
        yield None
        return
    s.active_budget = budget
    try:
        yield budget
    finally:
        s.active_budget = None
