"""A monadic datalog engine with semi-naive evaluation.

The paper's programs (Section 2) are monadic datalog programs over at most
binary EDB predicates: every rule head is a unary IDB atom or the 0-ary
goal ``G``.  Rule bodies are conjunctions of unary and binary atoms over
variables (no constants, no function symbols), and every head variable
occurs in the body.

We represent a rule body as a :class:`~repro.core.structure.Structure`
whose nodes are the body variables: evaluating the body over a data
instance is exactly enumerating homomorphisms of that structure into the
(current closure of the) instance.  Semi-naive evaluation restricts one
IDB body atom per pass to newly derived facts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .homomorphism import iter_homomorphisms
from .structure import BinaryFact, Node, Structure, UnaryFact

GOAL = "G"


@dataclass(frozen=True)
class Rule:
    """``head_pred(head_var) <- body`` with a unary or 0-ary head.

    ``head_var`` is ``None`` for a 0-ary (goal) head.  The body is a
    structure over the rule's variables; unary facts are body atoms
    ``L(x)`` and binary facts are body atoms ``P(x, y)``.
    """

    head_pred: str
    head_var: Node | None
    body: Structure

    def __post_init__(self) -> None:
        if self.head_var is not None and self.head_var not in self.body.nodes:
            raise ValueError(
                f"head variable {self.head_var!r} does not occur in the body"
            )

    @property
    def body_predicates(self) -> frozenset[str]:
        return self.body.unary_predicates | self.body.binary_predicates

    def describe(self) -> str:
        body_atoms = []
        for fact in sorted(
            self.body.unary_facts, key=lambda f: (f.label, str(f.node))
        ):
            body_atoms.append(f"{fact.label}({fact.node})")
        for fact in sorted(
            self.body.binary_facts,
            key=lambda f: (f.pred, str(f.src), str(f.dst)),
        ):
            body_atoms.append(f"{fact.pred}({fact.src}, {fact.dst})")
        head = (
            self.head_pred
            if self.head_var is None
            else f"{self.head_pred}({self.head_var})"
        )
        return f"{head} <- " + ", ".join(body_atoms)


@dataclass(frozen=True)
class Program:
    """A monadic datalog program: a finite set of rules."""

    rules: tuple[Rule, ...]

    def __post_init__(self) -> None:
        for rule in self.rules:
            for fact in rule.body.binary_facts:
                if fact.pred in self.idb_predicates:
                    raise ValueError(
                        "IDB predicates must be monadic; "
                        f"{fact.pred!r} occurs in a binary body atom"
                    )

    @property
    def idb_predicates(self) -> frozenset[str]:
        return frozenset(rule.head_pred for rule in self.rules)

    @property
    def edb_predicates(self) -> frozenset[str]:
        idb = self.idb_predicates
        preds: set[str] = set()
        for rule in self.rules:
            preds |= rule.body_predicates
        return frozenset(preds - idb)

    def recursive_rules(self) -> tuple[Rule, ...]:
        idb = self.idb_predicates
        return tuple(
            rule
            for rule in self.rules
            if rule.body.unary_predicates & idb
        )

    def is_sirup(self) -> bool:
        """True iff the program has exactly one recursive rule."""
        return len(self.recursive_rules()) == 1

    def describe(self) -> str:
        return "\n".join(rule.describe() for rule in self.rules)


@dataclass(frozen=True)
class EvaluationResult:
    """Closure of a data instance under a program."""

    facts: frozenset[UnaryFact]
    goals: frozenset[str]
    rounds: int

    def holds(self, pred: str, node: Node | None = None) -> bool:
        if node is None:
            return pred in self.goals
        return UnaryFact(pred, node) in self.facts

    def answers(self, pred: str) -> frozenset[Node]:
        return frozenset(f.node for f in self.facts if f.label == pred)


def _augmented_instance(
    data: Structure, derived: Iterable[UnaryFact]
) -> Structure:
    return Structure(data.nodes, set(data.unary_facts) | set(derived), data.binary_facts)


def _fire_rule(
    rule: Rule,
    instance: Structure,
    required_new: set[UnaryFact] | None,
    session=None,
) -> Iterator[UnaryFact | str]:
    """All head facts derivable by one rule over ``instance``.

    If ``required_new`` is given (semi-naive pass), only homomorphisms
    using at least one fact from it are counted.  We implement the delta
    restriction by checking the match afterwards, which is simple and
    correct; the search itself is already pruned by domains.
    """
    # A body atom over a predicate absent from the instance can never
    # match: skip the search entirely (cheap index lookups, no scan).
    if not rule.body.unary_predicates <= instance.unary_predicates:
        return
    if not rule.body.binary_predicates <= instance.binary_predicates:
        return
    for hom in iter_homomorphisms(rule.body, instance, session=session):
        if required_new is not None:
            used_new = any(
                UnaryFact(f.label, hom[f.node]) in required_new
                for f in rule.body.unary_facts
            )
            if not used_new:
                continue
        if rule.head_var is None:
            yield rule.head_pred
        else:
            yield UnaryFact(rule.head_pred, hom[rule.head_var])


def evaluate(
    program: Program, data: Structure, session=None
) -> EvaluationResult:
    """Semi-naive bottom-up closure of ``data`` under ``program``.

    Returns all derived unary IDB facts and derived 0-ary goals.  The EDB
    part of ``data`` is never modified; IDB facts already present in the
    data (e.g. ``T`` facts feeding ``P(x) <- T(x)``) are allowed.
    """
    idb = program.idb_predicates
    derived: set[UnaryFact] = set()
    goals: set[str] = set()

    # Round 0: fire every rule on the raw data.
    instance = data
    delta: set[UnaryFact] = set()
    for rule in program.rules:
        for fact in _fire_rule(rule, instance, None, session):
            if isinstance(fact, str):
                goals.add(fact)
            elif fact not in data.unary_facts and fact not in derived:
                derived.add(fact)
                delta.add(fact)
    rounds = 1

    recursive = [
        rule for rule in program.rules if rule.body.unary_predicates & idb
    ]
    while delta:
        instance = _augmented_instance(data, derived)
        new_delta: set[UnaryFact] = set()
        for rule in recursive:
            if not (rule.body.unary_predicates & {f.label for f in delta}):
                continue
            for fact in _fire_rule(rule, instance, delta, session):
                if isinstance(fact, str):
                    goals.add(fact)
                elif (
                    fact not in data.unary_facts
                    and fact not in derived
                    and fact not in new_delta
                ):
                    new_delta.add(fact)
        derived |= new_delta
        delta = new_delta
        rounds += 1

    return EvaluationResult(frozenset(derived), frozenset(goals), rounds)


def certain_answers(
    program: Program, data: Structure, pred: str, session=None
) -> frozenset[Node]:
    """Certain answers to the datalog query ``(program, pred)`` over data."""
    result = evaluate(program, data, session)
    answers = set(result.answers(pred))
    # Facts asserted directly in the data also count as derived.
    answers |= {f.node for f in data.unary_facts if f.label == pred}
    return frozenset(answers)


def goal_holds(
    program: Program, data: Structure, goal: str = GOAL, session=None
) -> bool:
    """Does the 0-ary goal hold in the closure?"""
    return goal in evaluate(program, data, session).goals


def evaluate_bounded(
    program: Program, data: Structure, max_rounds: int, session=None
) -> EvaluationResult:
    """Closure truncated after ``max_rounds`` semi-naive passes.

    Used to measure the recursion depth actually needed on a workload
    (the operational face of boundedness).
    """
    idb = program.idb_predicates
    derived: set[UnaryFact] = set()
    goals: set[str] = set()
    instance = data
    delta: set[UnaryFact] = set()
    for rule in program.rules:
        for fact in _fire_rule(rule, instance, None, session):
            if isinstance(fact, str):
                goals.add(fact)
            elif fact not in data.unary_facts and fact not in derived:
                derived.add(fact)
                delta.add(fact)
    rounds = 1
    recursive = [
        rule for rule in program.rules if rule.body.unary_predicates & idb
    ]
    while delta and rounds < max_rounds:
        instance = _augmented_instance(data, derived)
        new_delta: set[UnaryFact] = set()
        for rule in recursive:
            for fact in _fire_rule(rule, instance, delta, session):
                if isinstance(fact, str):
                    goals.add(fact)
                elif (
                    fact not in data.unary_facts
                    and fact not in derived
                    and fact not in new_delta
                ):
                    new_delta.add(fact)
        derived |= new_delta
        delta = new_delta
        rounds += 1
    return EvaluationResult(frozenset(derived), frozenset(goals), rounds)


def make_rule(
    head_pred: str,
    head_var: Node | None,
    unary: Iterable[tuple[str, Node]] = (),
    binary: Iterable[tuple[str, Node, Node]] = (),
) -> Rule:
    """Convenience constructor from atom tuples."""
    body = Structure(
        (),
        (UnaryFact(label, node) for label, node in unary),
        (BinaryFact(pred, src, dst) for pred, src, dst in binary),
    )
    return Rule(head_pred, head_var, body)
