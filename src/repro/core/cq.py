"""Conjunctive queries with ``F``/``T`` labels: solitary nodes and twins.

Throughout the paper a CQ ``q`` is a set of atoms over unary predicates
``F``, ``T`` and arbitrary binary predicates.  A node is *solitary F* if it
is labelled ``F`` but not ``T`` (symmetrically for solitary T); a node
labelled by both is an *FT-twin*.

A *1-CQ* has exactly one solitary F node, any number of solitary T nodes
``y_1 .. y_n``, and any number of twins; those are the queries for which
the datalog program ``Π_q`` and the sirup ``Σ_q`` are defined.
"""

from __future__ import annotations

from dataclasses import dataclass

from .structure import F, Node, Structure, T


def solitary_f_nodes(q: Structure) -> frozenset[Node]:
    """Nodes labelled F but not T."""
    return q.nodes_with_label(F) - q.nodes_with_label(T)


def solitary_t_nodes(q: Structure) -> frozenset[Node]:
    """Nodes labelled T but not F."""
    return q.nodes_with_label(T) - q.nodes_with_label(F)


def twin_nodes(q: Structure) -> frozenset[Node]:
    """FT-twins: nodes labelled by both F and T."""
    return q.nodes_with_label(F) & q.nodes_with_label(T)


def is_one_cq(q: Structure) -> bool:
    """True iff ``q`` is a 1-CQ (exactly one solitary F node)."""
    return len(solitary_f_nodes(q)) == 1


@dataclass(frozen=True)
class OneCQ:
    """A validated 1-CQ with its distinguished nodes made explicit.

    ``focus`` is the solitary F node (the variable ``x`` of rule (5));
    ``solitary_ts`` are the solitary T nodes ``y_1 .. y_n`` in a stable
    order.  The underlying structure is unchanged.
    """

    query: Structure
    focus: Node
    solitary_ts: tuple[Node, ...]

    @classmethod
    def from_structure(cls, q: Structure) -> "OneCQ":
        focuses = solitary_f_nodes(q)
        if len(focuses) != 1:
            raise ValueError(
                f"a 1-CQ needs exactly one solitary F node, got {len(focuses)}"
            )
        (focus,) = focuses
        ts = tuple(sorted(solitary_t_nodes(q), key=str))
        return cls(q, focus, ts)

    @property
    def span(self) -> int:
        """The number of solitary T nodes (the FPT parameter of Thm. 9)."""
        return len(self.solitary_ts)

    @property
    def twins(self) -> frozenset[Node]:
        return twin_nodes(self.query)

    def describe(self) -> str:
        return (
            f"1-CQ with focus {self.focus!r}, "
            f"solitary T nodes {list(self.solitary_ts)!r}, "
            f"{len(self.twins)} twins, {self.query.size()} atoms"
        )


def check_labels_sanity(q: Structure) -> list[str]:
    """Human-readable warnings about degenerate label configurations."""
    warnings = []
    if not q.nodes_with_label(F):
        warnings.append("query has no F node; (Δq, G) is trivially FO-rewritable")
    if not q.nodes_with_label(T):
        warnings.append("query has no T node")
    if not q.is_connected():
        warnings.append("query is not connected")
    return warnings
