"""Boundedness probing and UCQ rewritings (Proposition 2).

For a 1-CQ ``q``, Proposition 2 characterises boundedness of ``(Π_q, G)``
as: there is a depth ``d`` such that *every* cactus contains a
homomorphic image of some cactus of depth at most ``d``.  For focused
``q`` the same ``d`` bounds ``(Σ_q, P)``; in general Σ-boundedness
additionally requires the hom to fix the root focus.

Exact boundedness of arbitrary (dag) 1-CQs is 2ExpTime-hard (Theorem 3),
so this module provides a *depth-bounded probe*:

* :func:`probe_boundedness` examines all cactuses up to ``probe_depth``
  and reports the least ``d`` that covers them, together with the
  verdict ``BOUNDED`` (a certificate valid for the probed universe),
  or ``UNBOUNDED_EVIDENCE`` when even the deepest probed cactuses are
  not covered by anything shallower.

The exact decision procedure for the ditree Λ-CQ fragment lives in
:mod:`repro.ditree.lambda_cq`; tests cross-validate the two.

When a probe succeeds, :func:`ucq_rewriting` emits the UCQ
``C_1 ∨ .. ∨ C_m`` of all cactuses of depth <= d (the rewriting used in
the proof of Proposition 2), :func:`ucq_certain_answer` evaluates it by
homomorphism checks, bypassing the datalog engine entirely, and
:func:`ucq_certain_answers` screens a whole *family* of instances in one
pass (the batch traffic shape of
:func:`~repro.core.homengine.evaluate_batch`).

All cactus material flows through the pooled incremental
:class:`~repro.core.cactus.CactusFactory` of the query: the probe's
depth loop, a later rewriting extraction and the Σ-variant all share
the same materialised cactuses.

The batch traffic of this module routes through the shard executor of
:mod:`repro.core.runtime`: large batches (a deep probe's cactus layers,
a big :func:`ucq_certain_answers` instance family) are chunked across
the bounded process pool (``REPRO_HOM_WORKERS``), while small batches
keep the serial fast path with its shared hom-cache.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from .cactus import Cactus, iter_cactuses
from .cq import OneCQ
from .decomp import ProbeCoverage, query_width
from .errors import Answer, ResourceExhausted, governed_scope
from .homengine import evaluate_batch, evaluate_batch_governed
from .homomorphism import covers_any
from .runtime import parallel_covers_any, parallel_ucq_answers
from .structure import A, Node, Structure, T


class Verdict(enum.Enum):
    """Outcome of a depth-bounded boundedness probe."""

    BOUNDED = "bounded"
    UNBOUNDED_EVIDENCE = "unbounded-evidence"
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class ProbeResult:
    verdict: Verdict
    depth: int | None  # the covering depth d when BOUNDED
    probe_depth: int
    cactuses_examined: int
    uncovered: tuple[str, ...]  # shapes of cactuses nothing shallow maps into
    reason: str | None = None  # budget reason when INCONCLUSIVE by exhaustion

    @property
    def answer(self) -> Answer:
        """The :class:`~repro.core.errors.Answer`-compatible view of
        the probe verdict (the unified outermost-surface contract):
        TRUE for ``BOUNDED``, FALSE for ``UNBOUNDED_EVIDENCE``, and
        ``UNKNOWN(reason)`` for ``INCONCLUSIVE`` — the budget reason
        when governance tripped, ``"probe-depth"`` when the probed
        universe was simply too shallow to decide."""
        if self.verdict is Verdict.BOUNDED:
            return Answer.TRUE
        if self.verdict is Verdict.UNBOUNDED_EVIDENCE:
            return Answer.FALSE
        return Answer.unknown(self.reason or "probe-depth")

    def describe(self) -> str:
        if self.verdict is Verdict.BOUNDED:
            return (
                f"bounded at depth {self.depth} "
                f"(probed to {self.probe_depth}, "
                f"{self.cactuses_examined} cactuses)"
            )
        tail = f", {self.reason}" if self.reason else ""
        return (
            f"{self.verdict.value} (probed to {self.probe_depth}, "
            f"{self.cactuses_examined} cactuses, "
            f"{len(self.uncovered)} uncovered{tail})"
        )


def _probe_coverage(session, one_cq: OneCQ) -> ProbeCoverage | None:
    """A fresh delta warm-start coverage engine for one probe call, or
    ``None`` when the probe should keep the batch path instead.

    The coverage engine pays off exactly on *chain-shaped* cactus
    universes — span <= 1 queries, one cactus per depth, each extending
    the previous (the E3-style increasing-depth regime measured in
    ``BENCH_decomp.json``): there the per-depth delta is the whole
    workload and warm-starting beats re-solving 2x+.  Span >= 2 probes
    have exponentially bushy layers of *small* cactuses where the
    hom-cached (and, for large layers, pool-sharded) batch path wins on
    constants, so they keep it.  Cactuses also inherit the query's
    decomposition width (copies glue at single nodes), so a width > 2
    query — whose pairs would all take the engine fallback one at a
    time — steps aside as well.  ``EngineConfig.probe_warmstart`` /
    ``REPRO_PROBE_WARMSTART=0`` disables the engine outright.
    """
    if session is None:
        from ..session import default_session

        session = default_session()
    if not session.config.probe_warmstart:
        return None
    if one_cq.span > 1:
        return None
    if query_width(one_cq.query) > ProbeCoverage.MAX_WIDTH:
        return None
    return ProbeCoverage(session)


def _covered_by(
    target: Cactus,
    shallow: list[Cactus],
    require_focus: bool,
    session=None,
    coverage: ProbeCoverage | None = None,
) -> bool:
    """Does some shallow cactus map homomorphically into ``target``?

    With a :class:`~repro.core.decomp.ProbeCoverage` (the default), the
    check runs the delta warm-started decomposition DP: since cactus
    ``C(d)`` extends ``C(d-1)`` by the recorded construction delta, the
    per-bag satisfying sets of the previous depth are reused and only
    bags touched by the delta re-propagate, instead of re-solving every
    coverage check from scratch at each depth.

    Without one (``probe_warmstart=False``), it is a single batch
    :func:`~repro.core.runtime.parallel_covers_any` call: small shallow
    sets take the serial path — the target's indexes are shared across
    the whole batch and every (shallow, deep) pair goes through the
    hom-cache — while the exponentially large layers of a deep
    span->=2 probe shard across the process pool.
    """
    if coverage is not None:
        return coverage.covered_by_any(target, shallow, require_focus)
    return parallel_covers_any(
        target.structure,
        [
            (
                source.structure,
                {source.root_focus: target.root_focus}
                if require_focus
                else None,
            )
            for source in shallow
        ],
        session=session,
    )


def _probe_ckpt(session, one_cq, probe_depth, require_focus, max_cactuses):
    """The probe's checkpoint home ``(store, ns)``, or ``None``.

    The namespace digests everything that pins the probe's answers —
    query fingerprint, depth, Σ-variant flag, cactus cap — so a
    resumed probe finds exactly its own rows."""
    if session is None:
        from ..session import default_session

        session = default_session()
    store = getattr(session, "store", None)
    if (
        store is None
        or not store.enabled
        or not session.config.durable_checkpoints
    ):
        return None
    from .store import op_digest

    ns = "ckpt:" + op_digest(
        "probe",
        one_cq.query.fingerprint,
        probe_depth,
        bool(require_focus),
        max_cactuses,
    )
    return store, ns


def _encode_probe_result(result: ProbeResult) -> tuple:
    return (
        "probe-result",
        result.verdict.value,
        result.depth,
        result.probe_depth,
        result.cactuses_examined,
        tuple(result.uncovered),
        result.reason,
    )


def _decode_probe_result(value) -> "ProbeResult | None":
    """Rebuild a persisted :class:`ProbeResult`; ``None`` (recompute)
    for anything malformed — a stale checkpoint is never trusted."""
    if not (
        isinstance(value, tuple)
        and len(value) == 7
        and value[0] == "probe-result"
    ):
        return None
    try:
        verdict = Verdict(value[1])
    except ValueError:
        return None
    return ProbeResult(
        verdict, value[2], value[3], value[4], tuple(value[5]), value[6]
    )


def probe_boundedness(
    one_cq: OneCQ,
    probe_depth: int,
    require_focus: bool = False,
    max_cactuses: int | None = None,
    session=None,
) -> ProbeResult:
    """Depth-bounded test of Proposition 2's condition (c).

    Finds the least ``d < probe_depth`` such that every probed cactus of
    depth > d contains a homomorphic image of a cactus of depth <= d.
    ``require_focus=True`` checks the Σ-variant (hom fixes root focus).

    A BOUNDED verdict with ``depth=d`` means the UCQ of depth-<= d
    cactuses rewrites the query *on the probed universe*; for genuinely
    bounded queries of the paper's examples, small probe depths are
    conclusive because covering homs iterate (Example 4).  An
    UNBOUNDED_EVIDENCE verdict means the deepest probed cactuses are not
    covered by anything shallower at all.

    Cactus material streams out of the query's pooled incremental
    factory, so repeated probes (and a later rewriting extraction)
    share every materialised cactus.

    On a governed session the whole probe — cactus enumeration and
    every coverage check — shares one budget; when it trips, the probe
    returns ``INCONCLUSIVE`` with ``reason`` set (``"deadline"``,
    ``"fuel"``, ``"cactus-nodes"``) instead of hanging.

    With a durable store attached, the probe checkpoints each depth it
    settles as non-covering and persists its final settled result: a
    process killed (or deadline-tripped) mid-probe resumes past the
    settled depths, and an identical re-probe returns instantly from
    disk.  Budget-tripped INCONCLUSIVE results are never persisted —
    they depend on the budget, not the query.
    """
    ckpt = _probe_ckpt(
        session, one_cq, probe_depth, require_focus, max_cactuses
    )
    settled_depths: set[int] = set()
    if ckpt is not None:
        store, ns = ckpt
        from .store import MISS

        stored = store.get(ns, "result")
        if stored is not MISS:
            prior = _decode_probe_result(stored)
            if prior is not None:
                return prior
        for key, value in store.load_ns(ns).items():
            if (
                isinstance(key, tuple)
                and len(key) == 2
                and key[0] == "depth"
                and isinstance(key[1], int)
                and value is False
            ):
                settled_depths.add(key[1])
    result = _probe_run(
        one_cq, probe_depth, require_focus, max_cactuses, session,
        ckpt, settled_depths,
    )
    if ckpt is not None and result.reason is None:
        store, ns = ckpt
        store.write_rows(ns, [("result", _encode_probe_result(result))])
    return result


def _probe_run(
    one_cq: OneCQ,
    probe_depth: int,
    require_focus: bool,
    max_cactuses: int | None,
    session,
    ckpt,
    settled_depths: set[int],
) -> ProbeResult:
    """The probe body (see :func:`probe_boundedness`); ``ckpt`` and
    ``settled_depths`` carry the checkpoint/resume state."""
    cactuses: list[Cactus] = []
    try:
        with governed_scope(session) as budget:
            for cactus in iter_cactuses(
                one_cq, probe_depth, max_cactuses, session=session
            ):
                cactuses.append(cactus)

            def check(target: Cactus, shallow: list[Cactus]) -> bool:
                # Coverage checks are few but individually expensive,
                # so each one re-reads the clock: a tripped deadline
                # surfaces within ~one check of the cutoff even on the
                # warm-start path, whose DP carries no inner budget.
                if budget is not None:
                    budget.checkpoint()
                    budget.charge()
                return _covered_by(
                    target, shallow, require_focus, session, coverage
                )

            # Shallow-to-deep order maximises the warm-start hit rate: a
            # cactus's construction delta points at its depth-pruned
            # parent, which this order guarantees was checked (and its
            # per-bag state retained) first.
            cactuses.sort(key=lambda c: c.depth)
            by_depth: dict[int, list[Cactus]] = {}
            for cactus in cactuses:
                by_depth.setdefault(cactus.depth, []).append(cactus)
            max_seen = max(by_depth) if by_depth else 0
            coverage = _probe_coverage(session, one_cq)

            for d in range(0, probe_depth):
                if d in settled_depths:
                    # A previous identical probe durably settled this
                    # depth as non-covering; the cactus universe is a
                    # pure function of the probe inputs, so re-checking
                    # would reproduce the same False.
                    continue
                shallow = [c for c in cactuses if c.depth <= d]
                deep = [c for c in cactuses if c.depth > d]
                if not deep:
                    # No budding is possible beyond depth d: 𝔎_q is
                    # finite and the query is trivially bounded (e.g.
                    # span 0).
                    return ProbeResult(
                        Verdict.BOUNDED,
                        max_seen,
                        probe_depth,
                        len(cactuses),
                        (),
                    )
                if all(check(c, shallow) for c in deep):
                    return ProbeResult(
                        Verdict.BOUNDED, d, probe_depth, len(cactuses), ()
                    )
                if ckpt is not None:
                    # This depth is settled non-covering: durably so,
                    # before the (much more expensive) next depth runs.
                    ckpt[0].write_rows(ckpt[1], [(("depth", d), False)])

            # No d works.  Check whether the deepest layer is covered by
            # anything at all shallower; if not, this is evidence of
            # unboundedness.
            deepest = by_depth.get(max_seen, [])
            shallow = [c for c in cactuses if c.depth < max_seen]
            uncovered = tuple(
                c.shape.describe()
                for c in deepest
                if not check(c, shallow)
            )
            if uncovered:
                return ProbeResult(
                    Verdict.UNBOUNDED_EVIDENCE,
                    None,
                    probe_depth,
                    len(cactuses),
                    uncovered,
                )
            return ProbeResult(
                Verdict.INCONCLUSIVE, None, probe_depth, len(cactuses), ()
            )
    except ResourceExhausted as exc:
        return ProbeResult(
            Verdict.INCONCLUSIVE,
            None,
            probe_depth,
            len(cactuses),
            (),
            reason=exc.reason,
        )


def ucq_rewriting(one_cq: OneCQ, depth: int, session=None) -> list[Structure]:
    """The UCQ ``C_1 ∨ .. ∨ C_m`` of all cactuses of depth <= ``depth``.

    Evaluating this UCQ over a data instance computes the certain answer
    to ``(Π_q, G)`` whenever the query is bounded with bound ``depth``.
    """
    return [
        c.structure for c in iter_cactuses(one_cq, depth, session=session)
    ]


def sigma_ucq_rewriting(
    one_cq: OneCQ, depth: int, session=None
) -> list[tuple[Structure, Node]]:
    """The Σ-rewriting: pairs (C°, root focus) plus the implicit ``T(x)``
    disjunct handled by :func:`sigma_ucq_certain_answer`."""
    return [
        (c.sigma_structure(), c.root_focus)
        for c in iter_cactuses(one_cq, depth, session=session)
    ]


def ucq_certain_answer(
    ucq: list[Structure], data: Structure, session=None
) -> bool:
    """Evaluate a Boolean UCQ by one batch of homomorphism checks."""
    return covers_any(data, ucq, session=session)


def ucq_certain_answers(
    ucq: list[Structure], instances: Sequence[Structure], session=None
) -> "list[bool | Answer]":
    """Evaluate a Boolean UCQ over a whole family of data instances.

    The family-probing counterpart of :func:`ucq_certain_answer`.
    Large families of a multi-disjunct UCQ shard across the process
    pool through :func:`~repro.core.runtime.parallel_ucq_answers`:
    each worker rebuilds its instance chunk once and sweeps the whole
    UCQ against it with per-instance early exit, so the wire/rebuild
    cost is amortised over all disjuncts.  Small families — and
    single-disjunct rewritings, where there is nothing to amortise —
    keep the serial path: each disjunct sweeps the still-undecided
    instances in one :func:`~repro.core.homengine.evaluate_batch`
    (sharing its compiled source plan and the hom-cache), and
    instances already answered 'yes' drop out of later sweeps.

    Governed sessions get tri-state entries: 'yes' answers found before
    the budget tripped stay ``True`` (the certain answer is monotone in
    the disjuncts), undecided instances come back as
    ``Answer.unknown(reason)`` — a disjunct the sweep never reached
    might have flipped them.
    """
    if len(ucq) >= 2:
        sharded = parallel_ucq_answers(ucq, instances, session=session)
        if sharded is not None:
            return sharded
    with governed_scope(session) as budget:
        results: "list[bool | Answer]" = [False] * len(instances)
        if budget is None:
            for disjunct in ucq:
                pending = [i for i, done in enumerate(results) if not done]
                if not pending:
                    break
                answers = evaluate_batch(
                    disjunct,
                    [instances[i] for i in pending],
                    session=session,
                )
                for i, answer in zip(pending, answers):
                    if answer:
                        results[i] = True
            return results
        for disjunct in ucq:
            pending = [
                i for i in range(len(instances)) if results[i] is not True
            ]
            if not pending:
                break
            entries = evaluate_batch_governed(
                disjunct,
                [instances[i] for i in pending],
                session=session,
                budget=budget,
            )
            for i, entry in zip(pending, entries):
                if entry is True:
                    results[i] = True
                elif isinstance(entry, str) and results[i] is False:
                    # Never downgrade back to False once unknown: the
                    # unanswered disjunct could have been the 'yes'.
                    results[i] = Answer.unknown(entry)
        return results


def probe_family_boundedness(
    one_cq: OneCQ,
    instances: Sequence[Structure],
    depth: int,
    probe_depth: int | None = None,
    session=None,
) -> list[bool]:
    """Certain answers of ``(Π_q, G)`` over an instance family via the
    depth-``depth`` UCQ rewriting; one factory, one rewriting, one
    batched evaluation for the whole family.

    The rewriting is only a correct evaluation when the query is
    bounded with bound ``depth``, so this first runs
    :func:`probe_boundedness` (to ``probe_depth``, default ``depth +
    1``) and raises :class:`ValueError` unless the probe certifies a
    covering depth ``<= depth`` — never silently returning
    false-negative answers for an unbounded or deeper-bounded query.
    Callers who have certified boundedness by other means (e.g. the
    exact Λ-CQ decider) can call :func:`ucq_certain_answers` on
    :func:`ucq_rewriting` directly.
    """
    probe = probe_boundedness(
        one_cq,
        probe_depth if probe_depth is not None else depth + 1,
        session=session,
    )
    if probe.verdict is not Verdict.BOUNDED or (probe.depth or 0) > depth:
        raise ValueError(
            f"the depth-{depth} rewriting is not a certified evaluation "
            f"of (Π_q, G): probe verdict {probe.describe()!r}"
        )
    return ucq_certain_answers(
        ucq_rewriting(one_cq, depth, session=session), instances, session
    )


def sigma_ucq_certain_answer(
    rewriting: list[tuple[Structure, Node]],
    data: Structure,
    node: Node,
    session=None,
) -> bool:
    """Evaluate the Σ-rewriting at ``node``: ``T(node)`` or some C° maps
    into the data with its root focus on ``node``."""
    if data.has_label(node, T):
        return True
    return covers_any(
        data,
        ((cq, {focus: node}) for cq, focus in rewriting),
        session=session,
    )


def pi_rewriting_from_sigma(
    one_cq: OneCQ, sigma_rewriting: list[tuple[Structure, Node]]
) -> list[Structure]:
    """Proposition 2, (a) => (b): compose a Σ-rewriting into a Π-rewriting.

    If ``Phi(x)`` rewrites ``(Sigma_q, P)``, then
    ``exists x, y_1..y_n, z. F(x) and q' and Phi(y_1) and .. and Phi(y_n)``
    rewrites ``(Pi_q, G)``.  With ``Phi`` a UCQ (``T(x)`` plus the C°
    disjuncts), the composition distributes into one disjunct per choice
    of a ``Phi``-disjunct at every solitary T node: the T-choice keeps
    the original atom, a C°-choice glues a fresh copy of C° at its root
    focus with the ``T`` label dropped and ``A`` added.
    """
    import itertools

    q = one_cq.query
    # Per solitary T node: choice None = keep T(y); choice (cq, focus)
    # = glue that disjunct.
    choices: list[list[tuple[Structure, Node] | None]] = [
        [None] + list(sigma_rewriting) for _ in one_cq.solitary_ts
    ]
    disjuncts: list[Structure] = []
    for combo in itertools.product(*choices):
        result = q
        for index, (y, choice) in enumerate(zip(one_cq.solitary_ts, combo)):
            if choice is None:
                continue
            glued, mapping = choice[0].with_fresh_nodes(f"phi{index}")
            glued = glued.rename({mapping[choice[1]]: y})
            result = result.relabel_node(y, remove=(T,), add=(A,))
            result = result.union(glued)
        disjuncts.append(result)
    return disjuncts
