"""Sharded parallel batch evaluation: wire format + bounded process pool.

The batch entry points of :mod:`repro.core.homengine` —
:func:`~repro.core.homengine.covers_any` (many sources, one target) and
:func:`~repro.core.homengine.evaluate_batch` (one query, many targets)
— are embarrassingly parallel across their batch axis.  This module
adds the process-pool story the engine was designed around:

Wire format
===========

:func:`to_wire` flattens a :class:`~repro.core.structure.Structure` to
a compact picklable triple ``(node_order, unary, binary)`` with facts
referring to nodes by their interning index; :func:`from_wire` rebuilds
the structure *preserving the interning order* and leaves every index
lazy, so a worker only pays for the indexes its chunk actually touches.
Shipping the wire form instead of pickling structures directly avoids
serialising the lazily-built engine indexes (bitset masks, dense
matrices, compiled source plans), which can dwarf the facts themselves.

Pool
====

A single module-level :class:`~concurrent.futures.ProcessPoolExecutor`,
created lazily and bounded by ``REPRO_HOM_WORKERS`` (default: the
machine's CPU count; ``<= 1`` disables parallelism entirely).
:func:`configure_pool` changes the worker count or the
``min_batch`` threshold at runtime; :func:`shutdown_pool` releases the
workers.  Pool creation failure (sandboxes without process support)
permanently degrades to the serial path — never an error.

Sharded entry points
====================

:func:`parallel_evaluate_batch` and :func:`parallel_covers_any` mirror
their serial counterparts exactly.  Batches smaller than ``min_batch``
(``REPRO_HOM_PARALLEL_MIN``, default 24) — and all batches when the
pool is disabled or unavailable — take today's serial fast path,
sharing the in-process hom-cache; large batches are chunked across the
workers.  ``covers_any`` keeps its early-exit semantics: the scan
returns as soon as any chunk reports a hit and cancels chunks that
have not started.

:func:`parallel_screen` is the many-queries x one-family shape (zoo
bulk classification, UCQ disjunct sweeps, E1-style tables): the family
is wired once, each worker rebuilds its chunk once, and every query is
answered against the rebuilt chunk — amortising the per-instance
serialisation and index-rebuild cost across the whole query pool,
which is what makes sharding profitable even when a single query's
search time is comparable to the rebuild.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterable, Sequence

from . import homengine
from .structure import BinaryFact, Node, Structure, UnaryFact

Wire = tuple  # (node_order, unary, binary) — see to_wire

__all__ = [
    "PoolInfo",
    "configure_pool",
    "from_wire",
    "parallel_covers_any",
    "parallel_evaluate_batch",
    "parallel_screen",
    "parallel_ucq_answers",
    "pool_info",
    "shutdown_pool",
    "to_wire",
]


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------


def to_wire(structure: Structure) -> Wire:
    """A compact picklable form of ``structure``.

    ``(node_order, unary, binary)`` with ``unary`` a tuple of
    ``(label, node_index)`` pairs and ``binary`` a tuple of
    ``(pred, src_index, dst_index)`` triples.  Node names themselves
    appear once (in ``node_order``), so composite cactus node names are
    not repeated per fact, and the receiving side rebuilds the same
    interning order — fingerprints and bitset positions survive the
    round trip.  Fact order is whatever the frozensets iterate (the
    receiving side rebuilds sets, and sorting here would put an
    ``O(E log E)`` toll on the parent's shard-dispatch hot path).
    """
    index = structure.node_index
    unary = tuple(
        (f.label, index[f.node]) for f in structure.unary_facts
    )
    binary = tuple(
        (f.pred, index[f.src], index[f.dst])
        for f in structure.binary_facts
    )
    return (structure.node_order, unary, binary)


def from_wire(wire: Wire) -> Structure:
    """Rebuild a :class:`Structure` from :func:`to_wire` output.

    The wire's node order becomes the structure's interning order;
    everything else (label maps, adjacency, bitset/matrix indexes,
    fingerprint) stays lazy and is rebuilt in the receiving process on
    first use.
    """
    order, unary, binary = wire
    order = tuple(order)
    s = Structure(
        order,
        (UnaryFact(label, order[i]) for label, i in unary),
        (BinaryFact(pred, order[si], order[di]) for pred, si, di in binary),
    )
    s._node_order = order
    return s


def _freeze_seed(seed) -> tuple | None:
    if not seed:
        return None
    return tuple(seed.items())


# ----------------------------------------------------------------------
# Worker entry points (must be importable top-level functions)
# ----------------------------------------------------------------------


def _worker_evaluate_chunk(
    query_wire: Wire, instance_wires: list[Wire], backend: str | None
) -> list[bool]:
    query = from_wire(query_wire)
    return homengine.evaluate_batch(
        query, (from_wire(w) for w in instance_wires), backend=backend
    )


def _worker_ucq_chunk(
    disjunct_wires: list[Wire],
    instance_wires: list[Wire],
    backend: str | None,
) -> list[bool]:
    disjuncts = [from_wire(w) for w in disjunct_wires]
    answers: list[bool] = []
    for wire in instance_wires:
        instance = from_wire(wire)
        answers.append(
            any(
                homengine.has_homomorphism(d, instance, backend=backend)
                for d in disjuncts
            )
        )
    return answers


def _worker_screen_chunk(
    query_wires: list[Wire],
    instance_wires: list[Wire],
    backend: str | None,
) -> list[list[bool]]:
    queries = [from_wire(w) for w in query_wires]
    instances = [from_wire(w) for w in instance_wires]
    return [
        homengine.evaluate_batch(q, instances, backend=backend)
        for q in queries
    ]


def _worker_covers_chunk(
    target_wire: Wire,
    pairs: list[tuple[Wire, tuple | None]],
    backend: str | None,
) -> bool:
    target = from_wire(target_wire)
    for source_wire, seed_items in pairs:
        if homengine.has_homomorphism(
            from_wire(source_wire),
            target,
            seed=dict(seed_items) if seed_items else None,
            backend=backend,
        ):
            return True
    return False


# ----------------------------------------------------------------------
# Pool management
# ----------------------------------------------------------------------


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


_workers = _env_int("REPRO_HOM_WORKERS", os.cpu_count() or 1)
_min_batch = _env_int("REPRO_HOM_PARALLEL_MIN", 24)
_pool: ProcessPoolExecutor | None = None
_pool_size = 0  # max_workers the live pool was created with
_pool_broken = False
_pool_failures = 0  # consecutive batch failures since the last configure
_MAX_POOL_FAILURES = 2


@dataclass(frozen=True)
class PoolInfo:
    """Configuration and liveness of the shard executor."""

    workers: int
    min_batch: int
    running: bool
    broken: bool


def pool_info() -> PoolInfo:
    return PoolInfo(_workers, _min_batch, _pool is not None, _pool_broken)


def configure_pool(
    workers: int | None = None, min_batch: int | None = None
) -> None:
    """Change the worker count and/or the serial-fallback threshold.

    ``workers <= 1`` disables parallelism.  An existing pool is shut
    down when the worker count changes (the next large batch respawns
    one); a previously failed spawn is retried after reconfiguration.
    """
    global _workers, _min_batch, _pool_broken, _pool_failures
    if workers is not None and workers != _workers:
        shutdown_pool()
        _workers = workers
    if min_batch is not None:
        _min_batch = min_batch
    # Any reconfiguration retries a previously failed spawn or a pool
    # taken out of service by repeated worker failures — the operator
    # asking for a (re)configuration is the signal to try again.
    _pool_broken = False
    _pool_failures = 0


def shutdown_pool() -> None:
    """Stop the worker processes (they respawn lazily when next needed)."""
    global _pool
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None


def _get_pool() -> ProcessPoolExecutor | None:
    """The shared executor, or ``None`` when parallelism is unavailable.

    Always sized by the *configured* worker count: a per-call
    ``workers=`` override gates the serial/parallel decision and caps
    the chunk fan-out, but never creates or resizes the shared pool
    (call :func:`configure_pool` for that).
    """
    global _pool, _pool_broken, _pool_size
    if _workers <= 1 or _pool_broken:
        return None
    if _pool is None:
        try:
            _pool = ProcessPoolExecutor(max_workers=_workers)
            _pool_size = _workers
        except (OSError, ValueError):  # no process support in this sandbox
            _pool_broken = True
            return None
    return _pool


def _chunk(items: Sequence, parts: int) -> list[list]:
    """Split ``items`` into at most ``parts`` contiguous, near-equal runs."""
    parts = max(1, min(parts, len(items)))
    size, extra = divmod(len(items), parts)
    chunks = []
    start = 0
    for i in range(parts):
        end = start + size + (1 if i < extra else 0)
        chunks.append(list(items[start:end]))
        start = end
    return chunks


def _shard_chunks(items: Sequence, eff_workers: int, threshold: int):
    """Gate the parallel path and split ``items`` into worker chunks.

    The one place the serial-fallback policy lives: small batch,
    single-worker override, or no usable pool all return
    ``(None, None)`` — the caller then takes its serial path.
    """
    if eff_workers <= 1 or len(items) < threshold:
        return None, None
    pool = _get_pool()
    if pool is None:
        return None, None
    return pool, _chunk(items, min(eff_workers, _pool_size) * 2)


def _sharded_ordered(items, eff_workers, threshold, worker, make_args):
    """Run ``worker`` over chunks of ``items``, collecting in order.

    The shared scaffolding of the order-preserving entry points:
    gate/chunk via :func:`_shard_chunks`, submit one task per chunk
    (``make_args(chunk)`` builds the argument tuple, and is only
    called on the parallel path, so shared wire forms are not built
    for serial batches), and return the per-chunk results in input
    order — or ``None`` for the serial path, including when a worker
    failed mid-run (after :func:`_mark_pool_failed` bookkeeping).
    """
    global _pool_failures
    pool, chunks = _shard_chunks(items, eff_workers, threshold)
    if pool is None:
        return None
    try:
        futures = [
            pool.submit(worker, *make_args(chunk)) for chunk in chunks
        ]
        results = [future.result() for future in futures]
    except Exception:
        _mark_pool_failed()
        return None
    _pool_failures = 0  # a healthy round clears the failure streak
    return results


# ----------------------------------------------------------------------
# Sharded batch entry points
# ----------------------------------------------------------------------


def parallel_evaluate_batch(
    query: Structure,
    instances: Iterable[Structure],
    *,
    backend: str | None = None,
    workers: int | None = None,
    min_batch: int | None = None,
) -> list[bool]:
    """:func:`~repro.core.homengine.evaluate_batch`, sharded.

    Small batches (fewer than ``min_batch`` instances), a single-worker
    configuration, and pool-less sandboxes all take the serial path —
    byte-for-byte today's behaviour, hom-cache included.  Large batches
    are split into two chunks per worker (for load balancing) and
    evaluated in worker processes that rebuild the structures from the
    wire format; result order matches the input order.  A per-call
    ``workers=`` override gates the serial/parallel decision and caps
    this call's chunk fan-out; the shared pool itself is sized by
    :func:`configure_pool` / ``REPRO_HOM_WORKERS``.
    """
    instances = list(instances)
    shared: dict = {}

    def make_args(chunk):
        if "query" not in shared:
            shared["query"] = to_wire(query)
        return (shared["query"], [to_wire(s) for s in chunk], backend)

    chunk_results = _sharded_ordered(
        instances,
        _workers if workers is None else workers,
        _min_batch if min_batch is None else min_batch,
        _worker_evaluate_chunk,
        make_args,
    )
    if chunk_results is None:
        # Serial fast path — also the recovery route when a worker
        # failed mid-run (a broken pool must never take the answer
        # down with it).
        return homengine.evaluate_batch(query, instances, backend=backend)
    return [answer for chunk in chunk_results for answer in chunk]


def parallel_screen(
    queries: Sequence[Structure],
    instances: Iterable[Structure],
    *,
    backend: str | None = None,
    workers: int | None = None,
    min_batch: int | None = None,
) -> list[list[bool]]:
    """Evaluate a pool of Boolean CQs over one instance family, sharded.

    Returns one answer vector per query, ``result[qi][di]`` being the
    answer of ``queries[qi]`` on the ``di``-th instance — exactly
    ``[evaluate_batch(q, instances) for q in queries]``, which is also
    the serial fallback.  The parallel path shards by *instances*: the
    family is wired once, each worker rebuilds its chunk once and
    answers every query against it, so the per-instance serialisation
    and index-rebuild cost is amortised over the whole query pool.
    This is the bulk-classification traffic shape (a zoo of queries
    screened over one :func:`~repro.workloads.generators.instance_family`).
    """
    queries = list(queries)
    instances = list(instances)
    if not queries:
        return []
    shared: dict = {}

    def make_args(chunk):
        if "queries" not in shared:
            shared["queries"] = [to_wire(q) for q in queries]
        return (shared["queries"], [to_wire(s) for s in chunk], backend)

    chunk_results = _sharded_ordered(
        instances,
        _workers if workers is None else workers,
        _min_batch if min_batch is None else min_batch,
        _worker_screen_chunk,
        make_args,
    )
    if chunk_results is None:
        return [
            homengine.evaluate_batch(q, instances, backend=backend)
            for q in queries
        ]
    results: list[list[bool]] = [[] for _ in queries]
    for chunk_answers in chunk_results:
        for qi, answers in enumerate(chunk_answers):
            results[qi].extend(answers)
    return results


def parallel_ucq_answers(
    disjuncts: Sequence[Structure],
    instances: Iterable[Structure],
    *,
    backend: str | None = None,
    workers: int | None = None,
    min_batch: int | None = None,
) -> list[bool] | None:
    """Certain answers of a Boolean UCQ over a family, sharded.

    ``result[i]`` is true iff *some* disjunct maps into the ``i``-th
    instance.  Shards by instances: each worker rebuilds its chunk once
    and sweeps the whole UCQ against it with per-instance early exit,
    so the per-instance wire/rebuild cost is amortised over all
    disjuncts (the reason this beats one
    :func:`parallel_evaluate_batch` call per disjunct, which would
    re-ship the family every sweep).  Returns ``None`` when the batch
    is below ``min_batch`` or the pool is unavailable — the caller
    should then take its serial path
    (:func:`repro.core.boundedness.ucq_certain_answers` keeps the
    pending-filtered sweep with the shared hom-cache).
    """
    disjuncts = list(disjuncts)
    instances = list(instances)
    if not disjuncts or not instances:
        return None
    shared: dict = {}

    def make_args(chunk):
        if "disjuncts" not in shared:
            shared["disjuncts"] = [to_wire(d) for d in disjuncts]
        return (shared["disjuncts"], [to_wire(s) for s in chunk], backend)

    chunk_results = _sharded_ordered(
        instances,
        _workers if workers is None else workers,
        _min_batch if min_batch is None else min_batch,
        _worker_ucq_chunk,
        make_args,
    )
    if chunk_results is None:
        return None
    return [answer for chunk in chunk_results for answer in chunk]


def parallel_covers_any(
    target: Structure,
    sources: Iterable[Structure | tuple[Structure, homengine.Seed | None]],
    seeds: Sequence[homengine.Seed | None] | None = None,
    *,
    backend: str | None = None,
    workers: int | None = None,
    min_batch: int | None = None,
) -> bool:
    """:func:`~repro.core.homengine.covers_any`, sharded.

    Accepts the same source/seed conventions as the serial API.  Small
    batches stay serial (lazy consumption, early exit, shared cache);
    large batches ship one chunk of (source, seed) pairs per worker and
    return as soon as any chunk reports a hit, cancelling chunks that
    have not started.
    """
    global _pool_failures
    pairs = list(homengine._source_seed_pairs(sources, seeds))
    pool, chunks = _shard_chunks(
        pairs,
        _workers if workers is None else workers,
        _min_batch if min_batch is None else min_batch,
    )
    if pool is None:
        return homengine.covers_any(target, pairs, backend=backend)
    target_wire = to_wire(target)
    try:
        pending = {
            pool.submit(
                _worker_covers_chunk,
                target_wire,
                [
                    (to_wire(s), _freeze_seed(seed))
                    for s, seed in chunk
                ],
                backend,
            )
            for chunk in chunks
        }
        # Early exit: return on the first chunk that reports a hit and
        # cancel chunks that have not started (this wait loop is why
        # covers_any does not share _sharded_ordered's collection).
        covered = False
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            if any(f.result() for f in done):
                for f in pending:
                    f.cancel()
                covered = True
                break
    except Exception:
        _mark_pool_failed()
        return homengine.covers_any(target, pairs, backend=backend)
    _pool_failures = 0
    return covered


def _mark_pool_failed() -> None:
    """Drop a pool that raised; the next large batch respawns a fresh
    one — but a deterministic failure (e.g. a node type whose module
    workers cannot import) must not pay spawn + wire + serial-recompute
    on every call, so repeated failures take the pool out of service
    until the next :func:`configure_pool`."""
    global _pool, _pool_broken, _pool_failures
    if _pool is not None:
        try:
            _pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        _pool = None
    _pool_failures += 1
    if _pool_failures >= _MAX_POOL_FAILURES:
        _pool_broken = True
