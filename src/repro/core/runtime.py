"""Sharded parallel batch evaluation: wire format + bounded process pool.

The batch entry points of :mod:`repro.core.homengine` —
:func:`~repro.core.homengine.covers_any` (many sources, one target) and
:func:`~repro.core.homengine.evaluate_batch` (one query, many targets)
— are embarrassingly parallel across their batch axis.  This module
adds the process-pool story the engine was designed around:

Wire format
===========

:func:`to_wire` flattens a :class:`~repro.core.structure.Structure` to
a compact picklable triple ``(node_order, unary, binary)`` with facts
referring to nodes by their interning index; :func:`from_wire` rebuilds
the structure *preserving the interning order* and leaves every index
lazy, so a worker only pays for the indexes its chunk actually touches.
Shipping the wire form instead of pickling structures directly avoids
serialising the lazily-built engine indexes (bitset masks, dense
matrices, compiled source plans), which can dwarf the facts themselves.

Each worker process additionally keeps a small content-keyed LRU of
rebuilt structures (:func:`from_wire_cached`, bounded by the session's
``worker_cache_size`` / ``REPRO_HOM_WORKER_CACHE``): the wire triple is
itself the structure's content fingerprint in serialised form, so a
family screened repeatedly — back-to-back :func:`parallel_screen`
sweeps over the same instances — skips the rebuild *and* reuses every
index the worker already built on those structures.

Pool
====

Each :class:`~repro.session.Session` owns one :class:`PoolRuntime`: a
lazily-created :class:`~concurrent.futures.ProcessPoolExecutor` bounded
by the session's worker count (``EngineConfig.workers``; default the
machine's CPU count, ``<= 1`` after resolution disables parallelism).
:func:`configure_pool` changes the worker count or the ``min_batch``
threshold of the *default* session at runtime; :func:`shutdown_pool`
releases its workers.  Pool creation failure (sandboxes without process
support) permanently degrades that runtime to the serial path — never
an error.

Sharded entry points
====================

:func:`parallel_evaluate_batch` and :func:`parallel_covers_any` mirror
their serial counterparts exactly.  Batches smaller than ``min_batch``
(``EngineConfig.parallel_min``, default 24) — and all batches when the
pool is disabled or unavailable — take the serial fast path, sharing
the in-process hom-cache; large batches are chunked across the
workers.  ``covers_any`` keeps its early-exit semantics: the scan
returns as soon as any chunk reports a hit and cancels chunks that
have not started.

:func:`parallel_screen` is the many-queries x one-family shape (zoo
bulk classification, UCQ disjunct sweeps, E1-style tables): the family
is wired once, each worker rebuilds its chunk once, and every query is
answered against the rebuilt chunk — amortising the per-instance
serialisation and index-rebuild cost across the whole query pool.
:func:`parallel_screen_stream` is its streaming variant: a generator of
:class:`ScreenShard` results in *completion order* (not chunk order),
so a long screen surfaces its first answers while later shards are
still running — the consumer behind
:meth:`repro.session.Session.screen` with ``stream=True``.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import signal
import time
import weakref
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from . import homengine
from .config import BACKEND_CHOICES, EngineConfig
from .errors import (
    Answer,
    ResourceExhausted,
    UnknownSemiring,
    WorkerFailure,
    governed_scope,
)
from .semiring import Evaluation, Semiring, resolve_semiring
from .structure import BinaryFact, Structure, UnaryFact

# The failure types that mean "the pool (or one worker) let us down" —
# the only ones the sharded entry points are allowed to swallow into
# recovery.  Anything else raised out of a worker is an engine bug and
# must propagate to the caller, not silently degrade to the serial
# path.
_POOL_FAILURES = (
    BrokenProcessPool,
    CancelledError,
    FuturesTimeout,
    TimeoutError,
    OSError,
    pickle.PickleError,
)

Wire = tuple  # (node_order, unary, binary) — see to_wire

__all__ = [
    "PoolInfo",
    "PoolRuntime",
    "ScreenShard",
    "configure_pool",
    "from_wire",
    "from_wire_cached",
    "parallel_covers_any",
    "parallel_evaluate_batch",
    "parallel_screen",
    "parallel_screen_stream",
    "parallel_semiring_batch",
    "parallel_ucq_answers",
    "pool_info",
    "shutdown_pool",
    "to_wire",
]


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------


def to_wire(structure: Structure) -> Wire:
    """A compact picklable form of ``structure``.

    ``(node_order, unary, binary)`` with ``unary`` a tuple of
    ``(label, node_index)`` pairs and ``binary`` a tuple of
    ``(pred, src_index, dst_index)`` triples.  Node names themselves
    appear once (in ``node_order``), so composite cactus node names are
    not repeated per fact, and the receiving side rebuilds the same
    interning order — fingerprints and bitset positions survive the
    round trip.  Fact order is whatever the frozensets iterate (the
    receiving side rebuilds sets, and sorting here would put an
    ``O(E log E)`` toll on the parent's shard-dispatch hot path).
    """
    index = structure.node_index
    unary = tuple(
        (f.label, index[f.node]) for f in structure.unary_facts
    )
    binary = tuple(
        (f.pred, index[f.src], index[f.dst])
        for f in structure.binary_facts
    )
    return (structure.node_order, unary, binary)


def from_wire(wire: Wire) -> Structure:
    """Rebuild a :class:`Structure` from :func:`to_wire` output.

    The wire's node order becomes the structure's interning order;
    everything else (label maps, adjacency, bitset/matrix indexes,
    fingerprint) stays lazy and is rebuilt in the receiving process on
    first use.
    """
    order, unary, binary = wire
    order = tuple(order)
    s = Structure(
        order,
        (UnaryFact(label, order[i]) for label, i in unary),
        (BinaryFact(pred, order[si], order[di]) for pred, si, di in binary),
    )
    s._node_order = order
    return s


# Per-process rebuilt-structure LRU, keyed on the wire triple itself
# (node order + facts — a serialised content fingerprint; two equal
# wires rebuild identical structures, so the cached object, along with
# every index lazily built on it since, is a sound substitute).  Lives
# at module level so it persists across tasks inside one pool worker;
# the parent process never populates it.
_WIRE_CACHE: OrderedDict[Wire, Structure] = OrderedDict()


def from_wire_cached(wire: Wire, limit: int) -> Structure:
    """:func:`from_wire` through the per-process LRU (``limit <= 0``
    bypasses the cache entirely)."""
    if limit <= 0:
        return from_wire(wire)
    cached = _WIRE_CACHE.get(wire)
    if cached is None:
        cached = from_wire(wire)
        _WIRE_CACHE[wire] = cached
        while len(_WIRE_CACHE) > limit:
            _WIRE_CACHE.popitem(last=False)
    else:
        _WIRE_CACHE.move_to_end(wire)
    return cached


def _freeze_seed(seed) -> tuple | None:
    if not seed:
        return None
    return tuple(seed.items())


# ----------------------------------------------------------------------
# Worker entry points (must be importable top-level functions)
# ----------------------------------------------------------------------

# One session per worker process, keyed by the (picklable, frozen)
# EngineConfig that shipped with the task.  Tasks from the same calling
# session reuse it — along with its hom-cache — across the pool's
# lifetime; a task from a differently-configured session swaps it out.
_WORKER_SESSION: tuple[EngineConfig, object] | None = None

# Fault injection (test-only, driven by ``EngineConfig.fault_plan``):
# the per-process ordinal counts chunk tasks this worker has started —
# only while a fault plan ships, so production workers never touch it —
# and the pending action signals "corrupt" to the chunk function that
# triggered it.
_FAULT_ORDINAL = 0
_FAULT_ACTION: str | None = None


def _maybe_inject_fault(config: EngineConfig | None) -> None:
    """Fire the configured fault, if this worker task is scheduled for
    one.  ``crash`` hard-exits the worker (simulating a segfault),
    ``kill`` SIGKILLs it (uncatchable — no atexit, no buffered-write
    flush — the honest ``kill -9``), ``hang`` sleeps far past any sane
    shard timeout, ``corrupt`` arms :func:`_take_fault` so the chunk
    function returns a wrong-shaped result.  Never fires in the parent
    process, so the in-parent serial quarantine path always computes
    real answers."""
    global _FAULT_ORDINAL, _FAULT_ACTION
    _FAULT_ACTION = None
    if config is None or not config.fault_plan:
        return
    if multiprocessing.parent_process() is None:
        return
    ordinal = _FAULT_ORDINAL
    _FAULT_ORDINAL += 1
    for mode, when in config.fault_plan:
        if when == ordinal:
            if mode == "crash":
                os._exit(86)
            if mode == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            if mode == "hang":
                time.sleep(600)
            _FAULT_ACTION = mode
            return


def _take_fault() -> str | None:
    """Consume the pending injected fault action, if any."""
    global _FAULT_ACTION
    action = _FAULT_ACTION
    _FAULT_ACTION = None
    return action


def _worker_session(config: EngineConfig | None):
    """The worker-side session honouring the calling session's resolved
    config (``None`` — a task from an old-style caller — falls back to
    the worker's env-built default session)."""
    global _WORKER_SESSION
    _maybe_inject_fault(config)
    if config is None:
        return None
    if _WORKER_SESSION is not None and _WORKER_SESSION[0] == config:
        return _WORKER_SESSION[1]
    from ..session import Session

    session = Session(config)
    _WORKER_SESSION = (config, session)
    return session


def _worker_evaluate_chunk(
    query_wire: Wire,
    instance_wires: list[Wire],
    backend: str | None,
    cache_limit: int = 0,
    use_cache: bool | None = None,
    config: EngineConfig | None = None,
) -> "list[bool | str]":
    session = _worker_session(config)
    if _take_fault() == "corrupt":
        return "corrupt"  # type: ignore[return-value]
    query = from_wire_cached(query_wire, cache_limit)
    if config is not None and config.governed:
        # One budget per chunk task: each worker gets the full
        # per-operation fuel/deadline for its shard, and exhaustion
        # travels back as reason-string entries, not an exception.
        with governed_scope(session):
            return homengine.evaluate_batch_governed(
                query,
                [from_wire_cached(w, cache_limit) for w in instance_wires],
                backend=backend,
                use_cache=use_cache,
                session=session,
            )
    return homengine.evaluate_batch(
        query,
        (from_wire_cached(w, cache_limit) for w in instance_wires),
        backend=backend,
        use_cache=use_cache,
        session=session,
    )


def _worker_semiring_chunk(
    query_wire: Wire,
    instance_wires: list[Wire],
    semiring_name: str,
    weights_wire: tuple | None,
    backend: str | None,
    cache_limit: int = 0,
    use_cache: bool | None = None,
    config: EngineConfig | None = None,
) -> "list[tuple]":
    """One semiring-tagged shard: evaluate the query over a chunk of
    instances under a named (registry-resolved) semiring.

    Answers travel per-dtype through the semiring's wire codec:
    entries are ``("ok", sr.encode(value))`` or — once a governed
    budget trips — ``("x", reason)`` for every remaining slot, the
    semiring analogue of the reason-string tail of
    :func:`~repro.core.homengine.evaluate_batch_governed`.
    """
    session = _worker_session(config)
    if _take_fault() == "corrupt":
        return "corrupt"  # type: ignore[return-value]
    sr = resolve_semiring(semiring_name)
    weights = (
        None
        if weights_wire is None
        else {fact: sr.decode(val) for fact, val in weights_wire}
    )
    query = from_wire_cached(query_wire, cache_limit)
    out: "list[tuple]" = []
    reason: str | None = None
    with governed_scope(session) as budget:
        for wire in instance_wires:
            if reason is not None:
                out.append(("x", reason))
                continue
            try:
                if budget is not None:
                    budget.checkpoint()
                ev = homengine.semiring_evaluate(
                    query,
                    from_wire_cached(wire, cache_limit),
                    sr,
                    weights=weights,
                    backend=backend,
                    use_cache=use_cache,
                    session=session,
                )
                out.append(("ok", sr.encode(ev.value)))
            except ResourceExhausted as exc:
                reason = exc.reason
                out.append(("x", reason))
    return out


def _worker_ucq_chunk(
    disjunct_wires: list[Wire],
    instance_wires: list[Wire],
    backend: str | None,
    cache_limit: int = 0,
    use_cache: bool | None = None,
    config: EngineConfig | None = None,
) -> "list[bool | str]":
    session = _worker_session(config)
    if _take_fault() == "corrupt":
        return "corrupt"  # type: ignore[return-value]
    disjuncts = [from_wire_cached(w, cache_limit) for w in disjunct_wires]
    answers: "list[bool | str]" = []
    with governed_scope(session) as budget:
        reason: str | None = None
        for wire in instance_wires:
            if reason is not None:
                answers.append(reason)
                continue
            try:
                if budget is not None:
                    budget.checkpoint()
                instance = from_wire_cached(wire, cache_limit)
                answers.append(
                    any(
                        homengine.has_homomorphism(
                            d, instance, backend=backend,
                            use_cache=use_cache, session=session,
                        )
                        for d in disjuncts
                    )
                )
            except ResourceExhausted as exc:
                reason = exc.reason
                answers.append(reason)
    return answers


def _worker_screen_chunk(
    query_wires: list[Wire],
    instance_wires: list[Wire],
    backend: str | None,
    cache_limit: int = 0,
    use_cache: bool | None = None,
    config: EngineConfig | None = None,
) -> "list[list[bool | str]]":
    session = _worker_session(config)
    if _take_fault() == "corrupt":
        return []  # wrong row count for any non-empty query pool
    queries = [from_wire_cached(w, cache_limit) for w in query_wires]
    instances = [from_wire_cached(w, cache_limit) for w in instance_wires]
    if config is not None and config.governed:
        with governed_scope(session):
            return [
                homengine.evaluate_batch_governed(
                    q, instances, backend=backend, use_cache=use_cache,
                    session=session,
                )
                for q in queries
            ]
    return [
        homengine.evaluate_batch(
            q, instances, backend=backend, use_cache=use_cache,
            session=session,
        )
        for q in queries
    ]


def _worker_covers_chunk(
    target_wire: Wire,
    pairs: list[tuple[Wire, tuple | None]],
    backend: str | None,
    cache_limit: int = 0,
    use_cache: bool | None = None,
    config: EngineConfig | None = None,
) -> "bool | str":
    session = _worker_session(config)
    if _take_fault() == "corrupt":
        return None  # type: ignore[return-value]
    target = from_wire_cached(target_wire, cache_limit)
    with governed_scope(session) as budget:
        try:
            for source_wire, seed_items in pairs:
                if budget is not None:
                    budget.checkpoint()
                if homengine.has_homomorphism(
                    from_wire_cached(source_wire, cache_limit),
                    target,
                    seed=dict(seed_items) if seed_items else None,
                    backend=backend,
                    use_cache=use_cache,
                    session=session,
                ):
                    return True
        except ResourceExhausted as exc:
            return exc.reason
    return False


# ----------------------------------------------------------------------
# Pool management
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PoolInfo:
    """Configuration and liveness of one session's shard executor.

    ``broken`` now means *quarantined*: the pool is resting out a
    cooldown after repeated failures and will be health-probed again
    once it elapses.  ``last_fallback`` records why the most recent
    serial fallback or quarantine happened (``None`` if never).
    """

    workers: int
    min_batch: int
    running: bool
    broken: bool
    failures: int = 0
    last_fallback: str | None = None


_MAX_POOL_FAILURES = 2

# Every live runtime, for the atexit sweep: an interpreter exiting with
# a still-open session (a REPL, a script that never calls close())
# must not leave orphaned worker processes behind.  Weak references —
# garbage-collected runtimes need no sweep, and registering in
# __init__ must not keep them alive.
_LIVE_RUNTIMES: "weakref.WeakSet[PoolRuntime]" = weakref.WeakSet()


def _shutdown_all_pools() -> None:
    for rt in list(_LIVE_RUNTIMES):
        try:
            rt.shutdown()
        except Exception:
            pass


atexit.register(_shutdown_all_pools)


class PoolRuntime:
    """The mutable shard-executor state of one session.

    Owns the (lazily created) :class:`ProcessPoolExecutor`, the
    serial-fallback threshold, the failure bookkeeping, and the
    worker-side cache limit shipped with every task.  Sessions never
    share a runtime, so two differently-sized pools can coexist in one
    process.

    Failure policy: a worker fault (crash, hang past the shard
    timeout, corrupt result, broken pool) drops the pool and requeues
    the failed shards once on a fresh one; a second consecutive
    failure *quarantines* the runtime — serial execution only — for
    ``pool_cooldown_ms``, after which the next large batch
    health-probes a new pool.  Quarantine is a cooldown, not a death
    sentence: transient faults (an OOM-killed worker, a container
    hiccup) heal on their own, while a deterministically crashing
    workload stops burning spawn + wire + recompute on every call.
    """

    def __init__(self, config: EngineConfig) -> None:
        self.workers = config.effective_workers()
        self.min_batch = config.parallel_min
        self.worker_cache = config.worker_cache_size
        self.shard_timeout = (
            None
            if config.shard_timeout_ms is None
            else config.shard_timeout_ms / 1000.0
        )
        self.cooldown = config.pool_cooldown_ms / 1000.0
        self.last_fallback: str | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._pool_size = 0  # max_workers the live pool was created with
        self._quarantined_until: float | None = None
        self._failures = 0  # consecutive failures since last configure
        _LIVE_RUNTIMES.add(self)

    def _quarantined(self) -> bool:
        return (
            self._quarantined_until is not None
            and time.monotonic() < self._quarantined_until
        )

    def info(self) -> PoolInfo:
        return PoolInfo(
            self.workers,
            self.min_batch,
            self._pool is not None,
            self._quarantined(),
            self._failures,
            self.last_fallback,
        )

    def configure(
        self, workers: int | None = None, min_batch: int | None = None
    ) -> None:
        """Change the worker count and/or the serial-fallback threshold.

        ``workers <= 1`` disables parallelism.  An existing pool is shut
        down when the worker count changes (the next large batch
        respawns one); a previously failed spawn or an active
        quarantine is cleared by reconfiguration.
        """
        if workers is not None and workers != self.workers:
            self.shutdown()
            self.workers = workers
        if min_batch is not None:
            self.min_batch = min_batch
        # Any reconfiguration retries a previously failed spawn or a
        # quarantined pool — the operator asking for a
        # (re)configuration is the signal to try again now.
        self._quarantined_until = None
        self._failures = 0
        self.last_fallback = None

    def shutdown(self) -> None:
        """Stop the worker processes (they respawn lazily when needed).

        Queued futures are cancelled; running shards finish first (a
        *hung* shard is the one case that would block forever, and
        :meth:`mark_failed` — which terminates — handles it before any
        orderly shutdown runs).
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def get_pool(self) -> ProcessPoolExecutor | None:
        """The session's executor, or ``None`` when parallelism is
        unavailable.

        Always sized by the *configured* worker count: a per-call
        ``workers=`` override gates the serial/parallel decision and
        caps the chunk fan-out, but never creates or resizes the pool
        (call :meth:`configure` for that).
        """
        if self.workers <= 1:
            return None
        if self._quarantined_until is not None:
            if time.monotonic() < self._quarantined_until:
                return None
            # Cooldown elapsed: health-probe by building a fresh pool.
            self._quarantined_until = None
            self._failures = 0
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
                self._pool_size = self.workers
            except (OSError, ValueError):  # no process support here
                self._quarantine("spawn-failed")
                return None
        return self._pool

    def _quarantine(self, reason: str) -> None:
        self._quarantined_until = time.monotonic() + self.cooldown
        self.last_fallback = reason

    def mark_failed(self, reason: str | None = None) -> None:
        """Drop a pool that raised; the next large batch respawns a
        fresh one — but a second consecutive failure quarantines the
        runtime for the cooldown (see the class docstring).

        Worker processes are terminated outright: a *hung* worker
        ignores an orderly shutdown, and waiting on it would turn a
        shard timeout back into the very hang it guards against.
        """
        pool = self._pool
        self._pool = None
        if pool is not None:
            try:
                procs = list((getattr(pool, "_processes", None) or {}).values())
            except Exception:
                procs = []
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            for proc in procs:
                try:
                    proc.terminate()
                except Exception:
                    pass
        self._failures += 1
        if reason is not None:
            self.last_fallback = reason
        if self._failures >= _MAX_POOL_FAILURES:
            self._quarantined_until = time.monotonic() + self.cooldown

    def mark_healthy(self) -> None:
        """A completed round clears the consecutive-failure streak."""
        self._failures = 0

    def shard_chunks(self, items: Sequence, eff_workers: int, threshold: int):
        """Gate the parallel path and split ``items`` into worker chunks.

        The one place the serial-fallback policy lives: small batch,
        single-worker override, or no usable pool all return
        ``(None, None)`` — the caller then takes its serial path.
        """
        if eff_workers <= 1 or len(items) < threshold:
            return None, None
        pool = self.get_pool()
        if pool is None:
            return None, None
        return pool, _chunk(items, min(eff_workers, self._pool_size) * 2)

    def run_chunks(self, pool, worker, args_list, validate=None,
                   on_result=None):
        """Run one task per argument tuple with the full fault story.

        Per-shard timeouts (``shard_timeout_ms``), parent-side result
        validation (a corrupt wire result raises
        :class:`~repro.core.errors.WorkerFailure`), one retry round of
        only the failed shards on a rebuilt pool, and — when the retry
        fails too and the runtime is quarantined — in-parent serial
        execution of the stragglers, running the *same* chunk
        functions, where fault injection never fires and engine
        exceptions propagate normally.  Always returns a full,
        input-ordered result list.

        ``on_result(i, result)``, when given, fires once per shard as
        its *validated* result lands — the checkpoint hook: a crash
        later in the round cannot un-settle shards already reported.
        """
        results: list = [None] * len(args_list)
        pending = list(range(len(args_list)))
        for attempt in (0, 1):
            if pool is None:
                break
            still_failed: list[int] = []
            reason: str | None = None
            futures: list[tuple[int, object]] = []
            for i in pending:
                try:
                    futures.append((i, pool.submit(worker, *args_list[i])))
                except (RuntimeError, OSError, pickle.PickleError) as exc:
                    # submit() after a concurrent shutdown raises
                    # RuntimeError; unpicklable args surface here too.
                    reason = f"submit:{type(exc).__name__}"
                    still_failed.append(i)
            for i, future in futures:
                try:
                    result = future.result(timeout=self.shard_timeout)
                    if validate is not None and not validate(
                        result, args_list[i]
                    ):
                        raise WorkerFailure("corrupt worker result shape")
                    results[i] = result
                    if on_result is not None:
                        on_result(i, result)
                except (*_POOL_FAILURES, WorkerFailure) as exc:
                    reason = type(exc).__name__
                    future.cancel()
                    still_failed.append(i)
            if not still_failed:
                self.mark_healthy()
                return results
            pending = sorted(still_failed)
            self.mark_failed(reason)
            pool = self.get_pool() if attempt == 0 else None
        # Quarantined (or pool gone): finish the stragglers in-parent.
        for i in pending:
            results[i] = worker(*args_list[i])
            if on_result is not None:
                on_result(i, results[i])
        return results


def _runtime(session) -> PoolRuntime:
    """The :class:`PoolRuntime` of ``session`` (default if ``None``)."""
    if session is not None:
        return session.pool
    from ..session import default_session

    return default_session().pool


def _worker_opts(
    session, backend: str | None
) -> tuple[str, bool | None, EngineConfig]:
    """What shipped tasks must honour from the calling session.

    Workers run their *own* sessions, so an explicitly configured
    calling session would silently lose its knobs the moment a batch
    shards.  This resolves everything on the parent side: the wire
    backend is the per-call override or the calling session's default
    (``"auto"`` ships as-is — workers keep resolving it per call),
    ``use_cache`` is ``False`` when the calling session disabled its
    hom-cache (``None`` otherwise: an enabled parent cache lets each
    worker use its own LRU, which is the point of pooling), and the
    *full resolved* :class:`EngineConfig` ships alongside, so worker
    sessions honour the caller's cache sizes and thresholds instead of
    env-built defaults.  ``workers`` is forced to 1 in the shipped
    config: a worker must never spawn a nested pool.
    """
    if session is None:
        from ..session import default_session

        session = default_session()
    engine = session.hom
    if backend is not None and backend not in BACKEND_CHOICES:
        # Validate on the parent side: a typo'd backend must raise
        # here, not fail inside every worker and burn the pool's
        # failure budget (two bad calls would otherwise take the whole
        # session's parallelism out of service).
        raise ValueError(
            f"unknown backend {backend!r}; expected {BACKEND_CHOICES}"
        )
    wire_backend = (
        backend if backend is not None else engine.default_backend
    )
    wire_config = session.config.replace(workers=1)
    return (
        wire_backend,
        (None if engine.cache_enabled else False),
        wire_config,
    )


# ----------------------------------------------------------------------
# Default-session shims (the pre-Session free-function surface)
# ----------------------------------------------------------------------


def pool_info(session=None) -> PoolInfo:
    return _runtime(session).info()


def configure_pool(
    workers: int | None = None,
    min_batch: int | None = None,
    session=None,
) -> None:
    """Reconfigure the (default) session's shard executor."""
    _runtime(session).configure(workers=workers, min_batch=min_batch)


def shutdown_pool(session=None) -> None:
    """Stop the (default) session's worker processes."""
    _runtime(session).shutdown()


def _chunk(items: Sequence, parts: int) -> list[list]:
    """Split ``items`` into at most ``parts`` contiguous, near-equal runs."""
    parts = max(1, min(parts, len(items)))
    size, extra = divmod(len(items), parts)
    chunks = []
    start = 0
    for i in range(parts):
        end = start + size + (1 if i < extra else 0)
        chunks.append(list(items[start:end]))
        start = end
    return chunks


# Parent-side result-shape validators, one per chunk function: a
# worker that returns the wrong shape (the "corrupt wire" fault, or a
# genuinely garbled pickle round trip) is treated as a WorkerFailure
# and its shard requeued/quarantined, never silently folded into the
# answer.  Entries may be reason strings on governed sessions, so only
# the container shape is checked, not element types.


def _validate_row(result, args) -> bool:
    return isinstance(result, list) and len(result) == len(args[1])


def _validate_screen(result, args) -> bool:
    return (
        isinstance(result, list)
        and len(result) == len(args[0])
        and all(
            isinstance(row, list) and len(row) == len(args[1])
            for row in result
        )
    )


def _validate_covers(result, args) -> bool:
    return isinstance(result, (bool, str))


def _sharded_ordered(
    rt, items, eff_workers, threshold, worker, make_args, validate=None,
    on_chunk=None,
):
    """Run ``worker`` over chunks of ``items``, collecting in order.

    The shared scaffolding of the order-preserving entry points:
    gate/chunk via :meth:`PoolRuntime.shard_chunks`, build one argument
    tuple per chunk (``make_args`` is only called on the parallel path,
    so shared wire forms are not built for serial batches), and
    delegate to :meth:`PoolRuntime.run_chunks` — which owns the
    timeout/retry/quarantine fault story and always returns a full
    input-ordered result list.  Returns ``None`` only for the serial
    gate (small batch, single worker, no usable pool); worker faults
    are recovered *inside* ``run_chunks``, and anything else a worker
    raises is an engine bug that propagates.

    ``on_chunk(start, chunk, result)``, when given, fires per settled
    chunk with the chunk's offset into ``items`` (the checkpoint hook
    threaded down to :meth:`PoolRuntime.run_chunks`'s ``on_result``).
    """
    pool, chunks = rt.shard_chunks(items, eff_workers, threshold)
    if pool is None:
        return None
    args_list = [make_args(chunk) for chunk in chunks]
    on_result = None
    if on_chunk is not None:
        starts = []
        pos = 0
        for chunk in chunks:
            starts.append(pos)
            pos += len(chunk)

        def on_result(i, result):
            on_chunk(starts[i], chunks[i], result)

    return rt.run_chunks(pool, worker, args_list, validate, on_result)


# ----------------------------------------------------------------------
# Sharded batch entry points
# ----------------------------------------------------------------------


def parallel_evaluate_batch(
    query: Structure,
    instances: Iterable[Structure],
    *,
    backend: str | None = None,
    workers: int | None = None,
    min_batch: int | None = None,
    session=None,
) -> list[bool]:
    """:func:`~repro.core.homengine.evaluate_batch`, sharded.

    Small batches (fewer than ``min_batch`` instances), a single-worker
    configuration, and pool-less sandboxes all take the serial path —
    byte-for-byte today's behaviour, hom-cache included.  Large batches
    are split into two chunks per worker (for load balancing) and
    evaluated in worker processes that rebuild the structures from the
    wire format; result order matches the input order.  A per-call
    ``workers=`` override gates the serial/parallel decision and caps
    this call's chunk fan-out; the pool itself is sized by the session
    config (:func:`configure_pool` on the default session).
    """
    rt = _runtime(session)
    wire_backend, wire_cache, wire_config = _worker_opts(session, backend)
    instances = list(instances)
    shared: dict = {}

    def make_args(chunk):
        if "query" not in shared:
            shared["query"] = to_wire(query)
        return (
            shared["query"],
            [to_wire(s) for s in chunk],
            wire_backend,
            rt.worker_cache,
            wire_cache,
            wire_config,
        )

    chunk_results = _sharded_ordered(
        rt,
        instances,
        rt.workers if workers is None else workers,
        rt.min_batch if min_batch is None else min_batch,
        _worker_evaluate_chunk,
        make_args,
        _validate_row,
    )
    if chunk_results is None:
        # Serial fast path (small batch, single worker, no pool).
        if wire_config.governed:
            return [
                Answer.decode(entry)
                for entry in homengine.evaluate_batch_governed(
                    query, instances, backend=backend, session=session
                )
            ]
        return homengine.evaluate_batch(
            query, instances, backend=backend, session=session
        )
    flat = [answer for chunk in chunk_results for answer in chunk]
    if wire_config.governed:
        return [Answer.decode(entry) for entry in flat]
    return flat


def _validate_semiring_row(result, args) -> bool:
    return (
        isinstance(result, list)
        and len(result) == len(args[1])
        and all(isinstance(e, tuple) and len(e) == 2 for e in result)
    )


def parallel_semiring_batch(
    query: Structure,
    instances: Iterable[Structure],
    semiring: "str | Semiring" = "bool",
    *,
    weights=None,
    backend: str | None = None,
    workers: int | None = None,
    min_batch: int | None = None,
    session=None,
) -> "list[Evaluation]":
    """One weighted query over many instances, sharded: the semiring
    analogue of :func:`parallel_evaluate_batch`.

    Returns one :class:`~repro.core.semiring.Evaluation` per instance,
    input order.  Weights ship once per chunk as ``(fact,
    encoded-value)`` pairs and values come back through the semiring's
    per-dtype wire codec, so worker answers are canonical (``why``
    polynomials sort their witness sets).  Only *registered* semirings
    can cross the process boundary — a bespoke unregistered
    :class:`~repro.core.semiring.Semiring` instance (or an opaque
    ``node_filter``-free call with unpicklable weights) quietly takes
    the serial path, identical answers included.  Governed behaviour
    matches the outermost-surface contract: entries computed before a
    budget trips are kept, later entries carry ``reason``.
    """
    rt = _runtime(session)
    wire_backend, wire_cache, wire_config = _worker_opts(session, backend)
    sr = resolve_semiring(semiring)
    instances = list(instances)

    def serial() -> "list[Evaluation]":
        out: "list[Evaluation]" = []
        reason: str | None = None
        with governed_scope(session) as budget:
            for data in instances:
                if reason is not None:
                    out.append(
                        Evaluation(None, sr.name, wire_backend, reason=reason)
                    )
                    continue
                try:
                    if budget is not None:
                        budget.checkpoint()
                    out.append(
                        homengine.semiring_evaluate(
                            query, data, sr, weights=weights,
                            backend=backend, session=session,
                        )
                    )
                except ResourceExhausted as exc:
                    reason = exc.reason
                    out.append(
                        Evaluation(None, sr.name, wire_backend, reason=reason)
                    )
        return out

    try:
        shippable = resolve_semiring(sr.name) is sr
    except UnknownSemiring:
        shippable = False
    weights_wire = None
    if shippable and weights is not None:
        try:
            weights_wire = tuple(
                (fact, sr.encode(val)) for fact, val in weights.items()
            )
            pickle.dumps(weights_wire)
        except (TypeError, pickle.PickleError, AttributeError):
            shippable = False
    if not shippable:
        return serial()
    shared: dict = {}

    def make_args(chunk):
        if "query" not in shared:
            shared["query"] = to_wire(query)
        return (
            shared["query"],
            [to_wire(s) for s in chunk],
            sr.name,
            weights_wire,
            wire_backend,
            rt.worker_cache,
            wire_cache,
            wire_config,
        )

    chunk_results = _sharded_ordered(
        rt,
        instances,
        rt.workers if workers is None else workers,
        rt.min_batch if min_batch is None else min_batch,
        _worker_semiring_chunk,
        make_args,
        _validate_semiring_row,
    )
    if chunk_results is None:
        return serial()
    out: "list[Evaluation]" = []
    for tag, payload in (e for chunk in chunk_results for e in chunk):
        if tag == "ok":
            out.append(Evaluation(sr.decode(payload), sr.name, wire_backend))
        else:
            out.append(Evaluation(None, sr.name, wire_backend, reason=payload))
    return out


def _screen_ckpt(session, queries, instances, wire_backend):
    """The checkpoint home for one screen: ``((store, ns), done)``, or
    ``(None, {})`` when checkpointing is unavailable or off.

    The namespace digests the full operation identity — every query
    and instance fingerprint plus the backend — so resuming finds
    exactly its own rows and any other screen cannot.  ``done`` maps
    instance index -> settled per-query bool column; rows of the wrong
    shape (a stale or damaged checkpoint) are ignored, never trusted.
    """
    if session is None:
        from ..session import default_session

        session = default_session()
    store = getattr(session, "store", None)
    if (
        store is None
        or not store.enabled
        or not session.config.durable_checkpoints
    ):
        return None, {}
    from .store import op_digest

    ns = "ckpt:" + op_digest(
        "screen",
        tuple(q.fingerprint for q in queries),
        tuple(s.fingerprint for s in instances),
        wire_backend,
    )
    nq = len(queries)
    done: dict[int, tuple] = {}
    for key, value in store.load_ns(ns).items():
        if (
            isinstance(key, int)
            and 0 <= key < len(instances)
            and isinstance(value, tuple)
            and len(value) == nq
            and all(isinstance(v, bool) for v in value)
        ):
            done[key] = value
    return (store, ns), done


def _settled_rows(result, chunk_len, index_map, start=0):
    """The checkpoint rows of one settled screen chunk: for each fully
    Boolean column (no governed reason entries), ``(original_index,
    column)``.  ``result`` is the chunk's per-query answer lists."""
    rows = []
    for j in range(chunk_len):
        col = tuple(row[j] for row in result)
        if all(isinstance(v, bool) for v in col):
            rows.append((index_map[start + j], col))
    return rows


def parallel_screen(
    queries: Sequence[Structure],
    instances: Iterable[Structure],
    *,
    backend: str | None = None,
    workers: int | None = None,
    min_batch: int | None = None,
    on_shard=None,
    session=None,
) -> list[list[bool]]:
    """Evaluate a pool of Boolean CQs over one instance family, sharded.

    Returns one answer vector per query, ``result[qi][di]`` being the
    answer of ``queries[qi]`` on the ``di``-th instance — exactly
    ``[evaluate_batch(q, instances) for q in queries]``, which is also
    the serial fallback.  The parallel path shards by *instances*: the
    family is wired once, each worker rebuilds its chunk once and
    answers every query against it, so the per-instance serialisation
    and index-rebuild cost is amortised over the whole query pool.
    This is the bulk-classification traffic shape (a zoo of queries
    screened over one :func:`~repro.workloads.generators.instance_family`).

    With a durable store attached (``cache_dir`` +
    ``durable_checkpoints``), settled instance columns are persisted
    as they complete: a process killed mid-screen — or a governed
    screen whose budget tripped partway — resumes from the checkpoint
    on the next identical call, recomputing only the unsettled
    instances and returning answers identical to an uninterrupted run.

    ``on_shard(shard)``, when given, fires one :class:`ScreenShard` per
    settled span *as it completes* — the shard-completion hook the
    service tier's job progress reporting hangs off.  Shards arrive in
    completion order (checkpoint-replayed spans first), carry decoded
    tri-state answers, and jointly cover ``range(len(instances))``
    exactly once, the same contract :func:`parallel_screen_stream`
    yields under.
    """
    rt = _runtime(session)
    wire_backend, wire_cache, wire_config = _worker_opts(session, backend)
    queries = list(queries)
    instances = list(instances)
    if not queries:
        return []
    nq = len(queries)
    ckpt, ckpt_done = _screen_ckpt(session, queries, instances, wire_backend)
    missing = [i for i in range(len(instances)) if i not in ckpt_done]
    sub = [instances[i] for i in missing]

    def emit(start: int, rows) -> None:
        """Fire ``on_shard`` for one settled block of sub-coordinates
        ``start..start+len``, remapped to original instance indices and
        split where checkpointed instances interleave."""
        if on_shard is None or not rows or not rows[0]:
            return
        if wire_config.governed:
            rows = [[Answer.decode(entry) for entry in row] for row in rows]
        span = len(rows[0])
        j = 0
        while j < span:
            k = j
            while (
                k + 1 < span
                and missing[start + k + 1] == missing[start + k] + 1
            ):
                k += 1
            on_shard(
                ScreenShard(
                    missing[start + j],
                    missing[start + k] + 1,
                    tuple(tuple(row[j : k + 1]) for row in rows),
                )
            )
            j = k + 1

    if on_shard is not None and ckpt_done:
        # Checkpoint-replayed spans complete first, by definition.
        for start, stop in _contiguous_runs(sorted(ckpt_done)):
            on_shard(
                ScreenShard(
                    start,
                    stop,
                    tuple(
                        tuple(ckpt_done[i][qi] for i in range(start, stop))
                        for qi in range(nq)
                    ),
                )
            )
    shared: dict = {}

    def make_args(chunk):
        if "queries" not in shared:
            shared["queries"] = [to_wire(q) for q in queries]
        return (
            shared["queries"],
            [to_wire(s) for s in chunk],
            wire_backend,
            rt.worker_cache,
            wire_cache,
            wire_config,
        )

    on_chunk = None
    if ckpt is not None or on_shard is not None:

        def on_chunk(start, chunk, result):
            if ckpt is not None:
                store, ns = ckpt
                store.write_rows(
                    ns, _settled_rows(result, len(chunk), missing, start)
                )
            emit(start, result)

    chunk_results = None
    if sub:
        chunk_results = _sharded_ordered(
            rt,
            sub,
            rt.workers if workers is None else workers,
            rt.min_batch if min_batch is None else min_batch,
            _worker_screen_chunk,
            make_args,
            _validate_screen,
            on_chunk=on_chunk,
        )
    if chunk_results is None:
        if wire_config.governed:
            with governed_scope(session):
                sub_rows = [
                    homengine.evaluate_batch_governed(
                        q, sub, backend=backend, session=session
                    )
                    for q in queries
                ]
            # Settled columns checkpoint even when the budget tripped
            # partway: the resumed screen finishes only the UNKNOWNs.
            if on_chunk is not None:
                on_chunk(0, sub, sub_rows)
            sub_rows = [
                [Answer.decode(entry) for entry in row] for row in sub_rows
            ]
        elif on_chunk is not None:
            # Checkpointing/reporting serial path: instance-major so
            # each settled column is durable (and reported) before the
            # next instance starts — kill -9 between instances loses
            # at most the one in flight.
            sub_rows = [[] for _ in queries]
            for j, instance in enumerate(sub):
                col = tuple(
                    homengine.has_homomorphism(
                        q, instance, backend=backend, session=session
                    )
                    for q in queries
                )
                for qi, v in enumerate(col):
                    sub_rows[qi].append(v)
                on_chunk(j, [instance], [[v] for v in col])
        else:
            sub_rows = [
                homengine.evaluate_batch(
                    q, sub, backend=backend, session=session
                )
                for q in queries
            ]
    else:
        sub_rows = [[] for _ in queries]
        for chunk_answers in chunk_results:
            for qi, answers in enumerate(chunk_answers):
                if wire_config.governed:
                    answers = [Answer.decode(entry) for entry in answers]
                sub_rows[qi].extend(answers)
    if not ckpt_done:
        return sub_rows
    results: list[list] = [[None] * len(instances) for _ in queries]
    for i, col in ckpt_done.items():
        for qi in range(len(queries)):
            results[qi][i] = col[qi]
    for j, pos in enumerate(missing):
        for qi in range(len(queries)):
            results[qi][pos] = sub_rows[qi][j]
    return results


@dataclass(frozen=True)
class ScreenShard:
    """One completed shard of a streaming screen.

    ``answers[qi][i]`` is the answer of query ``qi`` on instance
    ``start + i`` of the screened family; shards arrive in completion
    order and jointly cover ``range(len(instances))`` exactly once.
    """

    start: int  # first instance index covered by this shard
    stop: int  # one past the last instance index
    answers: tuple[tuple[bool, ...], ...]  # per query, per instance


def parallel_screen_stream(
    queries: Sequence[Structure],
    instances: Iterable[Structure],
    *,
    backend: str | None = None,
    workers: int | None = None,
    min_batch: int | None = None,
    session=None,
) -> Iterator[ScreenShard]:
    """The streaming variant of :func:`parallel_screen`: yield each
    shard's answers *as its worker completes*, not in chunk order.

    A long screen (thousands of instances, an expensive query pool)
    surfaces its first answers while later shards are still running;
    collecting the stream and sorting by ``start`` reproduces
    :func:`parallel_screen` exactly (a property the tests pin).  Serial
    batches — below ``min_batch``, single worker, pool-less sandbox —
    yield one shard per instance as it is answered, so streaming
    consumers behave identically (modulo shard granularity) on every
    substrate.  A worker failure mid-stream falls back to serial
    evaluation of the not-yet-yielded suffix; indices already yielded
    are never re-yielded.

    With a durable store attached, previously checkpointed instance
    columns are yielded first as synthesized shards (no recompute),
    then the remaining instances stream normally, checkpointing each
    settled shard as it lands.
    """
    rt = _runtime(session)
    wire_backend, wire_cache, wire_config = _worker_opts(session, backend)
    queries = list(queries)
    instances = list(instances)
    if not queries or not instances:
        return
    nq = len(queries)
    ckpt, ckpt_done = _screen_ckpt(session, queries, instances, wire_backend)
    if ckpt_done:
        # Replay the checkpoint as contiguous synthesized shards.
        for start, stop in _contiguous_runs(sorted(ckpt_done)):
            yield ScreenShard(
                start,
                stop,
                tuple(
                    tuple(ckpt_done[i][qi] for i in range(start, stop))
                    for qi in range(nq)
                ),
            )
    missing = [i for i in range(len(instances)) if i not in ckpt_done]
    if not missing:
        return
    sub = [instances[i] for i in missing]
    for shard in _screen_stream_raw(
        rt, queries, sub, backend, workers, min_batch, session,
        wire_backend, wire_cache, wire_config,
    ):
        span = shard.stop - shard.start
        result = [list(row) for row in shard.answers]
        if ckpt is not None:
            store, ns = ckpt
            store.write_rows(
                ns, _settled_rows(result, span, missing, shard.start)
            )
        # Remap sub-coordinate shards back to original indices,
        # splitting where checkpointed instances interleave.
        j = shard.start
        while j < shard.stop:
            k = j
            while k + 1 < shard.stop and missing[k + 1] == missing[k] + 1:
                k += 1
            yield ScreenShard(
                missing[j],
                missing[k] + 1,
                tuple(
                    tuple(row[j - shard.start : k + 1 - shard.start])
                    for row in result
                ),
            )
            j = k + 1


def _contiguous_runs(indices):
    """``(start, stop)`` spans of consecutive ints in a sorted list."""
    runs = []
    for i in indices:
        if runs and i == runs[-1][1]:
            runs[-1][1] = i + 1
        else:
            runs.append([i, i + 1])
    return [(a, b) for a, b in runs]


def _screen_stream_raw(
    rt, queries, instances, backend, workers, min_batch, session,
    wire_backend, wire_cache, wire_config,
) -> Iterator[ScreenShard]:
    """The pre-checkpoint streaming screen body: completion-ordered
    shards over exactly the given instances (coordinates are positions
    in ``instances`` — :func:`parallel_screen_stream` remaps them)."""
    governed = wire_config.governed

    def _serial_answer(q, instance):
        if governed:
            try:
                return homengine.has_homomorphism(
                    q, instance, backend=backend, session=session
                )
            except ResourceExhausted as exc:
                return Answer.unknown(exc.reason)
        return homengine.has_homomorphism(
            q, instance, backend=backend, session=session
        )

    def _serial_row(q, chunk):
        if governed:
            return tuple(
                Answer.decode(entry)
                for entry in homengine.evaluate_batch_governed(
                    q, chunk, backend=backend, session=session
                )
            )
        return tuple(
            homengine.evaluate_batch(
                q, chunk, backend=backend, session=session
            )
        )

    pool, chunks = rt.shard_chunks(
        instances,
        rt.workers if workers is None else workers,
        rt.min_batch if min_batch is None else min_batch,
    )
    if pool is None:
        for i, instance in enumerate(instances):
            yield ScreenShard(
                i,
                i + 1,
                tuple((_serial_answer(q, instance),) for q in queries),
            )
        return
    query_wires = [to_wire(q) for q in queries]
    starts: list[int] = []
    offset = 0
    for chunk in chunks:
        starts.append(offset)
        offset += len(chunk)
    done_spans: set[tuple[int, int]] = set()
    futures: dict = {}
    failure: str | None = None
    try:
        for chunk, start in zip(chunks, starts):
            future = pool.submit(
                _worker_screen_chunk,
                query_wires,
                [to_wire(s) for s in chunk],
                wire_backend,
                rt.worker_cache,
                wire_cache,
                wire_config,
            )
            futures[future] = (start, start + len(chunk))
        # as_completed's timeout is a whole-iteration budget, so the
        # per-shard allowance is summed over the outstanding shards —
        # coarser than run_chunks' per-future timeout but enough to
        # unstick a stream whose tail is a hung worker.
        stream_timeout = (
            None
            if rt.shard_timeout is None
            else rt.shard_timeout * len(futures)
        )
        for future in as_completed(futures, timeout=stream_timeout):
            start, stop = futures[future]
            answers = future.result(timeout=rt.shard_timeout)
            if not (
                isinstance(answers, list)
                and len(answers) == len(queries)
                and all(len(row) == stop - start for row in answers)
            ):
                raise WorkerFailure("corrupt worker result shape")
            done_spans.add((start, stop))
            if governed:
                answers = [
                    [Answer.decode(entry) for entry in row]
                    for row in answers
                ]
            yield ScreenShard(
                start, stop, tuple(tuple(row) for row in answers)
            )
    except (*_POOL_FAILURES, WorkerFailure) as exc:
        failure = type(exc).__name__
    finally:
        # A consumer that abandons the stream early (breaks out of the
        # loop, closing the generator) must not leave the remaining
        # chunks burning CPU in the session's pool: cancel everything
        # that has not started.  No-op for completed/running futures
        # and for the normal exhausted-stream exit.
        for future in futures:
            future.cancel()
    if failure is not None:
        rt.mark_failed(failure)
        # Serial recovery for every span not already yielded.  Only
        # pool/worker faults land here — an engine exception raised
        # inside a worker propagates out of the result() call above.
        for chunk, start in zip(chunks, starts):
            stop = start + len(chunk)
            if (start, stop) in done_spans:
                continue
            yield ScreenShard(
                start, stop, tuple(_serial_row(q, chunk) for q in queries)
            )
        return
    rt.mark_healthy()


def parallel_ucq_answers(
    disjuncts: Sequence[Structure],
    instances: Iterable[Structure],
    *,
    backend: str | None = None,
    workers: int | None = None,
    min_batch: int | None = None,
    session=None,
) -> list[bool] | None:
    """Certain answers of a Boolean UCQ over a family, sharded.

    ``result[i]`` is true iff *some* disjunct maps into the ``i``-th
    instance.  Shards by instances: each worker rebuilds its chunk once
    and sweeps the whole UCQ against it with per-instance early exit,
    so the per-instance wire/rebuild cost is amortised over all
    disjuncts (the reason this beats one
    :func:`parallel_evaluate_batch` call per disjunct, which would
    re-ship the family every sweep).  Returns ``None`` when the batch
    is below ``min_batch`` or the pool is unavailable — the caller
    should then take its serial path
    (:func:`repro.core.boundedness.ucq_certain_answers` keeps the
    pending-filtered sweep with the shared hom-cache).
    """
    rt = _runtime(session)
    wire_backend, wire_cache, wire_config = _worker_opts(session, backend)
    disjuncts = list(disjuncts)
    instances = list(instances)
    if not disjuncts or not instances:
        return None
    shared: dict = {}

    def make_args(chunk):
        if "disjuncts" not in shared:
            shared["disjuncts"] = [to_wire(d) for d in disjuncts]
        return (
            shared["disjuncts"],
            [to_wire(s) for s in chunk],
            wire_backend,
            rt.worker_cache,
            wire_cache,
            wire_config,
        )

    chunk_results = _sharded_ordered(
        rt,
        instances,
        rt.workers if workers is None else workers,
        rt.min_batch if min_batch is None else min_batch,
        _worker_ucq_chunk,
        make_args,
        _validate_row,
    )
    if chunk_results is None:
        return None
    flat = [answer for chunk in chunk_results for answer in chunk]
    if wire_config.governed:
        return [Answer.decode(entry) for entry in flat]
    return flat


def parallel_covers_any(
    target: Structure,
    sources: Iterable[Structure | tuple[Structure, homengine.Seed | None]],
    seeds: Sequence[homengine.Seed | None] | None = None,
    *,
    backend: str | None = None,
    workers: int | None = None,
    min_batch: int | None = None,
    session=None,
) -> bool:
    """:func:`~repro.core.homengine.covers_any`, sharded.

    Accepts the same source/seed conventions as the serial API.  Small
    batches stay serial (lazy consumption, early exit, shared cache);
    large batches ship one chunk of (source, seed) pairs per worker and
    return as soon as any chunk reports a hit, cancelling chunks that
    have not started.
    """
    rt = _runtime(session)
    wire_backend, wire_cache, wire_config = _worker_opts(session, backend)
    pairs = list(homengine._source_seed_pairs(sources, seeds))
    pool, chunks = rt.shard_chunks(
        pairs,
        rt.workers if workers is None else workers,
        rt.min_batch if min_batch is None else min_batch,
    )
    if pool is None:
        return homengine.covers_any(
            target, pairs, backend=backend, session=session
        )
    target_wire = to_wire(target)
    unknown_reason: str | None = None
    try:
        pending = {
            pool.submit(
                _worker_covers_chunk,
                target_wire,
                [
                    (to_wire(s), _freeze_seed(seed))
                    for s, seed in chunk
                ],
                wire_backend,
                rt.worker_cache,
                wire_cache,
                wire_config,
            )
            for chunk in chunks
        }
        # Early exit: return on the first chunk that reports a hit and
        # cancel chunks that have not started (this wait loop is why
        # covers_any does not share _sharded_ordered's collection).
        covered = False
        while pending:
            done, pending = wait(
                pending,
                timeout=rt.shard_timeout,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # Every outstanding shard sat past the shard timeout.
                raise FuturesTimeout("covers_any shard timed out")
            for f in done:
                result = f.result()
                if not _validate_covers(result, None):
                    raise WorkerFailure("corrupt worker result shape")
                if result is True:
                    covered = True
                elif isinstance(result, str):
                    # A governed worker ran out of budget before any
                    # hit; remember why, but keep draining — another
                    # chunk may still report a definite hit.
                    unknown_reason = result
            if covered:
                for f in pending:
                    f.cancel()
                break
    except (*_POOL_FAILURES, WorkerFailure) as exc:
        rt.mark_failed(type(exc).__name__)
        return homengine.covers_any(
            target, pairs, backend=backend, session=session
        )
    rt.mark_healthy()
    if not covered and unknown_reason is not None:
        # No chunk found a hit and at least one gave up: the overall
        # answer is unknown, and the caller's governed surface decides
        # how to report it.
        raise ResourceExhausted.from_reason(unknown_reason)
    return covered
