"""The service tier: a multi-tenant async job API over the engine.

ROADMAP item 4 — "heavy query load over slowly changing data" as a
long-running server, stdlib only.  The pieces:

* :mod:`~repro.service.wire` — JSON codecs (structures, tri-state
  answers, shard frames, the shared config serializer);
* :mod:`~repro.service.registry` — tenant → Session LRU with
  per-tenant :class:`~repro.core.config.EngineConfig` overlays;
* :mod:`~repro.service.jobs` — bounded-executor job manager with
  admission control and durable ``job:v1`` records;
* :mod:`~repro.service.server` — asyncio HTTP/1.1 + SSE front;
* :mod:`~repro.service.client` — blocking client the CLI and bench
  speak through.
"""

from .client import ServiceClient, ServiceError
from .jobs import JOB_KINDS, AdmissionError, Job, JobManager
from .registry import SessionRegistry
from .server import ServiceServer, run
from .wire import (
    WireError,
    answer_from_json,
    answer_to_json,
    config_to_json,
    structure_from_json,
    structure_to_json,
)

__all__ = [
    "AdmissionError",
    "JOB_KINDS",
    "Job",
    "JobManager",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SessionRegistry",
    "WireError",
    "answer_from_json",
    "answer_to_json",
    "config_to_json",
    "run",
    "structure_from_json",
    "structure_to_json",
]
