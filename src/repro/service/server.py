"""The HTTP/1.1 front of the job service — stdlib asyncio only.

A hand-rolled request loop over ``asyncio.start_server``: one
connection, one request, ``Connection: close`` (the service's traffic
shape is few long-lived SSE watchers plus short submit/poll calls, so
keep-alive buys nothing worth the parser state).  Engine work never
runs on the event loop — jobs execute on the
:class:`~repro.service.jobs.JobManager` thread executor, and handlers
only read job state.

Routes
------

==============================  ==============================================
``POST /v1/jobs``               submit ``{"kind", "tenant"?, "payload"}`` →
                                202 job record; 400 bad payload; 429 backlog
                                full; 503 + ``Retry-After`` while draining
``POST /v1/jobs/<id>/cancel``   request cooperative cancellation → 200 the
                                (possibly already terminal) record
``GET /v1/jobs``                id → status summary of every known job
``GET /v1/jobs/<id>``           full job record (404 unknown)
``GET /v1/jobs/<id>/events``    SSE: ``event: shard`` frames straight off
                                ``Session.screen(stream=True)``, then one
                                ``event: done`` (or ``event: cancelled``)
                                with the final record; ``?cursor=N`` resumes
                                after the first N events (client reconnect)
``GET /healthz``                liveness + backlog counters + drain flag
``GET /v1/config``              resolved ``EngineConfig``
                                (:func:`~repro.service.wire.config_to_json`)
``GET /v1/metrics``             hom-cache / pool / store / job counters
==============================  ==============================================

Graceful drain: ``run()`` (the ``repro serve`` entry) installs a
SIGTERM handler that stops admission (503s with ``Retry-After``),
keeps serving reads and SSE while running jobs checkpoint and settle
— up to ``service_drain_ms`` — then exits; whatever is still in
flight is persisted re-queueable by ``JobManager.close``.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
from urllib.parse import parse_qs

from ..core.config import EngineConfig
from ..core.store import DurableStore
from . import wire
from .jobs import AdmissionError, JobManager
from .registry import SessionRegistry

__all__ = ["ServiceServer", "run"]

# How long one SSE executor wait parks before re-checking (a liveness
# backstop only — event arrival and job settlement wake it instantly).
_SSE_WAIT_S = 5.0
_MAX_BODY = 64 * 1024 * 1024

_public = wire.public_record


class ServiceServer:
    """Multi-tenant job service bound to one host:port."""

    def __init__(self, config: EngineConfig | None = None) -> None:
        self.config = config if config is not None else EngineConfig()
        self.store = DurableStore.open(
            self.config.cache_dir,
            self.config.cache_bytes,
            self.config.durability,
        )
        self.registry = SessionRegistry(self.config)
        self.manager = JobManager(
            self.registry, store=self.store, config=self.config
        )
        self.host = self.config.service_host
        self.port = self.config.service_port
        self.started = time.monotonic()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> "ServiceServer":
        self.manager.recover()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # Port 0 binds an ephemeral port; report the real one.
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def close(self) -> None:
        if self._server is not None:
            self._server.close()
        self.manager.close()
        self.registry.close()
        if self.store is not None:
            self.store.close()

    def start_in_thread(self) -> "ServiceServer":
        """Run the server on a dedicated event-loop thread (tests,
        quickstart).  Returns once the socket is bound."""
        ready = threading.Event()

        def _target() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self.start())
            ready.set()
            try:
                loop.run_forever()
            finally:
                if self._server is not None:
                    self._server.close()
                    loop.run_until_complete(self._server.wait_closed())
                loop.close()

        self._thread = threading.Thread(
            target=_target, name="repro-service", daemon=True
        )
        self._thread.start()
        if not ready.wait(10):
            raise RuntimeError("service failed to start within 10s")
        return self

    def stop(self) -> None:
        """Stop a :meth:`start_in_thread` server and release engines."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(10)
        self.manager.close()
        self.registry.close()
        if self.store is not None:
            self.store.close()

    def __enter__(self) -> "ServiceServer":
        return self.start_in_thread()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request plumbing ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            await self._route(writer, method, path, query, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # last-resort 500; keep serving
            try:
                await self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split()
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length < 0 or length > _MAX_BODY:
            return None
        body = await reader.readexactly(length) if length else b""
        path, _, raw_query = target.partition("?")
        query = {
            name: values[-1]
            for name, values in parse_qs(raw_query).items()
        }
        return method.upper(), path, query, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        reason: str | None = None,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode()
        reason = reason or {
            200: "OK",
            202: "Accepted",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            429: "Too Many Requests",
            500: "Internal Server Error",
            503: "Service Unavailable",
        }.get(status, "OK")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in (headers or {}).items()
        )
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}"
                "Connection: close\r\n\r\n"
            ).encode()
        )
        writer.write(body)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: dict,
        body: bytes,
    ) -> None:
        if method == "POST":
            if path == "/v1/jobs":
                return await self._post_job(writer, body)
            if path.startswith("/v1/jobs/") and path.endswith("/cancel"):
                job_id = path[len("/v1/jobs/") : -len("/cancel")]
                job = self.manager.cancel(job_id)
                if job is None:
                    return await self._respond(
                        writer, 404, {"error": f"no such job {job_id!r}"}
                    )
                return await self._respond(
                    writer, 200, _public(job.snapshot())
                )
        if method == "GET":
            if path == "/healthz":
                return await self._respond(writer, 200, self._healthz())
            if path == "/v1/config":
                return await self._respond(
                    writer, 200, wire.config_to_json(self.config)
                )
            if path == "/v1/metrics":
                return await self._respond(writer, 200, self._metrics())
            if path == "/v1/jobs":
                return await self._respond(
                    writer,
                    200,
                    {
                        "jobs": {
                            job.id: job.status
                            for job in self.manager.jobs()
                        }
                    },
                )
            if path.startswith("/v1/jobs/"):
                rest = path[len("/v1/jobs/") :]
                if rest.endswith("/events"):
                    try:
                        cursor = max(0, int(query.get("cursor", 0)))
                    except ValueError:
                        cursor = 0
                    return await self._sse(
                        writer, rest[: -len("/events")], cursor
                    )
                job = self.manager.get(rest)
                if job is None:
                    return await self._respond(
                        writer, 404, {"error": f"no such job {rest!r}"}
                    )
                return await self._respond(
                    writer, 200, _public(job.snapshot())
                )
            return await self._respond(
                writer, 404, {"error": f"no route for {path!r}"}
            )
        await self._respond(writer, 405, {"error": f"method {method}"})

    async def _post_job(
        self, writer: asyncio.StreamWriter, body: bytes
    ) -> None:
        try:
            request = json.loads(body.decode() or "{}")
            if not isinstance(request, dict):
                raise wire.WireError("request body must be a JSON object")
            job = self.manager.submit(
                str(request.get("kind", "")),
                request.get("payload") or {},
                tenant=str(request.get("tenant", "default")),
            )
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return await self._respond(
                writer, 400, {"error": f"bad JSON: {exc}"}
            )
        except wire.WireError as exc:
            return await self._respond(writer, 400, {"error": str(exc)})
        except AdmissionError as exc:
            headers = None
            if exc.retry_after is not None:
                headers = {"Retry-After": str(int(exc.retry_after) + 1)}
            return await self._respond(
                writer, exc.status, {"error": str(exc)}, headers=headers
            )
        await self._respond(writer, 202, _public(job.snapshot()))

    def _healthz(self) -> dict:
        jobs = self.manager.metrics()
        return {
            "status": "draining" if self.manager.draining else "ok",
            "uptime_s": round(time.monotonic() - self.started, 3),
            "queued": jobs["queued"],
            "running": jobs["running"],
            "draining": self.manager.draining,
        }

    def _metrics(self) -> dict:
        return {
            "service": self.manager.metrics(),
            "registry": self.registry.metrics(),
            "uptime_s": round(time.monotonic() - self.started, 3),
        }

    # -- SSE -----------------------------------------------------------

    async def _sse(
        self, writer: asyncio.StreamWriter, job_id: str, cursor: int = 0
    ) -> None:
        job = self.manager.get(job_id)
        if job is None:
            return await self._respond(
                writer, 404, {"error": f"no such job {job_id!r}"}
            )
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        loop = asyncio.get_running_loop()
        while True:
            # Push, not poll: park a (sleeping) executor thread on the
            # job's condition variable until a shard settles.  Waking
            # the event loop 20x/s per watcher would steal GIL slices
            # from the very engine threads producing the shards.
            events, done = await loop.run_in_executor(
                None, job.events_since, cursor, _SSE_WAIT_S
            )
            for event in events:
                writer.write(
                    b"event: shard\ndata: "
                    + json.dumps(event).encode()
                    + b"\n\n"
                )
            cursor += len(events)
            if events:
                await writer.drain()
            if done:
                final = (
                    b"cancelled" if job.status == "cancelled" else b"done"
                )
                writer.write(
                    b"event: " + final + b"\ndata: "
                    + json.dumps(_public(job.snapshot())).encode()
                    + b"\n\n"
                )
                await writer.drain()
                return


def run(config: EngineConfig | None = None, print_fn=print) -> None:
    """Blocking entry point for ``repro serve``: bind, announce, serve
    until interrupted.

    SIGTERM triggers a graceful drain: admission stops immediately
    (503 + ``Retry-After``) while reads and SSE keep serving, running
    jobs get up to ``service_drain_ms`` to checkpoint and settle, then
    the process exits (anything still in flight is persisted
    re-queueable).  SIGINT / kill -9 take the abrupt path — which the
    durable records and ``recover()`` are built to survive.
    """
    server = ServiceServer(config)

    async def _main() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        drain_requested = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, drain_requested.set)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-unix / nested loop: no graceful drain, only ^C
        print_fn(
            f"repro service listening on "
            f"http://{server.host}:{server.port}"
        )
        sys.stdout.flush()
        serving = asyncio.ensure_future(server.serve_forever())
        waiting = asyncio.ensure_future(drain_requested.wait())
        done, _pending = await asyncio.wait(
            {serving, waiting}, return_when=asyncio.FIRST_COMPLETED
        )
        if waiting in done:
            drain_s = server.config.service_drain_ms / 1000.0
            print_fn(
                f"repro service draining (deadline {drain_s:.1f}s) ..."
            )
            sys.stdout.flush()
            server.manager.begin_drain()
            # The drain wait blocks on job conditions — keep it off the
            # event loop so 503s and SSE stay responsive throughout.
            clean = await loop.run_in_executor(
                None, server.manager.drain, drain_s
            )
            print_fn(
                "repro service drained"
                + ("" if clean else " (jobs persisted re-queueable)")
            )
        serving.cancel()
        waiting.cancel()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
