"""Blocking HTTP client for the job service (stdlib ``http.client``).

The client speaks exactly the wire JSON of
:mod:`repro.service.server`; ``repro jobs ...`` and the service bench
both go through it.  :meth:`ServiceClient.watch` parses the SSE stream
incrementally and yields ``(event, data)`` pairs, so shard answers
surface as they settle instead of after the job completes.

Resilience: transient connection failures — refused while the server
restarts, reset mid-response — are retried with capped exponential
backoff (``retries`` / ``retry_backoff``), and ``watch`` reconnects
its SSE stream from the last seen cursor (the server replays events
past ``?cursor=N``), so a server restart mid-stream neither drops nor
duplicates shards.  Note that a submit retry after a *reset* (rather
than a refusal) can double-submit if the first request was admitted
before the connection died; submissions are cheap records, so the
service tier favours at-least-once admission over silent loss.

Tri-state discipline: answers stay in wire form (``true`` / ``false``
/ ``{"unknown": reason}``); :func:`~repro.service.wire.answer_from_json`
decodes them when a caller wants :class:`~repro.core.errors.Answer`
objects back.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator

from ..core.errors import EngineError

__all__ = ["ServiceClient", "ServiceError"]

#: Connection-level failures worth a retry: the server is restarting
#: (refused), died mid-response (reset / no status line), or the OS
#: tore the socket down.  HTTP-level errors (4xx/5xx) are *not* here —
#: they are answers, not transport faults.
_RETRYABLE = (
    ConnectionError,
    http.client.BadStatusLine,  # includes RemoteDisconnected
)

#: Terminal job statuses: exactly one of these ends every job.
TERMINAL_STATUSES = ("done", "failed", "cancelled")

_BACKOFF_CAP_S = 1.0


class ServiceError(EngineError):
    """A non-2xx service response, carrying the HTTP ``status``."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """One service endpoint; connections are per-call (the server is
    ``Connection: close``), so a client object is freely shareable."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 30.0,
        retries: int = 4,
        retry_backoff: float = 0.05,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff

    def _backoff(self, attempt: int) -> None:
        time.sleep(min(self.retry_backoff * (2**attempt), _BACKOFF_CAP_S))

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except _RETRYABLE:
                if attempt >= self.retries:
                    raise
                self._backoff(attempt)
                attempt += 1

    def _request_once(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None if payload is None else json.dumps(payload)
            conn.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"}
                if body is not None
                else {},
            )
            response = conn.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw.decode() or "{}")
            except (json.JSONDecodeError, UnicodeDecodeError):
                data = {"error": raw[:200].decode("latin-1")}
            if response.status >= 400:
                raise ServiceError(
                    response.status, str(data.get("error", data))
                )
            return data
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def config(self) -> dict:
        return self._request("GET", "/v1/config")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def submit(
        self, kind: str, payload: dict, tenant: str = "default"
    ) -> dict:
        """Submit a job; returns the 202 job record (no payload echo).
        Raises :class:`ServiceError` with ``status=429`` on backlog,
        ``status=503`` while the server drains."""
        return self._request(
            "POST",
            "/v1/jobs",
            {"kind": kind, "tenant": tenant, "payload": payload},
        )

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        """Request cooperative cancellation; returns the job record
        (already-terminal jobs come back unchanged — cancel never
        un-settles anything)."""
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.05
    ) -> dict:
        """Poll every ``poll`` seconds until the job settles (done,
        failed, or cancelled); returns the final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.get("status") in TERMINAL_STATUSES:
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    504, f"job {job_id} still {record.get('status')!r} "
                    f"after {timeout}s"
                )
            time.sleep(poll)

    def watch(
        self, job_id: str, timeout: float = 300.0
    ) -> Iterator[tuple[str, Any]]:
        """Stream the job's SSE feed as ``(event, data)`` pairs.

        Yields ``("shard", {...})`` per settled shard and finally
        ``("done", record)`` — or ``("cancelled", record)`` for a
        cancelled job; the connection closes after the terminal frame.
        A dropped connection (server restart mid-stream) reconnects
        from the last seen cursor, so shards are neither dropped nor
        replayed to the consumer.
        """
        deadline = time.monotonic() + timeout
        cursor = 0
        attempt = 0
        while True:
            try:
                remaining = max(1.0, deadline - time.monotonic())
                for event, data in self._watch_once(
                    job_id, cursor, remaining
                ):
                    if event == "shard":
                        cursor += 1
                        attempt = 0  # progress: reset the backoff ladder
                    yield event, data
                    if event in ("done", "cancelled"):
                        return
                # Stream ended without a terminal frame: the server
                # went away cleanly mid-watch.  Reconnect below.
            except _RETRYABLE:
                pass
            if time.monotonic() >= deadline or attempt >= self.retries:
                raise ServiceError(
                    504,
                    f"watch of {job_id} lost its stream at cursor "
                    f"{cursor} and could not reconnect",
                )
            self._backoff(attempt)
            attempt += 1

    def _watch_once(
        self, job_id: str, cursor: int, timeout: float
    ) -> Iterator[tuple[str, Any]]:
        # The socket timeout spans the whole watch window: the server
        # is legitimately silent between shards, so a short per-read
        # timeout would sever healthy streams.
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            conn.request(
                "GET", f"/v1/jobs/{job_id}/events?cursor={cursor}"
            )
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw.decode()).get("error", "")
                except (json.JSONDecodeError, UnicodeDecodeError):
                    message = raw[:200].decode("latin-1")
                raise ServiceError(response.status, str(message))
            event, data_lines = None, []
            for raw_line in response:
                line = raw_line.decode().rstrip("\n").rstrip("\r")
                if line.startswith("event:"):
                    event = line[len("event:") :].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:") :].strip())
                elif not line and event is not None:
                    payload = json.loads("\n".join(data_lines) or "null")
                    yield event, payload
                    if event in ("done", "cancelled"):
                        return
                    event, data_lines = None, []
        finally:
            conn.close()
