"""Blocking HTTP client for the job service (stdlib ``http.client``).

The client speaks exactly the wire JSON of
:mod:`repro.service.server`; ``repro jobs ...`` and the service bench
both go through it.  :meth:`ServiceClient.watch` parses the SSE stream
incrementally and yields ``(event, data)`` pairs, so shard answers
surface as they settle instead of after the job completes.

Tri-state discipline: answers stay in wire form (``true`` / ``false``
/ ``{"unknown": reason}``); :func:`~repro.service.wire.answer_from_json`
decodes them when a caller wants :class:`~repro.core.errors.Answer`
objects back.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Iterator

from ..core.errors import EngineError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(EngineError):
    """A non-2xx service response, carrying the HTTP ``status``."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """One service endpoint; connections are per-call (the server is
    ``Connection: close``), so a client object is freely shareable."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 30.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(
        self, method: str, path: str, payload: dict | None = None
    ) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None if payload is None else json.dumps(payload)
            conn.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"}
                if body is not None
                else {},
            )
            response = conn.getresponse()
            raw = response.read()
            try:
                data = json.loads(raw.decode() or "{}")
            except (json.JSONDecodeError, UnicodeDecodeError):
                data = {"error": raw[:200].decode("latin-1")}
            if response.status >= 400:
                raise ServiceError(
                    response.status, str(data.get("error", data))
                )
            return data
        finally:
            conn.close()

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def config(self) -> dict:
        return self._request("GET", "/v1/config")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def submit(
        self, kind: str, payload: dict, tenant: str = "default"
    ) -> dict:
        """Submit a job; returns the 202 job record (no payload echo).
        Raises :class:`ServiceError` with ``status=429`` on backlog."""
        return self._request(
            "POST",
            "/v1/jobs",
            {"kind": kind, "tenant": tenant, "payload": payload},
        )

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.05
    ) -> dict:
        """Poll every ``poll`` seconds until the job settles; returns
        the final record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.get("status") in ("done", "failed"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    504, f"job {job_id} still {record.get('status')!r} "
                    f"after {timeout}s"
                )
            time.sleep(poll)

    def watch(
        self, job_id: str, timeout: float = 300.0
    ) -> Iterator[tuple[str, Any]]:
        """Stream the job's SSE feed as ``(event, data)`` pairs.

        Yields ``("shard", {...})`` per settled shard and finally
        ``("done", record)``; the connection closes after ``done``.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    message = json.loads(raw.decode()).get("error", "")
                except (json.JSONDecodeError, UnicodeDecodeError):
                    message = raw[:200].decode("latin-1")
                raise ServiceError(response.status, str(message))
            event, data_lines = None, []
            for raw_line in response:
                line = raw_line.decode().rstrip("\n").rstrip("\r")
                if line.startswith("event:"):
                    event = line[len("event:") :].strip()
                elif line.startswith("data:"):
                    data_lines.append(line[len("data:") :].strip())
                elif not line and event is not None:
                    payload = json.loads("\n".join(data_lines) or "null")
                    yield event, payload
                    if event == "done":
                        return
                    event, data_lines = None, []
        finally:
            conn.close()
