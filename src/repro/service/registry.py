"""Tenant → :class:`~repro.session.Session` registry with LRU eviction.

Every tenant gets its own session (own hom-cache, own pool, own
governance budgets) built from the server's base
:class:`~repro.core.config.EngineConfig` plus an optional per-tenant
overlay — a dict of config fields validated through
``EngineConfig.replace`` so a bad overlay fails at registration, not
mid-job.  All tenants share the base ``cache_dir``: the durable store
keys by operation digest, so one tenant's settled screens warm every
tenant's disk tier.

Capacity is ``config.service_tenants``; the least-recently-used
session is evicted and closed (flushing its store buffers) when a new
tenant would exceed it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..core.config import EngineConfig
from ..session import Session

__all__ = ["SessionRegistry"]


class SessionRegistry:
    """Thread-safe LRU map of tenant name to live :class:`Session`."""

    def __init__(
        self, base_config: EngineConfig | None = None, capacity: int | None = None
    ) -> None:
        self.base_config = base_config if base_config is not None else EngineConfig()
        self.capacity = (
            capacity if capacity is not None else self.base_config.service_tenants
        )
        if self.capacity < 1:
            raise ValueError("registry capacity must be >= 1")
        self._sessions: OrderedDict[str, Session] = OrderedDict()
        self._overlays: dict[str, dict] = {}
        self._lock = threading.Lock()
        self.evictions = 0

    # -- configuration -------------------------------------------------

    def config_for(self, tenant: str) -> EngineConfig:
        """The tenant's resolved config (base + overlay, re-validated)."""
        overlay = self._overlays.get(tenant)
        if not overlay:
            return self.base_config
        return self.base_config.replace(**overlay)

    def set_overlay(self, tenant: str, **fields) -> EngineConfig:
        """Register per-tenant config overrides.

        Validates eagerly (``replace`` re-runs ``__post_init__``) and
        drops any live session for the tenant so the next job sees the
        new knobs.  Returns the resolved config.
        """
        resolved = self.base_config.replace(**fields)
        with self._lock:
            self._overlays[tenant] = dict(fields)
            stale = self._sessions.pop(tenant, None)
        if stale is not None:
            stale.close()
        return resolved

    # -- sessions ------------------------------------------------------

    def get(self, tenant: str) -> Session:
        """The tenant's session, creating (and possibly evicting) one."""
        evicted: list[Session] = []
        with self._lock:
            session = self._sessions.get(tenant)
            if session is not None:
                self._sessions.move_to_end(tenant)
                return session
            session = Session(self.config_for(tenant))
            self._sessions[tenant] = session
            while len(self._sessions) > self.capacity:
                _, old = self._sessions.popitem(last=False)
                evicted.append(old)
                self.evictions += 1
        for old in evicted:
            old.close()
        return session

    def tenants(self) -> list[str]:
        with self._lock:
            return list(self._sessions)

    def metrics(self) -> dict:
        """Per-tenant engine counters plus registry occupancy."""
        with self._lock:
            live = list(self._sessions.items())
        return {
            "capacity": self.capacity,
            "live": len(live),
            "evictions": self.evictions,
            "tenants": {name: session.metrics() for name, session in live},
        }

    def close(self) -> None:
        with self._lock:
            live = list(self._sessions.values())
            self._sessions.clear()
        for session in live:
            session.close()

    def __enter__(self) -> "SessionRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
