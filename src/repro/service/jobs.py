"""Async job manager: bounded execution over tenant sessions.

Jobs are the unit of work the service accepts: ``decide`` /
``evaluate`` / ``probe`` (one structure in, one result out) and
``screen`` (a query pool over an instance family, streamed as
:class:`~repro.core.runtime.ScreenShard` events).  Each job runs on a
bounded thread executor against its tenant's session; asyncio handlers
never block on engine work.

Admission control mirrors the pool's degradation ladder:

* global backlog (queued + running) at ``service_queue_depth`` →
  :class:`AdmissionError` (HTTP 429, the client backs off);
* a tenant at its ``service_tenant_jobs`` concurrency cap → the job
  *queues* instead of running, and dispatch resumes the moment one of
  the tenant's jobs settles — throttled, not rejected, exactly how
  ``PoolRuntime`` degrades to serial rather than failing.

Every state transition persists the job record under the ``job:v1``
namespace of the shared :class:`~repro.core.store.DurableStore`.  A
restarted server replays the namespace: settled jobs are served from
the record, in-flight jobs are re-enqueued under their original ids —
and because the screen runtime checkpoints settled shards under the
same store, the re-run replays finished spans from disk instead of
recomputing them (digest-identical answers, the bench pins this).

Tri-state discipline: answers cross the manager only through
:func:`~repro.service.wire.answer_to_json`, so an UNKNOWN produced by
a governed budget arrives at the client as ``{"unknown": reason}``,
never coerced to a boolean.
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from ..core.config import EngineConfig
from ..core.cq import OneCQ
from ..core.errors import EngineError
from ..core.runtime import ScreenShard
from ..core.store import JOB_NS, DurableStore
from . import wire
from .registry import SessionRegistry

__all__ = ["AdmissionError", "Job", "JobManager", "JOB_KINDS"]

JOB_KINDS = ("decide", "evaluate", "probe", "screen")

_QUEUED = "queued"
_RUNNING = "running"
_DONE = "done"
_FAILED = "failed"


class AdmissionError(EngineError):
    """Service backlog full — the job was rejected, not queued (429)."""

    status = 429


def _new_job_id() -> str:
    return secrets.token_hex(6)


def validate_payload(kind: str, payload: dict) -> None:
    """Eager request validation: raise WireError on a bad submission
    so the server can 400 instead of enqueueing a doomed job.

    Structures are shape-checked (:func:`wire.check_structure_json`),
    not decoded — the full index build happens exactly once, inside
    :meth:`JobManager._execute` on the worker thread.
    """
    if kind not in JOB_KINDS:
        raise wire.WireError(
            f"unknown job kind {kind!r}; expected one of {JOB_KINDS}"
        )
    if not isinstance(payload, dict):
        raise wire.WireError("job payload must be a JSON object")
    if kind == "screen":
        queries = payload.get("queries")
        instances = payload.get("instances")
        if not isinstance(queries, list) or not queries:
            raise wire.WireError("screen payload needs non-empty 'queries'")
        if not isinstance(instances, list) or not instances:
            raise wire.WireError("screen payload needs non-empty 'instances'")
        for obj in (*queries, *instances):
            wire.check_structure_json(obj)
        return
    query = payload.get("query")
    if query is None:
        raise wire.WireError(f"{kind} payload needs 'query'")
    wire.check_structure_json(query)
    if kind == "evaluate":
        data = payload.get("data")
        if data is None:
            raise wire.WireError("evaluate payload needs 'data'")
        wire.check_structure_json(data)


class Job:
    """One submitted job: state machine + event buffer + waiters."""

    def __init__(
        self, job_id: str, tenant: str, kind: str, payload: dict
    ) -> None:
        self.id = job_id
        self.tenant = tenant
        self.kind = kind
        self.payload = payload
        self.status = _QUEUED
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.result = None
        self.error: str | None = None
        self.progress_done = 0
        self.progress_total = (
            len(payload["instances"]) if kind == "screen" else 1
        )
        self.events: list[dict] = []
        self._cond = threading.Condition()

    @property
    def settled(self) -> bool:
        return self.status in (_DONE, _FAILED)

    def add_event(self, event: dict, advance: int = 0) -> None:
        with self._cond:
            self.events.append(event)
            self.progress_done += advance
            self._cond.notify_all()

    def _transition(self, status: str) -> None:
        with self._cond:
            self.status = status
            if status == _RUNNING:
                self.started = time.time()
            elif status in (_DONE, _FAILED):
                self.finished = time.time()
            self._cond.notify_all()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job settles; True iff it did in time."""
        with self._cond:
            return self._cond.wait_for(lambda: self.settled, timeout)

    def events_since(
        self, cursor: int, timeout: float | None = None
    ) -> tuple[list[dict], bool]:
        """Events past ``cursor`` (blocking up to ``timeout`` for news)
        and whether the job has settled."""
        with self._cond:
            if timeout:
                self._cond.wait_for(
                    lambda: len(self.events) > cursor or self.settled,
                    timeout,
                )
            return list(self.events[cursor:]), self.settled

    def snapshot(self) -> dict:
        """The JSON job record (also the persisted store row)."""
        with self._cond:
            return {
                "id": self.id,
                "tenant": self.tenant,
                "kind": self.kind,
                "status": self.status,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "progress": {
                    "done": self.progress_done,
                    "total": self.progress_total,
                },
                "result": self.result,
                "error": self.error,
                "events": len(self.events),
                "payload": self.payload,
            }


class JobManager:
    """Bounded executor + admission control + durable job records."""

    def __init__(
        self,
        registry: SessionRegistry,
        store: DurableStore | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else registry.base_config
        self.store = store
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.service_threads,
            thread_name_prefix="repro-job",
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._queue: deque[str] = deque()
        self._running: set[str] = set()
        self._tenant_running: dict[str, int] = {}
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.recovered = 0

    # -- submission ----------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: dict,
        tenant: str = "default",
        job_id: str | None = None,
    ) -> Job:
        """Accept a job (or raise): WireError on a bad payload,
        AdmissionError when the backlog is at ``service_queue_depth``."""
        validate_payload(kind, payload)
        job = Job(job_id or _new_job_id(), tenant, kind, payload)
        with self._lock:
            backlog = len(self._queue) + len(self._running)
            if backlog >= self.config.service_queue_depth:
                self.rejected += 1
                raise AdmissionError(
                    f"job backlog full ({backlog} >= "
                    f"{self.config.service_queue_depth}); retry later"
                )
            if job.id in self._jobs:
                raise wire.WireError(f"duplicate job id {job.id!r}")
            self._jobs[job.id] = job
            self._queue.append(job.id)
        self._persist(job, with_payload=True)
        self._dispatch()
        return job

    def _dispatch(self) -> None:
        """Start every queued job whose tenant has a free slot."""
        started: list[Job] = []
        with self._lock:
            cap = self.config.service_tenant_jobs
            skipped: deque[str] = deque()
            while self._queue:
                jid = self._queue.popleft()
                job = self._jobs[jid]
                if self._tenant_running.get(job.tenant, 0) >= cap:
                    skipped.append(jid)
                    continue
                self._tenant_running[job.tenant] = (
                    self._tenant_running.get(job.tenant, 0) + 1
                )
                self._running.add(jid)
                started.append(job)
            self._queue = skipped
        for job in started:
            self._executor.submit(self._run, job)

    # -- execution -----------------------------------------------------

    def _run(self, job: Job) -> None:
        job._transition(_RUNNING)
        self._persist(job)
        try:
            job.result = self._execute(job)
            job._transition(_DONE)
        except Exception as exc:  # job isolation: one failure, one record
            job.error = f"{type(exc).__name__}: {exc}"
            job._transition(_FAILED)
        finally:
            with self._lock:
                self._running.discard(job.id)
                left = self._tenant_running.get(job.tenant, 0) - 1
                if left > 0:
                    self._tenant_running[job.tenant] = left
                else:
                    self._tenant_running.pop(job.tenant, None)
                if job.status == _DONE:
                    self.completed += 1
                else:
                    self.failed += 1
            self._persist(job)
            self._dispatch()

    def _execute(self, job: Job):
        session = self.registry.get(job.tenant)
        payload = job.payload
        if job.kind == "screen":
            queries = [
                wire.structure_from_json(q) for q in payload["queries"]
            ]
            instances = [
                wire.structure_from_json(i) for i in payload["instances"]
            ]
            matrix: list[list] = [
                [None] * len(instances) for _ in queries
            ]
            for shard in session.screen(
                queries,
                instances,
                stream=True,
                backend=payload.get("backend"),
            ):
                for qi, row in enumerate(shard.answers):
                    matrix[qi][shard.start : shard.stop] = row
                job.add_event(
                    wire.shard_to_json(shard),
                    advance=shard.stop - shard.start,
                )
            return {
                "matrix": [
                    [wire.answer_to_json(a) for a in row] for row in matrix
                ]
            }
        query = wire.structure_from_json(payload["query"])
        if job.kind == "decide":
            decision = session.decide_boundedness(
                query, probe_depth=int(payload.get("probe_depth", 3))
            )
            return wire.decision_to_json(decision)
        if job.kind == "probe":
            result = session.probe_boundedness(
                OneCQ.from_structure(query),
                int(payload.get("probe_depth", 3)),
            )
            return wire.probe_to_json(result)
        # evaluate
        ev = session.evaluate(
            query,
            wire.structure_from_json(payload["data"]),
            payload.get("semiring", "bool"),
            backend=payload.get("backend"),
        )
        return wire.evaluation_to_json(ev)

    # -- lookup --------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def metrics(self) -> dict:
        with self._lock:
            return {
                "queued": len(self._queue),
                "running": len(self._running),
                "total": len(self._jobs),
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "recovered": self.recovered,
                "queue_depth": self.config.service_queue_depth,
                "tenant_jobs": self.config.service_tenant_jobs,
                "threads": self.config.service_threads,
            }

    # -- durability ----------------------------------------------------

    def _persist(self, job: Job, with_payload: bool = False) -> None:
        """Durably commit the job record.

        The (possibly large) request payload is written once, at
        submission, under a ``<id>/payload`` sibling row; later state
        transitions rewrite only the slim record, so a screen job's
        lifecycle does not push its request body through the store's
        WAL three times while the engine is checkpointing shards into
        the same file.
        """
        if self.store is None:
            return
        record = job.snapshot()
        payload = record.pop("payload")
        rows = [(job.id, record)]
        if with_payload:
            rows.append((f"{job.id}/payload", {"payload": payload}))
        self.store.write_rows(JOB_NS, rows)

    def recover(self) -> int:
        """Replay the ``job:v1`` namespace after a restart.

        Settled jobs come back as served-from-record :class:`Job`
        objects (a screen job's final record synthesizes one full-span
        event so late SSE watchers still stream its answers).
        In-flight jobs — queued or running at the crash — are
        re-enqueued under their original ids; the engine's shard
        checkpoints make the re-run a replay, not a recompute.
        Returns the number of jobs re-enqueued.
        """
        if self.store is None:
            return 0
        resumed = 0
        rows = self.store.job_list()
        for job_id, record in sorted(
            rows.items(), key=lambda kv: kv[1].get("created", 0.0)
        ):
            if "/" in job_id:
                continue  # a payload sibling row, not a job record
            kind = record.get("kind")
            status = record.get("status")
            payload = record.get("payload")  # pre-split inline layout
            if payload is None:
                payload = rows.get(f"{job_id}/payload", {}).get("payload")
            if kind not in JOB_KINDS or not isinstance(payload, dict):
                continue
            with self._lock:
                known = job_id in self._jobs
            if known:
                continue
            if status in (_DONE, _FAILED):
                job = Job(job_id, record.get("tenant", "default"), kind, payload)
                job.created = record.get("created", job.created)
                job.started = record.get("started")
                job.finished = record.get("finished")
                job.result = record.get("result")
                job.error = record.get("error")
                job.status = status
                job.progress_done = record.get("progress", {}).get(
                    "done", job.progress_total
                )
                if (
                    kind == "screen"
                    and status == _DONE
                    and isinstance(job.result, dict)
                ):
                    matrix = job.result.get("matrix") or []
                    if matrix and matrix[0]:
                        job.events.append(
                            {
                                "start": 0,
                                "stop": len(matrix[0]),
                                "answers": matrix,
                            }
                        )
                with self._lock:
                    self._jobs[job_id] = job
            else:
                try:
                    self.submit(
                        kind,
                        payload,
                        tenant=record.get("tenant", "default"),
                        job_id=job_id,
                    )
                    resumed += 1
                except (wire.WireError, AdmissionError):
                    continue
        self.recovered = resumed
        return resumed

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
