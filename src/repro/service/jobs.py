"""Async job manager: bounded, supervised execution over tenant sessions.

Jobs are the unit of work the service accepts: ``decide`` /
``evaluate`` / ``probe`` (one structure in, one result out) and
``screen`` (a query pool over an instance family, streamed as
:class:`~repro.core.runtime.ScreenShard` events).  Each job runs on a
bounded thread executor against its tenant's session; asyncio handlers
never block on engine work.

Admission control mirrors the pool's degradation ladder:

* global backlog (queued + running) at ``service_queue_depth`` →
  the *queued-longest* job is shed to a terminal FAILED record to make
  room (load-shedding), or — when everything in the backlog is already
  running — :class:`AdmissionError` (HTTP 429, the client backs off);
* a tenant at its ``service_tenant_jobs`` concurrency cap → the job
  *queues* instead of running, and dispatch resumes the moment one of
  the tenant's jobs settles — throttled, not rejected, exactly how
  ``PoolRuntime`` degrades to serial rather than failing;
* a draining manager (SIGTERM received) admits nothing: 503 with
  ``Retry-After``, running jobs checkpoint and settle, queued jobs
  stay persisted for the next process.

Supervision (PR 10) extends the engine's failure taxonomy up through
the job lifecycle:

* **Leases** — a running job holds a heartbeat-renewed ownership row
  in the store's ``lease:v1`` namespace.  ``recover()`` only adopts a
  "running" record whose lease is absent or expired, so a crashed
  owner and a live sibling manager are distinguishable; a stuck
  executor thread stops beating and is detected by its lease lapsing.
* **Bounded retry** — transient failures (:class:`WorkerFailure`,
  :class:`StoreCorruption` surfacing in best-effort mode) re-enqueue
  the job with exponential backoff + jitter, up to
  ``service_retry_max`` attempts (the counter is persisted on the
  record, so attempts survive restarts); past the cap the job is
  **quarantined** to a terminal ``FAILED(quarantined after N
  attempts)`` instead of re-queueing forever.
* **Cancellation** — :meth:`JobManager.cancel` settles a queued job
  immediately and flags a running one; the flag is polled between
  screen shards and, for probe/decide/evaluate kernels, through the
  :class:`~repro.core.errors.Budget` cancel hook at every
  charge/checkpoint, raising :class:`JobCancelled` into the terminal
  ``CANCELLED`` state.  The same poll doubles as the lease-progress
  beat.

Every state transition persists the job record under the ``job:v1``
namespace of the shared :class:`~repro.core.store.DurableStore`.  A
restarted server replays the namespace: settled jobs are served from
the record, in-flight jobs are re-enqueued under their original ids —
and because the screen runtime checkpoints settled shards under the
same store, the re-run replays finished spans from disk instead of
recomputing them (digest-identical answers, the chaos bench pins
this).  :meth:`JobManager.close` records running jobs as
``INTERRUPTED`` (re-queueable) before tearing down the executor, so a
non-drain shutdown has deterministic restart semantics instead of
silently dropping work.

Tri-state discipline: answers cross the manager only through
:func:`~repro.service.wire.answer_to_json`, so an UNKNOWN produced by
a governed budget arrives at the client as ``{"unknown": reason}``,
never coerced to a boolean.
"""

from __future__ import annotations

import os
import random
import secrets
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager

from ..core.config import EngineConfig
from ..core.cq import OneCQ
from ..core.errors import (
    Budget,
    EngineError,
    JobCancelled,
    StoreCorruption,
    WorkerFailure,
)
from ..core.runtime import ScreenShard
from ..core.store import JOB_NS, DurableStore
from . import wire
from .registry import SessionRegistry

__all__ = ["AdmissionError", "Job", "JobManager", "JOB_KINDS"]

JOB_KINDS = ("decide", "evaluate", "probe", "screen")

_QUEUED = "queued"
_RUNNING = "running"
_DONE = "done"
_FAILED = "failed"
_CANCELLED = "cancelled"
#: Recorded (never held in memory across a restart): a running job's
#: status at a non-drain shutdown.  ``recover()`` re-enqueues it like a
#: queued record — the explicit, deterministic alternative to the old
#: "cancel_futures and hope" teardown.
_INTERRUPTED = "interrupted"

_TERMINAL = (_DONE, _FAILED, _CANCELLED)

#: Failures worth a bounded retry: a pool worker died / hung / returned
#: corrupt wire, or the durable tier hiccuped under best-effort
#: semantics.  Everything else (WireError, a hom-engine bug) fails the
#: job on the first attempt — re-running a deterministic error wastes
#: the backlog's time.
_TRANSIENT = (WorkerFailure, StoreCorruption)

#: Ceiling on one retry backoff sleep, whatever the exponent says.
_BACKOFF_CAP_S = 30.0

#: A running job whose last progress beat is older than this many lease
#: TTLs is considered stuck: the heartbeat stops renewing its lease, so
#: the stall becomes observable (and recoverable) through lease expiry.
_STALL_TTLS = 6


class AdmissionError(EngineError):
    """The job was not admitted.  ``status`` is the HTTP code the
    server maps it to: 429 (backlog full, rejected not queued) or 503
    (draining — ``retry_after`` hints when to come back)."""

    def __init__(
        self,
        message: str,
        status: int = 429,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def _new_job_id() -> str:
    return secrets.token_hex(6)


def validate_payload(kind: str, payload: dict) -> None:
    """Eager request validation: raise WireError on a bad submission
    so the server can 400 instead of enqueueing a doomed job.

    Structures are shape-checked (:func:`wire.check_structure_json`),
    not decoded — the full index build happens exactly once, inside
    :meth:`JobManager._execute` on the worker thread.
    """
    if kind not in JOB_KINDS:
        raise wire.WireError(
            f"unknown job kind {kind!r}; expected one of {JOB_KINDS}"
        )
    if not isinstance(payload, dict):
        raise wire.WireError("job payload must be a JSON object")
    if kind == "screen":
        queries = payload.get("queries")
        instances = payload.get("instances")
        if not isinstance(queries, list) or not queries:
            raise wire.WireError("screen payload needs non-empty 'queries'")
        if not isinstance(instances, list) or not instances:
            raise wire.WireError("screen payload needs non-empty 'instances'")
        for obj in (*queries, *instances):
            wire.check_structure_json(obj)
        return
    query = payload.get("query")
    if query is None:
        raise wire.WireError(f"{kind} payload needs 'query'")
    wire.check_structure_json(query)
    if kind == "evaluate":
        data = payload.get("data")
        if data is None:
            raise wire.WireError("evaluate payload needs 'data'")
        wire.check_structure_json(data)


class Job:
    """One submitted job: state machine + event buffer + waiters."""

    def __init__(
        self, job_id: str, tenant: str, kind: str, payload: dict
    ) -> None:
        self.id = job_id
        self.tenant = tenant
        self.kind = kind
        self.payload = payload
        self.status = _QUEUED
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.result = None
        self.error: str | None = None
        self.attempts = 0
        self.last_beat = time.time()
        self.progress_done = 0
        self.progress_total = (
            len(payload["instances"]) if kind == "screen" else 1
        )
        self.events: list[dict] = []
        self._cond = threading.Condition()
        self._cancel = threading.Event()

    @property
    def settled(self) -> bool:
        return self.status in _TERMINAL

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def request_cancel(self) -> None:
        """Flag the job for cooperative cancellation (idempotent)."""
        with self._cond:
            self._cancel.set()
            self._cond.notify_all()

    def poll(self) -> bool:
        """One cooperative poll: beat the liveness clock (the lease
        heartbeat only renews jobs that keep beating) and report
        whether cancellation is pending.  This is the ``Budget``
        cancel hook, so kernels poll it at every charge/checkpoint."""
        self.last_beat = time.time()
        return self._cancel.is_set()

    def add_event(self, event: dict, advance: int = 0) -> None:
        with self._cond:
            self.events.append(event)
            self.progress_done += advance
            self.last_beat = time.time()
            self._cond.notify_all()

    def reset_stream(self) -> None:
        """Drop buffered events and progress before a retry run.

        The re-run replays settled spans from the engine's checkpoints
        and re-emits them as fresh events, so clearing keeps live SSE
        watchers' cursors aligned with the new stream: they receive no
        duplicate shard frames and ``progress_done`` can never exceed
        ``progress_total``.
        """
        with self._cond:
            self.events.clear()
            self.progress_done = 0
            self._cond.notify_all()

    def _transition(self, status: str) -> None:
        with self._cond:
            self.status = status
            if status == _RUNNING:
                self.started = time.time()
            elif status in _TERMINAL:
                self.finished = time.time()
            self._cond.notify_all()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job settles; True iff it did in time."""
        with self._cond:
            return self._cond.wait_for(lambda: self.settled, timeout)

    def events_since(
        self, cursor: int, timeout: float | None = None
    ) -> tuple[list[dict], bool]:
        """Events past ``cursor`` (blocking up to ``timeout`` for news)
        and whether the job has settled."""
        with self._cond:
            if timeout:
                self._cond.wait_for(
                    lambda: len(self.events) > cursor or self.settled,
                    timeout,
                )
            return list(self.events[cursor:]), self.settled

    def snapshot(self) -> dict:
        """The JSON job record (also the persisted store row)."""
        with self._cond:
            return {
                "id": self.id,
                "tenant": self.tenant,
                "kind": self.kind,
                "status": self.status,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "attempts": self.attempts,
                "progress": {
                    "done": self.progress_done,
                    "total": self.progress_total,
                },
                "result": self.result,
                "error": self.error,
                "events": len(self.events),
                "payload": self.payload,
            }


@contextmanager
def _job_scope(session, job: Job):
    """Install a cancellation-aware operation budget for one job.

    Merges the session's configured deadline/fuel with the job's
    cooperative cancel flag, so a kernel's ``charge``/``checkpoint``
    calls raise :class:`JobCancelled` mid-probe — and every poll beats
    the job's liveness clock for the lease heartbeat.  The session's
    budget slot is thread-local, so a concurrent same-tenant job on a
    sibling executor thread installs its *own* budget: cancelling this
    job never cancels (or drains the fuel of) another.  The guard below
    only fires for a nested scope on this same thread, which keeps the
    outer budget rather than replacing it mid-operation.
    """
    if session.active_budget is not None:
        yield
        return
    budget = Budget(
        session.config.deadline_ms,
        session.config.hom_fuel,
        cancel=job.poll,
    )
    session.active_budget = budget
    try:
        yield
    finally:
        session.active_budget = None


class JobManager:
    """Bounded executor + admission control + durable job records."""

    def __init__(
        self,
        registry: SessionRegistry,
        store: DurableStore | None = None,
        config: EngineConfig | None = None,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else registry.base_config
        self.store = store
        # Lease ownership identity: unique per manager instance, so a
        # restarted process never mistakes a dead sibling's leases (or
        # its own previous life's) for its own.
        self.owner = f"{os.getpid()}-{secrets.token_hex(3)}"
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.service_threads,
            thread_name_prefix="repro-job",
        )
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._queue: deque[str] = deque()
        self._running: set[str] = set()
        self._tenant_running: dict[str, int] = {}
        self._timers: list[threading.Timer] = []
        # "Running" records recovered under a live foreign lease: owned
        # by a sibling (or a freshly dead predecessor whose lease has
        # not lapsed yet).  Served read-only until the heartbeat loop
        # sees the lease expire and adopts them.
        self._foreign: dict[str, Job] = {}
        self._draining = False
        self._closing = False
        self._drain_deadline: float | None = None
        self._fault_ordinal = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.recovered = 0
        self.cancelled = 0
        self.shed = 0
        self.retried = 0
        self.quarantined = 0
        self.lease_skips = 0
        self.adopted = 0
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None
        if self.store is not None and self.store.enabled:
            self._hb_thread = threading.Thread(
                target=self._heartbeat, name="repro-lease", daemon=True
            )
            self._hb_thread.start()

    @property
    def _lease_ttl_s(self) -> float:
        return self.config.service_lease_ttl_ms / 1000.0

    @property
    def draining(self) -> bool:
        return self._draining

    # -- submission ----------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: dict,
        tenant: str = "default",
        job_id: str | None = None,
        attempts: int = 0,
    ) -> Job:
        """Accept a job (or raise): WireError on a bad payload,
        AdmissionError 503 while draining, 429 when the backlog is at
        ``service_queue_depth`` with nothing left to shed.

        ``attempts`` seeds the retry counter — only :meth:`recover`
        passes it, so a poison job's attempt count survives restarts.
        """
        validate_payload(kind, payload)
        job = Job(job_id or _new_job_id(), tenant, kind, payload)
        job.attempts = attempts
        shed_job: Job | None = None
        with self._lock:
            if self._draining:
                remaining = (
                    None
                    if self._drain_deadline is None
                    else max(1.0, self._drain_deadline - time.monotonic())
                )
                self.rejected += 1
                raise AdmissionError(
                    "service draining; not accepting jobs",
                    status=503,
                    retry_after=remaining
                    or self.config.service_drain_ms / 1000.0,
                )
            backlog = len(self._queue) + len(self._running)
            if backlog >= self.config.service_queue_depth:
                if self._queue:
                    # Load-shed the job that has waited longest: its
                    # submitter has had the least service and is the
                    # likeliest to have given up, and freshness beats
                    # fairness once the backlog is saturated.  Settle
                    # it here, inside the lock, mirroring cancel(): a
                    # concurrent cancel cannot slip between the pop and
                    # the transition and have its terminal CANCELLED
                    # overwritten by FAILED.
                    candidate = self._jobs[self._queue.popleft()]
                    if not candidate.settled:
                        candidate.error = "shed: backlog full"
                        candidate._transition(_FAILED)
                        self.shed += 1
                        shed_job = candidate
                else:
                    self.rejected += 1
                    raise AdmissionError(
                        f"job backlog full ({backlog} >= "
                        f"{self.config.service_queue_depth}) and all "
                        "running; retry later"
                    )
            if job.id in self._jobs:
                raise wire.WireError(f"duplicate job id {job.id!r}")
            self._jobs[job.id] = job
            self._queue.append(job.id)
        if shed_job is not None:
            self._persist(shed_job)
        self._persist(job, with_payload=True)
        self._dispatch()
        return job

    def _dispatch(self) -> None:
        """Start every queued job whose tenant has a free slot."""
        started: list[Job] = []
        with self._lock:
            if self._draining:
                return
            cap = self.config.service_tenant_jobs
            skipped: deque[str] = deque()
            while self._queue:
                jid = self._queue.popleft()
                job = self._jobs[jid]
                if self._tenant_running.get(job.tenant, 0) >= cap:
                    skipped.append(jid)
                    continue
                self._tenant_running[job.tenant] = (
                    self._tenant_running.get(job.tenant, 0) + 1
                )
                self._running.add(jid)
                started.append(job)
            self._queue = skipped
        for job in started:
            self._executor.submit(self._run, job)

    # -- cancellation --------------------------------------------------

    def cancel(self, job_id: str) -> Job | None:
        """Request cancellation; returns the job (or None if unknown).

        A queued job settles ``CANCELLED`` immediately; a running one
        is flagged and settles at its next cooperative point (between
        screen shards, or a budget charge/checkpoint inside a kernel).
        Settled jobs are returned untouched — cancel is idempotent and
        never un-settles anything.
        """
        settled_now = False
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.settled:
                return job
            job.request_cancel()
            if job.status == _QUEUED:
                try:
                    self._queue.remove(job_id)
                except ValueError:
                    pass  # parked in a retry-backoff timer; flag covers it
                job.error = "cancelled before start"
                job._transition(_CANCELLED)
                self.cancelled += 1
                settled_now = True
        if settled_now:
            self._persist(job)
            self._dispatch()
        return job

    # -- execution -----------------------------------------------------

    def _run(self, job: Job) -> None:
        if self.store is not None and not self.store.lease_acquire(
            job.id, self.owner, self._lease_ttl_s
        ):
            # Lost the claim: another manager holds a live lease on
            # this job id, so executing here would double-run it.
            # Park it as a foreign placeholder instead — the heartbeat
            # sweep adopts it the moment the owner's lease lapses (or
            # absorbs the owner's terminal record).
            job._transition(_RUNNING)
            with self._lock:
                self._running.discard(job.id)
                left = self._tenant_running.get(job.tenant, 0) - 1
                if left > 0:
                    self._tenant_running[job.tenant] = left
                else:
                    self._tenant_running.pop(job.tenant, None)
                self._foreign[job.id] = job
                self.lease_skips += 1
            self._dispatch()
            return
        job.attempts += 1
        job.last_beat = time.time()
        job._transition(_RUNNING)
        self._persist(job)
        requeue_delay: float | None = None
        try:
            if job.cancel_requested:
                raise JobCancelled("cancelled before start")
            job.result = self._execute(job)
            job._transition(_DONE)
        except JobCancelled as exc:
            job.error = str(exc)
            job._transition(_CANCELLED)
        except _TRANSIENT as exc:
            if job.attempts < self.config.service_retry_max and not (
                self._closing or job.cancel_requested
            ):
                requeue_delay = self._backoff_s(job.attempts)
                job.error = (
                    f"attempt {job.attempts}/"
                    f"{self.config.service_retry_max} failed "
                    f"({type(exc).__name__}: {exc}); retrying"
                )
                # The retry re-emits the settled prefix from its
                # checkpoints; keeping this attempt's events would
                # stream every shard twice and overrun the progress
                # total.
                job.reset_stream()
                job._transition(_QUEUED)
            else:
                job.error = (
                    f"quarantined after {job.attempts} attempts: "
                    f"{type(exc).__name__}: {exc}"
                )
                job._transition(_FAILED)
        except Exception as exc:  # job isolation: one failure, one record
            job.error = f"{type(exc).__name__}: {exc}"
            job._transition(_FAILED)
        finally:
            with self._lock:
                self._running.discard(job.id)
                left = self._tenant_running.get(job.tenant, 0) - 1
                if left > 0:
                    self._tenant_running[job.tenant] = left
                else:
                    self._tenant_running.pop(job.tenant, None)
                if job.status == _DONE:
                    self.completed += 1
                elif job.status == _CANCELLED:
                    self.cancelled += 1
                elif job.status == _FAILED:
                    self.failed += 1
                    if job.error and job.error.startswith("quarantined"):
                        self.quarantined += 1
                elif requeue_delay is not None:
                    self.retried += 1
                # Persisting inside the manager lock serialises the
                # settle record against close()'s INTERRUPTED records:
                # whichever writes second wins deterministically, and a
                # settle always wins because close() skips settled jobs.
                self._persist(job)
            if self.store is not None:
                self.store.lease_release(job.id, self.owner)
            if requeue_delay is not None:
                self._schedule_requeue(job, requeue_delay)
            self._dispatch()

    def _backoff_s(self, attempts: int) -> float:
        """Exponential backoff with jitter: ``base * 2^(k-1)``, capped,
        scaled by a uniform [0.5, 1.0) factor so a burst of failures
        doesn't re-land in lockstep."""
        base = self.config.service_retry_backoff_ms / 1000.0
        delay = min(base * (2 ** (attempts - 1)), _BACKOFF_CAP_S)
        return delay * (0.5 + random.random() / 2.0)

    def _schedule_requeue(self, job: Job, delay: float) -> None:
        def _requeue() -> None:
            with self._lock:
                try:
                    self._timers.remove(timer)
                except ValueError:
                    pass
                if (
                    self._closing
                    or self._draining
                    or job.status != _QUEUED
                    or job.id not in self._jobs
                ):
                    return
                self._queue.append(job.id)
            self._dispatch()

        timer = threading.Timer(delay, _requeue)
        timer.daemon = True
        with self._lock:
            if self._closing:
                return
            self._timers.append(timer)
        timer.start()

    def _maybe_jobfail(self) -> None:
        """Fire the service tier's injected fault, if this execution is
        scheduled for one (``("jobfail", ordinal)`` entries in the
        fault plan; the ordinal counts ``_execute`` calls)."""
        plan = self.config.fault_plan
        if not plan:
            return
        with self._lock:
            ordinal = self._fault_ordinal
            self._fault_ordinal += 1
        for mode, when in plan:
            if mode == "jobfail" and when == ordinal:
                raise WorkerFailure(
                    f"injected job fault (execution ordinal {ordinal})"
                )

    def _execute(self, job: Job):
        self._maybe_jobfail()
        session = self.registry.get(job.tenant)
        payload = job.payload
        if job.kind == "screen":
            queries = [
                wire.structure_from_json(q) for q in payload["queries"]
            ]
            instances = [
                wire.structure_from_json(i) for i in payload["instances"]
            ]
            matrix: list[list] = [
                [None] * len(instances) for _ in queries
            ]
            for shard in session.screen(
                queries,
                instances,
                stream=True,
                backend=payload.get("backend"),
            ):
                # Cooperative point between shards: a cancelled job
                # emits no further shard events (the settled spans are
                # already checkpointed, so nothing is lost).
                if job.poll():
                    raise JobCancelled(
                        f"job {job.id} cancelled between shards"
                    )
                for qi, row in enumerate(shard.answers):
                    matrix[qi][shard.start : shard.stop] = row
                job.add_event(
                    wire.shard_to_json(shard),
                    advance=shard.stop - shard.start,
                )
            return {
                "matrix": [
                    [wire.answer_to_json(a) for a in row] for row in matrix
                ]
            }
        with _job_scope(session, job):
            query = wire.structure_from_json(payload["query"])
            if job.kind == "decide":
                decision = session.decide_boundedness(
                    query, probe_depth=int(payload.get("probe_depth", 3))
                )
                return wire.decision_to_json(decision)
            if job.kind == "probe":
                result = session.probe_boundedness(
                    OneCQ.from_structure(query),
                    int(payload.get("probe_depth", 3)),
                )
                return wire.probe_to_json(result)
            # evaluate
            ev = session.evaluate(
                query,
                wire.structure_from_json(payload["data"]),
                payload.get("semiring", "bool"),
                backend=payload.get("backend"),
            )
            return wire.evaluation_to_json(ev)

    # -- leases --------------------------------------------------------

    def _heartbeat(self) -> None:
        """Renew the leases of running jobs every TTL/3 — but only
        while the job's executor thread keeps beating its liveness
        clock (``Job.poll`` / ``add_event``).  A thread stuck for
        ``_STALL_TTLS`` TTLs stops being renewed, its lease lapses,
        and the stall becomes observable from outside."""
        interval = max(self._lease_ttl_s / 3.0, 0.01)
        stall = self._lease_ttl_s * _STALL_TTLS
        while not self._hb_stop.wait(interval):
            with self._lock:
                running = [
                    self._jobs[jid]
                    for jid in self._running
                    if jid in self._jobs
                ]
            now = time.time()
            for job in running:
                if now - job.last_beat > stall:
                    continue
                self.store.lease_renew(
                    job.id, self.owner, self._lease_ttl_s, now
                )
            self._adopt_orphans()

    def _adopt_orphans(self) -> None:
        """Re-enqueue foreign "running" records whose lease lapsed.

        :meth:`recover` registers a running record under a live foreign
        lease read-only instead of adopting it — the owner might be a
        live sibling.  A crashed owner stops renewing, so the lease
        expires within one TTL; this sweep (each heartbeat tick) then
        takes the job over — or quarantines it if its persisted attempt
        count is already spent.  Takeover is one atomic lease CAS
        (claim-iff-expired), so two sibling managers sweeping the same
        store can never both adopt one job; and an owner that settled
        the job before releasing its lease has its terminal record
        absorbed rather than re-executed."""
        with self._lock:
            pending = list(self._foreign.items())
        for job_id, job in pending:
            if not self.store.lease_acquire(
                job_id, self.owner, self._lease_ttl_s
            ):
                continue  # live lease: genuinely still running elsewhere
            with self._lock:
                if self._closing or self._draining:
                    # Leave the record for the next process.
                    self.store.lease_release(job_id, self.owner)
                    return
                if self._foreign.pop(job_id, None) is None:
                    self.store.lease_release(job_id, self.owner)
                    continue
            record = self.store.job_get(job_id) or {}
            status = record.get("status")
            if status in _TERMINAL:
                # The previous owner finished the job between our last
                # sweep and this claim: adopt its terminal record.
                with job._cond:
                    job.result = record.get("result", job.result)
                    job.error = record.get("error", job.error)
                    job.attempts = int(
                        record.get("attempts", job.attempts) or 0
                    )
                    job.progress_done = record.get("progress", {}).get(
                        "done", job.progress_done
                    )
                job._transition(status)
                self.store.lease_release(job_id, self.owner)
            elif job.attempts >= self.config.service_retry_max:
                job.error = (
                    f"quarantined after {job.attempts} attempts: "
                    "crashed or interrupted in every prior run"
                )
                job._transition(_FAILED)
                with self._lock:
                    self.quarantined += 1
                    self.failed += 1
                    self._persist(job)
                self.store.lease_release(job_id, self.owner)
            else:
                # Keep the claimed lease: _run re-acquires it under the
                # same owner, closing the window where a sibling could
                # grab the job between requeue and execution.
                job._transition(_QUEUED)
                with self._lock:
                    self.adopted += 1
                    self._queue.append(job_id)
                    self._persist(job)
                self._dispatch()

    def lease_of(self, job_id: str) -> dict | None:
        """The persisted lease row of one job (None when the store has
        none — released, expired-and-reaped, or no disk tier)."""
        if self.store is None:
            return None
        return self.store.lease_get(job_id)

    # -- lookup --------------------------------------------------------

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    def metrics(self) -> dict:
        with self._lock:
            return {
                "queued": len(self._queue),
                "running": len(self._running),
                "total": len(self._jobs),
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
                "recovered": self.recovered,
                "cancelled": self.cancelled,
                "shed": self.shed,
                "retried": self.retried,
                "quarantined": self.quarantined,
                "lease_skips": self.lease_skips,
                "adopted": self.adopted,
                "draining": self._draining,
                "queue_depth": self.config.service_queue_depth,
                "tenant_jobs": self.config.service_tenant_jobs,
                "threads": self.config.service_threads,
            }

    # -- durability ----------------------------------------------------

    def _persist(self, job: Job, with_payload: bool = False) -> None:
        """Durably commit the job record.

        The (possibly large) request payload is written once, at
        submission, under a ``<id>/payload`` sibling row; later state
        transitions rewrite only the slim record, so a screen job's
        lifecycle does not push its request body through the store's
        WAL three times while the engine is checkpointing shards into
        the same file.
        """
        if self.store is None:
            return
        record = job.snapshot()
        payload = record.pop("payload")
        rows = [(job.id, record)]
        if with_payload:
            rows.append((f"{job.id}/payload", {"payload": payload}))
        self.store.write_rows(JOB_NS, rows)

    def recover(self) -> int:
        """Replay the ``job:v1`` namespace after a restart.

        Settled jobs come back as served-from-record :class:`Job`
        objects (a screen job's final record synthesizes one full-span
        event so late SSE watchers still stream its answers).
        In-flight jobs — queued, running, or interrupted at the crash —
        are re-enqueued under their original ids; the engine's shard
        checkpoints make the re-run a replay, not a recompute.  Two
        exceptions: a "running" record under a live lease may still be
        executing on its (live, or just-died) owner, so it is
        registered read-only and only adopted by the heartbeat's orphan
        sweep once its lease lapses unrenewed; and a record whose
        persisted attempt count already reached ``service_retry_max``
        is quarantined straight to FAILED — that job has crashed the
        service enough times.  Returns the number of jobs re-enqueued.
        """
        if self.store is None:
            return 0
        resumed = 0
        rows = self.store.job_list()
        now = time.time()
        for job_id, record in sorted(
            rows.items(), key=lambda kv: kv[1].get("created", 0.0)
        ):
            if "/" in job_id:
                continue  # a payload sibling row, not a job record
            kind = record.get("kind")
            status = record.get("status")
            payload = record.get("payload")  # pre-split inline layout
            if payload is None:
                payload = rows.get(f"{job_id}/payload", {}).get("payload")
            if kind not in JOB_KINDS or not isinstance(payload, dict):
                continue
            with self._lock:
                known = job_id in self._jobs
            if known:
                continue
            attempts = int(record.get("attempts", 0) or 0)
            if status in _TERMINAL:
                job = Job(job_id, record.get("tenant", "default"), kind, payload)
                job.created = record.get("created", job.created)
                job.started = record.get("started")
                job.finished = record.get("finished")
                job.result = record.get("result")
                job.error = record.get("error")
                job.status = status
                job.attempts = attempts
                job.progress_done = record.get("progress", {}).get(
                    "done", job.progress_total
                )
                if (
                    kind == "screen"
                    and status == _DONE
                    and isinstance(job.result, dict)
                ):
                    matrix = job.result.get("matrix") or []
                    if matrix and matrix[0]:
                        job.events.append(
                            {
                                "start": 0,
                                "stop": len(matrix[0]),
                                "answers": matrix,
                            }
                        )
                with self._lock:
                    self._jobs[job_id] = job
                continue
            # In flight at the crash (queued / running / interrupted).
            claimed = False
            if status == _RUNNING:
                if not self.store.lease_acquire(
                    job_id, self.owner, self._lease_ttl_s, now
                ):
                    # Still running elsewhere: a live (or just-died,
                    # lease not yet lapsed) owner holds it.  Adopting
                    # now could double-execute, so register the record
                    # read-only; the heartbeat's orphan sweep takes it
                    # over the moment the lease expires unrenewed.
                    job = Job(
                        job_id, record.get("tenant", "default"), kind,
                        payload,
                    )
                    job.created = record.get("created", job.created)
                    job.started = record.get("started")
                    job.status = _RUNNING
                    job.attempts = attempts
                    job.progress_done = record.get("progress", {}).get(
                        "done", 0
                    )
                    with self._lock:
                        self._jobs[job_id] = job
                        self._foreign[job_id] = job
                        self.lease_skips += 1
                    continue
                # Orphaned (owner stopped beating) and now claimed in
                # one atomic CAS — a sibling recovering concurrently
                # saw the claim refused and registered it read-only.
                claimed = True
            if attempts >= self.config.service_retry_max:
                job = Job(job_id, record.get("tenant", "default"), kind, payload)
                job.created = record.get("created", job.created)
                job.started = record.get("started")
                job.attempts = attempts
                job.error = (
                    f"quarantined after {attempts} attempts: "
                    "crashed or interrupted in every prior run"
                )
                job._transition(_FAILED)
                with self._lock:
                    self._jobs[job_id] = job
                    self.quarantined += 1
                    self.failed += 1
                self._persist(job)
                if claimed:
                    self.store.lease_release(job_id, self.owner)
                continue
            try:
                # A claimed lease is kept through the requeue: _run
                # re-acquires it under the same owner, so no sibling
                # can slip in between adoption and execution.
                self.submit(
                    kind,
                    payload,
                    tenant=record.get("tenant", "default"),
                    job_id=job_id,
                    attempts=attempts,
                )
                resumed += 1
            except (wire.WireError, AdmissionError):
                if claimed:
                    self.store.lease_release(job_id, self.owner)
                continue
        self.recovered = resumed
        return resumed

    # -- drain / shutdown ----------------------------------------------

    def begin_drain(self) -> None:
        """Stop admission (submits now 503) and dispatch; running jobs
        keep going, queued jobs stay persisted for the next process."""
        with self._lock:
            if self._draining:
                return
            self._draining = True
            self._drain_deadline = (
                time.monotonic() + self.config.service_drain_ms / 1000.0
            )

    def drain(self, deadline_s: float | None = None) -> bool:
        """Graceful drain: stop admission, then wait up to
        ``deadline_s`` (default ``service_drain_ms``) for running jobs
        to checkpoint and settle.  True iff nothing was left running.
        """
        self.begin_drain()
        if deadline_s is None:
            deadline_s = self.config.service_drain_ms / 1000.0
        deadline = time.monotonic() + deadline_s
        while True:
            with self._lock:
                running = [
                    self._jobs[jid]
                    for jid in self._running
                    if jid in self._jobs
                ]
            if not running:
                return True
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return False
            running[0].wait(min(remaining, 0.25))

    def close(self) -> None:
        """Shut down with deterministic restart semantics.

        Pending retry timers are cancelled, the lease heartbeat stops,
        and every job still running gets an explicit ``INTERRUPTED``
        record (re-queueable: :meth:`recover` treats it like a queued
        record) before the executor is torn down — never again the
        silent ``cancel_futures=True`` drop.  Queued jobs are already
        persisted as queued.  Leases are released so the next process
        adopts the interrupted jobs without waiting out a TTL.
        """
        with self._lock:
            self._closing = True
            self._draining = True
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()
        self._hb_stop.set()
        if self._hb_thread is not None:
            self._hb_thread.join(1.0)
        interrupted: list[str] = []
        with self._lock:
            for jid in list(self._running):
                job = self._jobs.get(jid)
                if job is None or job.settled:
                    continue
                # Record-only: the in-memory job stays RUNNING so a
                # thread that settles during teardown still wins (its
                # locked persist happens-after this write).
                record = job.snapshot()
                record["status"] = _INTERRUPTED
                record.pop("payload", None)
                if self.store is not None:
                    self.store.write_rows(JOB_NS, [(jid, record)])
                interrupted.append(jid)
        if self.store is not None:
            for jid in interrupted:
                self.store.lease_release(jid, self.owner)
        self._executor.shutdown(wait=False, cancel_futures=True)
