"""Wire JSON codecs for the job service.

One vocabulary shared by the HTTP server, the client, and the CLI:

* structures travel as ``{"nodes": [...], "unary": [[label, node],
  ...], "binary": [[pred, src, dst], ...]}`` — the JSON twin of the
  pool runtime's ``to_wire`` triple;
* tri-state answers travel as plain JSON booleans when known and as
  ``{"unknown": reason}`` otherwise, so UNKNOWN is never coerced to
  a boolean anywhere on the wire;
* the resolved :class:`~repro.core.config.EngineConfig` serializes
  through one function, :func:`config_to_json`, used by both
  ``GET /v1/config`` and ``repro config --json``.

Node identity: JSON keys atoms by value, so structures built from
strings/ints round-trip exactly; exotic composite nodes (tuples,
frozensets) are rendered through ``repr`` and arrive as strings —
fine for screening/deciding, which never read node names back.
"""

from __future__ import annotations

from dataclasses import fields as _dc_fields
from typing import Any

from ..core.config import EngineConfig
from ..core.errors import Answer, EngineError
from ..core.semiring import Evaluation
from ..core.store import resolve_store_path
from ..core.structure import BinaryFact, Structure, UnaryFact

__all__ = [
    "WireError",
    "answer_from_json",
    "answer_to_json",
    "check_structure_json",
    "config_to_json",
    "decision_to_json",
    "evaluation_to_json",
    "probe_to_json",
    "public_record",
    "shard_to_json",
    "structure_from_json",
    "structure_to_json",
]


class WireError(EngineError):
    """A wire payload that does not decode to a valid request."""


def public_record(record: dict) -> dict:
    """A job record as it crosses the wire: everything except the
    (possibly large) request payload.  Shared by the HTTP responses,
    the SSE terminal frames, and the CLI's record printing, so the
    public shape is defined exactly once."""
    return {k: v for k, v in record.items() if k != "payload"}


_ATOMIC = (str, int, float, bool, type(None))


def _node_json(node) -> Any:
    """JSON rendering of one node: atoms by value, the rest by repr."""
    if isinstance(node, _ATOMIC):
        return node
    return repr(node)


def structure_to_json(structure: Structure) -> dict:
    """The ``(nodes, unary, binary)`` JSON triple for ``structure``.

    Facts are emitted in sorted order so equal structures serialize
    identically (digest-friendly for the bench's resume comparison).
    """
    nodes = sorted((_node_json(n) for n in structure.nodes), key=str)
    unary = sorted(
        [f.label, _node_json(f.node)] for f in structure.unary_facts
    )
    binary = sorted(
        [f.pred, _node_json(f.src), _node_json(f.dst)]
        for f in structure.binary_facts
    )
    return {"nodes": nodes, "unary": unary, "binary": binary}


def check_structure_json(obj: Any) -> None:
    """Shape-check a structure triple without building the structure.

    Admission control runs this instead of :func:`structure_from_json`
    so a large submission costs one pass of type checks, not a full
    index build that :meth:`JobManager._execute` would repeat anyway.
    Anything this accepts is guaranteed to decode.
    """
    if not isinstance(obj, dict):
        raise WireError("structure must be a JSON object")
    nodes = obj.get("nodes", ())
    unary = obj.get("unary", ())
    binary = obj.get("binary", ())
    for field, value in (("nodes", nodes), ("unary", unary),
                         ("binary", binary)):
        if not isinstance(value, (list, tuple)):
            raise WireError(f"structure field {field!r} must be an array")
    for node in nodes:
        if not isinstance(node, _ATOMIC):
            raise WireError(f"non-atomic node: {node!r}")
    for fact in unary:
        if (
            not isinstance(fact, (list, tuple))
            or len(fact) != 2
            or not isinstance(fact[1], _ATOMIC)
        ):
            raise WireError(f"malformed unary fact: {fact!r}")
    for fact in binary:
        if (
            not isinstance(fact, (list, tuple))
            or len(fact) != 3
            or not isinstance(fact[1], _ATOMIC)
            or not isinstance(fact[2], _ATOMIC)
        ):
            raise WireError(f"malformed binary fact: {fact!r}")
    if not (nodes or unary or binary):
        raise WireError("structure has no nodes")


def structure_from_json(obj: Any) -> Structure:
    """Decode a ``(nodes, unary, binary)`` JSON triple."""
    if not isinstance(obj, dict):
        raise WireError("structure must be a JSON object")
    try:
        nodes = set(obj.get("nodes", ()))
        unary = {
            UnaryFact(str(label), node)
            for label, node in obj.get("unary", ())
        }
        binary = {
            BinaryFact(str(pred), src, dst)
            for pred, src, dst in obj.get("binary", ())
        }
    except (TypeError, ValueError) as exc:
        raise WireError(f"malformed structure payload: {exc}") from None
    nodes |= {f.node for f in unary}
    nodes |= {f.src for f in binary} | {f.dst for f in binary}
    if not nodes:
        raise WireError("structure has no nodes")
    return Structure(nodes, unary, binary)


def answer_to_json(value) -> Any:
    """A tri-state answer as wire JSON: bool, or ``{"unknown": reason}``."""
    if isinstance(value, Answer):
        if value.known:
            return bool(value.value)
        return {"unknown": value.reason or "unknown"}
    if isinstance(value, bool):
        return value
    if value is None:
        return {"unknown": "unknown"}
    raise WireError(f"not a tri-state answer: {value!r}")


def answer_from_json(obj: Any):
    """Decode :func:`answer_to_json` output: bool, or UNKNOWN Answer."""
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, dict) and "unknown" in obj:
        return Answer.unknown(str(obj["unknown"]))
    raise WireError(f"not a wire answer: {obj!r}")


def _json_value(value) -> Any:
    """A semiring carrier as JSON, by value when possible, else repr.

    Exotic carriers (the why-semiring's sets of fact sets) are not
    JSON-shaped; their repr is still useful to a client and keeps the
    wire total.
    """
    if isinstance(value, _ATOMIC):
        return value
    return repr(value)


def evaluation_to_json(ev: Evaluation) -> dict:
    return {
        "value": None if ev.value is None else _json_value(ev.value),
        "semiring": ev.semiring,
        "backend": ev.backend,
        "witness": None
        if ev.witness is None
        else {str(_node_json(k)): _node_json(v) for k, v in ev.witness.items()},
        "reason": ev.reason,
        "answer": answer_to_json(ev.answer),
    }


def probe_to_json(result) -> dict:
    return {
        "verdict": result.verdict.value,
        "depth": result.depth,
        "probe_depth": result.probe_depth,
        "cactuses_examined": result.cactuses_examined,
        "uncovered": list(result.uncovered),
        "reason": result.reason,
        "answer": answer_to_json(result.answer),
    }


def decision_to_json(decision) -> dict:
    return {
        "bounded": decision.bounded,
        "method": decision.method.value,
        "exact": decision.exact,
        "describe": decision.describe(),
        "probe": None
        if decision.probe is None
        else probe_to_json(decision.probe),
    }


def shard_to_json(shard) -> dict:
    """A :class:`~repro.core.runtime.ScreenShard` as an SSE data frame."""
    return {
        "start": shard.start,
        "stop": shard.stop,
        "answers": [
            [answer_to_json(a) for a in row] for row in shard.answers
        ],
    }


def config_to_json(config: EngineConfig) -> dict:
    """The resolved config as JSON — the one serializer behind both
    ``GET /v1/config`` and ``repro config --json``."""
    out: dict[str, Any] = {}
    for f in _dc_fields(config):
        value = getattr(config, f.name)
        if f.name == "fault_plan":
            value = [list(item) for item in value] if value else []
        elif hasattr(value, "__fspath__"):
            value = str(value)
        elif not isinstance(value, _ATOMIC):
            value = repr(value)
        out[f.name] = value
    out["effective_workers"] = config.effective_workers()
    path = resolve_store_path(config.cache_dir)
    out["cache_path"] = None if path is None else str(path)
    return out
