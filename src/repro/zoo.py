"""The paper's zoo of example queries and data instances.

``q1`` – ``q4`` and ``q7`` are taken verbatim from the text of Examples 1
and 4 and Section 4.  The queries ``q5``, ``q6`` and ``q8`` appear in the
paper only as pictures whose labels do not survive PDF text extraction;
for those we ship *reconstructions* found by exhaustive search over small
line-shaped ditrees, each verified (by this library's cactus machinery,
in ``tests/test_zoo.py``) to exhibit exactly the properties the paper
claims:

* ``q5``: focused; ``(Σ_q5, P)`` and ``(Π_q5, G)`` bounded with UCQ
  rewriting ``C0 ∨ C1`` (Example 4);
* ``q6``: two solitary T nodes; ``(Π_q6, G)`` FO-rewritable but not
  focused, and ``(Σ_q6, P)`` unbounded (Example 4);
* ``q8``: a span-1 Λ-CQ with FT-twins that is FO-rewritable to
  ``C0 ∨ C1 ∨ C2`` and not to fewer disjuncts (Example 5).

Expected data complexities (Example 1): q1 coNP, q2 P, q3 NL, q4 L,
q5 AC0; q6–q8 are FO-rewritable as d-sirups.
"""

from __future__ import annotations

from dataclasses import dataclass

from .core.cactus import build_cactus, chain_shape
from .core.cq import OneCQ
from .core.structure import (
    F,
    R,
    S,
    Structure,
    StructureBuilder,
    T,
)


def _line(labels: tuple[str, ...], dirs: tuple[int, ...], pred: str = R) -> Structure:
    """A line-shaped CQ: node i—node i+1 with direction dirs[i]
    (1 = left-to-right).  Label "FT" means an FT-twin."""
    b = StructureBuilder()
    for i, lab in enumerate(labels):
        if lab == "FT":
            b.add_node(f"u{i}", F, T)
        elif lab:
            b.add_node(f"u{i}", lab)
        else:
            b.add_node(f"u{i}")
    for i, d in enumerate(dirs):
        if d:
            b.add_edge(f"u{i}", f"u{i+1}", pred)
        else:
            b.add_edge(f"u{i+1}", f"u{i}", pred)
    return b.build()


def q1() -> Structure:
    """Example 1, q1: the R-path F -> F -> T -> T.  coNP-complete."""
    return _line(("F", "F", "T", "T"), (1, 1, 1))


def q2() -> Structure:
    """Example 1, q2: T -S-> T -R-> F.  P-complete."""
    b = StructureBuilder()
    b.add_node("u0", T)
    b.add_node("u1", T)
    b.add_node("u2", F)
    b.add_edge("u0", "u1", S)
    b.add_edge("u1", "u2", R)
    return b.build()


def q3() -> Structure:
    """Example 1, q3: T -R-> T -R-> F.  NL-complete."""
    return _line(("T", "T", "F"), (1, 1))


def q4() -> Structure:
    """Example 1, q4: G <- F(x), R(y, x), R(y, z), T(z).  L-complete.

    The quasi-symmetric 'V': x(F) <- y -> z(T).
    """
    b = StructureBuilder()
    b.add_node("x", F)
    b.add_node("y")
    b.add_node("z", T)
    b.add_edge("y", "x", R)
    b.add_edge("y", "z", R)
    return b.build()


def q5() -> Structure:
    """Example 1/4, q5 (reconstruction): a line ditree with FT-twins.

    ``F <- FT <- FT -> T -> * -> *`` — one solitary F, one solitary T
    (≺-incomparable), two twins.  Verified: focused, Σ- and Π-bounded at
    depth exactly 1 (UCQ rewriting C0 ∨ C1), hence AC0.
    """
    return _line(("F", "FT", "FT", "T", "", ""), (0, 0, 1, 1, 1))


def q6() -> Structure:
    """Example 4, q6 (reconstruction): ``F <- T -> FT -> T``.

    Two solitary T nodes and one twin.  Verified: ``(Π_q6, G)`` is
    FO-rewritable but every covering homomorphism moves the root focus
    onto an FT-twin, so q6 is not focused and ``(Σ_q6, P)`` is unbounded.
    """
    return _line(("F", "T", "FT", "T"), (0, 1, 1))


def q7() -> Structure:
    """Section 4, q7: the line T FT FT F FT FT (labels verbatim).

    The paper draws q7 as a line whose arrow directions the PDF text
    does not preserve; the directions are pinned down by the paper's
    requirement that q7's solitary pair be ≺-incomparable (it is listed
    among the CQs "outside the scope of Theorem 7") and by its
    FO-rewritability.  The unique direction assignment satisfying both
    is ``T <- FT -> FT -> F -> FT -> FT`` (root = the first FT), which
    our probe verifies to be FO-rewritable.
    """
    return _line(("T", "FT", "FT", "F", "FT", "FT"), (0, 1, 1, 1, 1))


def q8() -> Structure:
    """Example 5, q8 (reconstruction): a 13-node span-1 Λ-CQ.

    Transcribed from the paper's picture: an FT root with two FT
    connectors, one leading into a line holding the solitary F among
    four twins, the other into a line holding the solitary T among four
    twins.  Verified FO-rewritable (our probe certifies a small covering
    depth); the paper's Example 5 additionally claims the minimal
    rewriting is ``C0 ∨ C1 ∨ C2`` for its exact picture, whose
    arrow directions the PDF text does not preserve.
    """
    b = StructureBuilder()
    b.add_node("root", F, T)
    b.add_node("c1", F, T)
    b.add_node("c2", F, T)
    b.add_edge("root", "c1")
    b.add_edge("root", "c2")
    # F-line: f <- a -> fl0 -> fl1 -> fl2, attached below c1.
    b.add_node("a", F, T)
    b.add_edge("c1", "a")
    b.add_node("f", F)
    b.add_edge("a", "f")
    prev = "a"
    for i in range(3):
        b.add_node(f"fl{i}", F, T)
        b.add_edge(prev, f"fl{i}")
        prev = f"fl{i}"
    # T-line: tl1 <- tl0 <- t -> tr0 -> tr1, attached below c2.
    b.add_node("t", T)
    b.add_edge("c2", "t")
    prev = "t"
    for i in range(2):
        b.add_node(f"tl{i}", F, T)
        b.add_edge(prev, f"tl{i}")
        prev = f"tl{i}"
    prev = "t"
    for i in range(2):
        b.add_node(f"tr{i}", F, T)
        b.add_edge(prev, f"tr{i}")
        prev = f"tr{i}"
    return b.build()


def d1() -> Structure:
    """Example 2's D1 (reconstruction): the R-path F, F, A, T, T.

    Whichever way the A node is completed, q1 embeds — the certain
    answer to ``(Δ_q1, G)`` is 'yes' although no completion-free match
    exists ('proof by case distinction').
    """
    return _line(("F", "F", "A", "T", "T"), (1, 1, 1, 1), pred=R)


def d2() -> Structure:
    """Example 2/3's D2: the cactus for q2 obtained by budding twice.

    Isomorphic to a chain cactus of depth 2 (Example 3); the certain
    answer to ``(Δ_q2, G)`` over D2 is 'yes'.
    """
    one = OneCQ.from_structure(q2())
    return build_cactus(one, chain_shape([0, 0])).structure


@dataclass(frozen=True)
class ZooEntry:
    """One row of the Example 1 table."""

    name: str
    query: Structure
    expected: str  # data complexity claimed in the paper
    source: str  # verbatim | reconstruction
    notes: str


def zoo_table() -> list[ZooEntry]:
    """The paper's classification table (Example 1 + Section 4)."""
    return [
        ZooEntry("q1", q1(), "coNP-complete", "verbatim", "two solitary Fs"),
        ZooEntry("q2", q2(), "P-complete", "verbatim", "S then R edge"),
        ZooEntry("q3", q3(), "NL-complete", "verbatim", "comparable pair"),
        ZooEntry("q4", q4(), "L-complete", "verbatim", "quasi-symmetric"),
        ZooEntry("q5", q5(), "AC0 (FO-rewritable)", "reconstruction", "focused, bounded"),
        ZooEntry("q6", q6(), "AC0 as d-sirup; Σ unbounded", "reconstruction", "unfocused"),
        ZooEntry("q7", q7(), "AC0 (FO-rewritable)", "verbatim", "twin path"),
        ZooEntry("q8", q8(), "AC0 (FO-rewritable)", "reconstruction", "Λ-CQ, depth-2 witness"),
    ]


def one_cq(structure: Structure) -> OneCQ:
    """Convenience: validate a zoo query as a 1-CQ."""
    return OneCQ.from_structure(structure)


# ----------------------------------------------------------------------
# Bulk classification sweep over instance families
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ZooScreenRow:
    """One zoo query's classification plus its certain answers over an
    instance family.

    ``decision`` is ``None`` for non-1-CQ entries (q1 has two solitary
    F nodes, so ``Π_q``/``Σ_q`` are not defined for it).  ``answers``
    is ``None`` unless a covering depth was certified within the probe
    budget — the UCQ rewriting is only a correct evaluation for a
    certified depth.
    """

    name: str
    expected: str
    decision: object | None  # repro.decide.BoundednessDecision
    covering_depth: int | None
    answers: tuple[bool, ...] | None


def screen_zoo(
    instances: list[Structure], probe_depth: int = 3, session=None
) -> list[ZooScreenRow]:
    """Bulk-classify the zoo and screen an instance family in one sweep.

    For every :func:`zoo_table` query this routes the classification to
    the strongest decider (:func:`repro.decide.decide_boundedness`:
    span-0 / exact Λ-CQ / Proposition 2 probe) and, whenever a covering
    depth ``d`` is certified within ``probe_depth``, evaluates the
    depth-``d`` UCQ rewriting over the whole ``instances`` family —
    the batch traffic shape of
    :func:`~repro.workloads.generators.instance_family`.

    All certified rewritings are screened in *one*
    :func:`~repro.core.runtime.parallel_screen` call over the flattened
    disjunct pool: large families shard across the process pool
    (``REPRO_HOM_WORKERS``) with each worker rebuilding its instance
    chunk once for the whole sweep; small families keep the serial fast
    path.  Per-query answers are the OR over that query's disjunct
    rows.
    """
    from .core.boundedness import (
        Verdict,
        probe_boundedness,
        ucq_rewriting,
    )
    from .core.cq import is_one_cq
    from .core.runtime import parallel_screen
    from .decide import decide_boundedness

    classified: list[tuple] = []  # (name, expected, decision, depth, ucq)
    for entry in zoo_table():
        if not is_one_cq(entry.query):
            classified.append((entry.name, entry.expected, None, None, None))
            continue
        cq = OneCQ.from_structure(entry.query)
        decision = decide_boundedness(cq, probe_depth, session=session)
        depth: int | None = None
        ucq: list[Structure] | None = None
        if decision.bounded:
            # The rewriting needs an explicit covering depth; the probe
            # shares the pooled cactus factory with the decision above,
            # so certified-bounded queries re-answer from cache.
            probe = probe_boundedness(cq, probe_depth, session=session)
            if probe.verdict is Verdict.BOUNDED:
                depth = probe.depth
                ucq = ucq_rewriting(cq, depth, session=session)
        classified.append((entry.name, entry.expected, decision, depth, ucq))

    pool = [d for _, _, _, _, ucq in classified if ucq for d in ucq]
    answer_rows = (
        parallel_screen(pool, instances, session=session)
        if pool and instances
        else []
    )

    rows: list[ZooScreenRow] = []
    offset = 0
    for name, expected, decision, depth, ucq in classified:
        answers: tuple[bool, ...] | None = None
        if ucq is not None:
            span = answer_rows[offset:offset + len(ucq)]
            offset += len(ucq)
            answers = tuple(
                any(row[i] for row in span)
                for i in range(len(instances))
            )
        rows.append(ZooScreenRow(name, expected, decision, depth, answers))
    return rows


# ----------------------------------------------------------------------
# The hostile zoo: workloads built to fight the engine
# ----------------------------------------------------------------------


def hostile_suite(
    count: int = 6,
    size: int = 9,
    instances: int = 8,
    n: int = 24,
    seed: int = 0,
) -> tuple[list[Structure], list[Structure]]:
    """The adversarial counterpart of the paper zoo: ``(queries,
    targets)`` drawn from the two hostile generator families.

    Queries are treewidth-3 :func:`~repro.workloads.generators.
    random_ktree_cq` draws — cyclic, dense constraint graphs that force
    the decomp backend's min-fill fallback and give backtracking no
    tree shortcut; targets are :func:`~repro.workloads.generators.
    dense_multigraph_instance` draws — high edge density and
    multi-predicate parallel edges, so AC-3 barely prunes.  Everything
    is seed-deterministic, making the suite usable as both a stress
    workload and a differential regression fixture.
    """
    from .workloads.generators import hostile_family, random_ktree_cq

    queries = [
        random_ktree_cq(size, seed * 91193 + i) for i in range(count)
    ]
    targets = hostile_family(instances, n, seed + 1)
    return queries, targets


def screen_hostile(
    count: int = 6,
    size: int = 9,
    instances: int = 8,
    n: int = 24,
    seed: int = 0,
    session=None,
) -> list[list[bool]]:
    """Screen the :func:`hostile_suite` — ``result[qi][di]`` as in
    :meth:`repro.session.Session.screen` — through whatever session
    machinery (pool, governance, durable checkpoints) is configured."""
    queries, targets = hostile_suite(count, size, instances, n, seed)
    if session is None:
        from .session import default_session

        session = default_session()
    return session.screen(queries, targets)
