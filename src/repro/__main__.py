"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``zoo``
    Print the Example 1 query zoo with classifier verdicts.
``decide <query>``
    Decide boundedness of a zoo query (``q2`` .. ``q8``) or of a CQ
    read from a file of ``label(node)`` / ``pred(src, dst)`` lines.
``eval <query> <data> [--semiring NAME]``
    Evaluate a CQ over a data instance under a commutative semiring
    (``bool`` / ``count`` / ``prob`` / ``minplus`` / ``maxplus`` /
    ``why``) through the unified ``Session.evaluate`` surface; both
    arguments are zoo names or CQ-file paths, and ``--weights`` reads
    per-fact annotations from ``atom = value`` lines.
``demo``
    Run the Theorem 3 pipeline on the toy alternating Turing machines.
``config [--json]``
    Print the resolved :class:`~repro.core.config.EngineConfig` — the
    environment, the global flags, and the defaults merged in
    precedence order (env < flag) — plus the resolved durable-store
    path (``cache_path``).  ``--json`` emits the same resolution as
    machine-readable JSON through the service wire serializer, so
    scripted callers and ``GET /v1/config`` read one format.
``serve``
    Run the multi-tenant job service (:mod:`repro.service`) until
    interrupted; ``--host`` / ``--port`` / ``--tenants`` / ``--threads``
    / ``--queue-depth`` / ``--tenant-jobs`` / ``--retry-max`` /
    ``--drain-ms`` / ``--lease-ttl-ms`` override the
    ``REPRO_SERVICE_*`` environment.  SIGTERM drains gracefully
    (admission 503s, running jobs checkpoint, then exit).
``jobs submit|get|watch|cancel``
    Client for a running service: ``submit`` posts a
    decide/evaluate/probe/screen job built from zoo names, CQ files or
    a generated ``--family``; ``get`` prints the job record; ``watch``
    streams the SSE shard feed; ``cancel`` requests cooperative
    cancellation.  Exit status 1 when the job failed, 3 when its
    tri-state outcome is UNKNOWN, 4 when it was cancelled.
``cache stats|clear|verify``
    Operate on the durable store (``REPRO_CACHE_DIR`` /
    ``--cache-dir``): ``stats`` prints entry counts, bytes, lifetime
    hit rates and quarantine history; ``clear`` drops every entry;
    ``verify`` recomputes every row checksum, dropping (and reporting)
    corrupt rows — exit status 1 when any were found.

Global flags (before the command) configure the session every command
runs in: ``--backend`` picks the hom backend (``naive`` / ``bitset`` /
``matrix`` / ``auto``), ``--workers`` sizes the shard executor,
``--no-cache`` disables the hom-cache and ``--cache-dir`` points the
durable store at a directory.  The CLI is a thin veneer over the
public :class:`~repro.session.Session` API; anything serious should
import :mod:`repro` directly.
"""

from __future__ import annotations

import argparse
import json
import sys

from . import zoo
from .core.config import BACKEND_CHOICES, EngineConfig
from .core.structure import Structure, StructureBuilder
from .session import Session


def _parse_cq_file(path: str) -> Structure:
    """Read a CQ from ``label(node)`` / ``pred(a, b)`` lines.

    Lines starting with ``#`` and blank lines are skipped.
    """
    builder = StructureBuilder()
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            name, _, rest = line.partition("(")
            args = [a.strip() for a in rest.rstrip(")").split(",")]
            if len(args) == 1:
                builder.add_node(args[0], name.strip())
            elif len(args) == 2:
                builder.add_edge(args[0], args[1], name.strip())
            else:
                raise ValueError(f"cannot parse atom: {line!r}")
    return builder.build()


def _load_structure(name_or_path: str) -> Structure:
    """A zoo query by name (``q2`` / ``d1`` ...) or a CQ file."""
    if hasattr(zoo, name_or_path):
        return getattr(zoo, name_or_path)()
    return _parse_cq_file(name_or_path)


def _parse_atom(text: str):
    """``label(node)`` -> UnaryFact, ``pred(a, b)`` -> BinaryFact."""
    from .core.structure import BinaryFact, UnaryFact

    name, _, rest = text.partition("(")
    args = [a.strip() for a in rest.rstrip(")").split(",")]
    if len(args) == 1:
        return UnaryFact(name.strip(), args[0])
    if len(args) == 2:
        return BinaryFact(name.strip(), args[0], args[1])
    raise ValueError(f"cannot parse atom: {text!r}")


def _parse_weights_file(path: str) -> dict:
    """Read fact annotations from ``atom = value`` lines (value a
    python number; ``#`` comments and blank lines skipped)."""
    weights: dict = {}
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            atom, sep, value = line.rpartition("=")
            if not sep:
                raise ValueError(f"expected 'atom = value': {line!r}")
            parsed = float(value.strip())
            weights[_parse_atom(atom.strip())] = (
                int(parsed) if parsed.is_integer() else parsed
            )
    return weights


def _config_from_args(args: argparse.Namespace) -> EngineConfig:
    """The resolved config every command runs under: environment
    first, explicit flags on top (the documented env < config
    precedence).  Service flags only exist on ``serve``."""
    overrides: dict = {}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.no_cache:
        overrides["hom_cache"] = False
    if args.cache_dir is not None:
        overrides["cache_dir"] = args.cache_dir or None
    for flag, field in (
        ("host", "service_host"),
        ("port", "service_port"),
        ("tenants", "service_tenants"),
        ("threads", "service_threads"),
        ("queue_depth", "service_queue_depth"),
        ("tenant_jobs", "service_tenant_jobs"),
        ("retry_max", "service_retry_max"),
        ("drain_ms", "service_drain_ms"),
        ("lease_ttl_ms", "service_lease_ttl_ms"),
    ):
        value = getattr(args, flag, None)
        if value is not None:
            overrides[field] = value
    return EngineConfig.from_env(**overrides)


def _session_from_args(args: argparse.Namespace) -> Session:
    return Session(_config_from_args(args))


def _cmd_zoo(_session: Session, _args: argparse.Namespace) -> int:
    from .core.cq import solitary_f_nodes, solitary_t_nodes, twin_nodes

    for entry in zoo.zoo_table():
        q = entry.query
        census = (
            f"F={len(solitary_f_nodes(q))} T={len(solitary_t_nodes(q))} "
            f"FT={len(twin_nodes(q))}"
        )
        print(f"{entry.name:4} {census:16} paper: {entry.expected}")
    return 0


def _cmd_decide(session: Session, args: argparse.Namespace) -> int:
    if hasattr(zoo, args.query):
        q = getattr(zoo, args.query)()
    else:
        q = _parse_cq_file(args.query)
    decision = session.decide_boundedness(q, probe_depth=args.probe_depth)
    print(decision.describe())
    return 0


def _cmd_eval(session: Session, args: argparse.Namespace) -> int:
    from .core.semiring import resolve_semiring

    q = _load_structure(args.query)
    data = _load_structure(args.data)
    weights = (
        _parse_weights_file(args.weights) if args.weights else None
    )
    if weights and resolve_semiring(args.semiring).dtype == "object":
        print(
            f"--weights files hold numbers, but semiring "
            f"{args.semiring!r} has a non-numeric carrier (its values "
            f"are witness sets); drop --weights or pick a numeric "
            f"semiring",
            file=sys.stderr,
        )
        return 2
    ev = session.evaluate(
        q, data, args.semiring, weights=weights, backend=args.eval_backend
    )
    if not ev.known:
        # Exit 3 is the governed-UNKNOWN code (2 stays usage errors),
        # so scripts can tell UNKNOWN from FALSE and from bad flags.
        print(f"UNKNOWN ({ev.reason}) [semiring={ev.semiring}]")
        return 3
    print(f"{ev.value!r} [semiring={ev.semiring} backend={ev.backend}]")
    if ev.witness is not None:
        mapping = ", ".join(
            f"{k}->{v}" for k, v in sorted(ev.witness.items(), key=str)
        )
        print(f"witness: {mapping}")
    return 0


def _cmd_demo(_session: Session, _args: argparse.Namespace) -> int:
    from .atm.machine import toy_alternation_machine
    from .atm.reduction import build_query, skeleton_boundedness_semantics

    machine = toy_alternation_machine()
    for word in ("1", "0"):
        result = build_query(machine, word)
        print(result.describe())
        report = skeleton_boundedness_semantics(machine, word)
        print(report.describe())
        print()
    return 0


def _cmd_config(session: Session, args: argparse.Namespace) -> int:
    from .core.store import resolve_store_path

    if args.json:
        from .service.wire import config_to_json

        print(json.dumps(config_to_json(session.config), indent=2))
        return 0
    print(session.config.describe())
    path = resolve_store_path(session.config.cache_dir)
    print(f"cache_path={str(path) if path else None!r}")
    return 0


def _cmd_cache(session: Session, args: argparse.Namespace) -> int:
    store = session.store
    if store is None:
        print(
            "no durable store configured: set REPRO_CACHE_DIR or pass "
            "--cache-dir",
            file=sys.stderr,
        )
        return 2
    if args.action == "stats":
        print(store.stats().describe())
        return 0
    if args.action == "clear":
        dropped = store.clear()
        print(f"cleared {dropped} entries from {store.path}")
        return 0
    checked, dropped = store.verify()
    print(f"verified {checked} entries, dropped {dropped} corrupt")
    return 1 if dropped else 0


def _cmd_serve(config: EngineConfig, _args: argparse.Namespace) -> int:
    from .service.server import run

    run(config)
    return 0


def _parse_server(spec: str | None, config: EngineConfig) -> tuple[str, int]:
    if not spec:
        return config.service_host, config.service_port
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--server needs HOST:PORT, got {spec!r}")
    return host, int(port)


def _submit_payload(args: argparse.Namespace) -> dict:
    """Build the job payload from zoo names / CQ files / ``--family``."""
    from .service.wire import structure_to_json

    queries = [
        structure_to_json(_load_structure(q)) for q in (args.query or ())
    ]
    instances = [
        structure_to_json(_load_structure(d)) for d in (args.data or ())
    ]
    if args.family:
        from .workloads.generators import instance_family

        try:
            count, nodes, edges, seed = (
                int(x) for x in args.family.split(",")
            )
        except ValueError:
            raise SystemExit(
                f"--family needs COUNT,NODES,EDGES,SEED, got "
                f"{args.family!r}"
            ) from None
        instances.extend(
            structure_to_json(s)
            for s in instance_family(count, nodes, edges, seed=seed)
        )
    if args.kind == "screen":
        if not queries or not instances:
            raise SystemExit(
                "screen needs at least one --query and one --data/--family"
            )
        payload: dict = {"queries": queries, "instances": instances}
    else:
        if len(queries) != 1:
            raise SystemExit(f"{args.kind} needs exactly one --query")
        payload = {"query": queries[0]}
        if args.kind == "evaluate":
            if len(instances) != 1:
                raise SystemExit("evaluate needs exactly one --data")
            payload["data"] = instances[0]
            payload["semiring"] = args.semiring
        else:
            payload["probe_depth"] = args.probe_depth
    return payload


def _job_exit_code(record: dict) -> int:
    """0 settled-known, 1 failed, 3 any tri-state UNKNOWN in the result
    (the same code ``repro eval`` uses for a governed UNKNOWN), 4
    cancelled."""
    if record.get("status") == "cancelled":
        return 4
    if record.get("status") != "done":
        return 1
    result = record.get("result") or {}
    if isinstance(result, dict):
        answer = result.get("answer")
        if isinstance(answer, dict) and "unknown" in answer:
            return 3
        if result.get("bounded") is None and "bounded" in result:
            return 3
        matrix = result.get("matrix") or []
        for row in matrix:
            if any(isinstance(a, dict) and "unknown" in a for a in row):
                return 3
    return 0


def _watch_job(client, job_id: str) -> int:
    final: dict = {}
    for event, data in client.watch(job_id):
        if event == "shard":
            print(
                f"shard [{data['start']},{data['stop']}) "
                f"{json.dumps(data['answers'])}"
            )
        elif event in ("done", "cancelled"):
            final = data or {}
    status = final.get("status", "unknown")
    print(f"job {job_id}: {status}")
    if final.get("error"):
        print(final["error"], file=sys.stderr)
    return _job_exit_code(final)


def _cmd_jobs(config: EngineConfig, args: argparse.Namespace) -> int:
    from .service.client import ServiceClient, ServiceError

    host, port = _parse_server(args.server, config)
    client = ServiceClient(host, port)
    try:
        if args.jobs_command == "submit":
            record = client.submit(
                args.kind, _submit_payload(args), tenant=args.tenant
            )
            print(f"job {record['id']}: {record['status']}")
            if args.watch:
                return _watch_job(client, record["id"])
            return 0
        if args.jobs_command == "get":
            print(json.dumps(client.job(args.job_id), indent=2))
            return 0
        if args.jobs_command == "cancel":
            record = client.cancel(args.job_id)
            print(f"job {record['id']}: {record['status']}")
            return 0
        return _watch_job(client, args.job_id)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Deciding Boundedness of Monadic Sirups (PODS 2021)",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default=None,
        help="hom-search backend for this run (overrides REPRO_HOM_BACKEND)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="shard-executor worker count (overrides REPRO_HOM_WORKERS; "
        "<= 1 disables parallelism)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the homomorphism cache for this run",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="durable-store directory (overrides REPRO_CACHE_DIR; "
        "empty string disables the disk tier)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("zoo", help="print the Example 1 query zoo")

    decide = commands.add_parser(
        "decide", help="decide boundedness of a zoo query or CQ file"
    )
    decide.add_argument("query", help="zoo name (q2..q8) or path to a CQ file")
    decide.add_argument(
        "--probe-depth", type=int, default=3,
        help="probe depth for non-Lambda queries (default 3)",
    )

    ev = commands.add_parser(
        "eval", help="evaluate a CQ over an instance under a semiring"
    )
    ev.add_argument("query", help="zoo name (q1..q8) or path to a CQ file")
    ev.add_argument("data", help="zoo name (d1, d2) or path to a CQ file")
    ev.add_argument(
        "--semiring", default="bool",
        help="registered semiring name: bool / count / prob / minplus / "
        "maxplus / why (default bool)",
    )
    ev.add_argument(
        "--weights", default=None, metavar="FILE",
        help="per-fact annotations, one 'atom = value' line each",
    )
    ev.add_argument(
        "--eval-backend", default=None, choices=BACKEND_CHOICES,
        help="force one hom backend for this evaluation",
    )

    commands.add_parser("demo", help="run the Theorem 3 toy pipeline")

    config_cmd = commands.add_parser(
        "config", help="print the resolved engine configuration"
    )
    config_cmd.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON (the /v1/config wire format)",
    )

    serve = commands.add_parser(
        "serve", help="run the multi-tenant job service"
    )
    serve.add_argument(
        "--host", default=None,
        help="bind address (overrides REPRO_SERVICE_HOST)",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="bind port, 0 for ephemeral (overrides REPRO_SERVICE_PORT)",
    )
    serve.add_argument(
        "--tenants", type=int, default=None,
        help="session-registry LRU capacity (REPRO_SERVICE_TENANTS)",
    )
    serve.add_argument(
        "--threads", type=int, default=None,
        help="job executor threads (REPRO_SERVICE_THREADS)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=None,
        help="backlog cap before 429 (REPRO_SERVICE_QUEUE_DEPTH)",
    )
    serve.add_argument(
        "--tenant-jobs", type=int, default=None,
        help="per-tenant running-job cap (REPRO_SERVICE_TENANT_JOBS)",
    )
    serve.add_argument(
        "--retry-max", type=int, default=None,
        help="job attempts before quarantine (REPRO_SERVICE_RETRY_MAX)",
    )
    serve.add_argument(
        "--drain-ms", type=int, default=None,
        help="SIGTERM graceful-drain deadline (REPRO_SERVICE_DRAIN_MS)",
    )
    serve.add_argument(
        "--lease-ttl-ms", type=int, default=None,
        help="job ownership lease TTL (REPRO_SERVICE_LEASE_TTL_MS)",
    )

    jobs = commands.add_parser(
        "jobs", help="submit to / query a running job service"
    )
    jobs.add_argument(
        "--server", default=None, metavar="HOST:PORT",
        help="service endpoint (default: the resolved service host/port)",
    )
    jobs_commands = jobs.add_subparsers(dest="jobs_command", required=True)
    submit = jobs_commands.add_parser(
        "submit", help="post a job: decide / evaluate / probe / screen"
    )
    submit.add_argument(
        "kind", choices=("decide", "evaluate", "probe", "screen"),
    )
    submit.add_argument(
        "--query", action="append", metavar="Q",
        help="zoo name or CQ file (repeatable for screen)",
    )
    submit.add_argument(
        "--data", action="append", metavar="D",
        help="zoo name or CQ file (repeatable for screen instances)",
    )
    submit.add_argument(
        "--family", default=None, metavar="COUNT,NODES,EDGES,SEED",
        help="generate screen instances with workloads.instance_family",
    )
    submit.add_argument(
        "--semiring", default="bool",
        help="semiring for evaluate jobs (default bool)",
    )
    submit.add_argument(
        "--probe-depth", type=int, default=3,
        help="probe depth for decide/probe jobs (default 3)",
    )
    submit.add_argument(
        "--tenant", default="default", help="tenant to run the job as"
    )
    submit.add_argument(
        "--watch", action="store_true",
        help="stream the job's SSE feed after submitting",
    )
    get = jobs_commands.add_parser("get", help="print one job record")
    get.add_argument("job_id")
    watch = jobs_commands.add_parser(
        "watch", help="stream a job's SSE shard feed"
    )
    watch.add_argument("job_id")
    cancel = jobs_commands.add_parser(
        "cancel", help="request cooperative cancellation of a job"
    )
    cancel.add_argument("job_id")

    cache = commands.add_parser(
        "cache", help="inspect or maintain the durable store"
    )
    cache.add_argument(
        "action", choices=("stats", "clear", "verify"),
        help="stats: occupancy + hit rates; clear: drop every entry; "
        "verify: full checksum sweep (exit 1 if corrupt rows found)",
    )

    args = parser.parse_args(argv)
    handlers = {
        "zoo": _cmd_zoo,
        "decide": _cmd_decide,
        "eval": _cmd_eval,
        "demo": _cmd_demo,
        "config": _cmd_config,
        "cache": _cmd_cache,
    }
    if args.command == "serve":
        return _cmd_serve(_config_from_args(args), args)
    if args.command == "jobs":
        return _cmd_jobs(_config_from_args(args), args)
    with _session_from_args(args) as session:
        return handlers[args.command](session, args)


if __name__ == "__main__":
    sys.exit(main())
