"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``zoo``
    Print the Example 1 query zoo with classifier verdicts.
``decide <query>``
    Decide boundedness of a zoo query (``q2`` .. ``q8``) or of a CQ
    read from a file of ``label(node)`` / ``pred(src, dst)`` lines.
``eval <query> <data> [--semiring NAME]``
    Evaluate a CQ over a data instance under a commutative semiring
    (``bool`` / ``count`` / ``prob`` / ``minplus`` / ``maxplus`` /
    ``why``) through the unified ``Session.evaluate`` surface; both
    arguments are zoo names or CQ-file paths, and ``--weights`` reads
    per-fact annotations from ``atom = value`` lines.
``demo``
    Run the Theorem 3 pipeline on the toy alternating Turing machines.
``config``
    Print the resolved :class:`~repro.core.config.EngineConfig` — the
    environment, the global flags, and the defaults merged in
    precedence order (env < flag) — plus the resolved durable-store
    path (``cache_path``).
``cache stats|clear|verify``
    Operate on the durable store (``REPRO_CACHE_DIR`` /
    ``--cache-dir``): ``stats`` prints entry counts, bytes, lifetime
    hit rates and quarantine history; ``clear`` drops every entry;
    ``verify`` recomputes every row checksum, dropping (and reporting)
    corrupt rows — exit status 1 when any were found.

Global flags (before the command) configure the session every command
runs in: ``--backend`` picks the hom backend (``naive`` / ``bitset`` /
``matrix`` / ``auto``), ``--workers`` sizes the shard executor,
``--no-cache`` disables the hom-cache and ``--cache-dir`` points the
durable store at a directory.  The CLI is a thin veneer over the
public :class:`~repro.session.Session` API; anything serious should
import :mod:`repro` directly.
"""

from __future__ import annotations

import argparse
import sys

from . import zoo
from .core.config import BACKEND_CHOICES, EngineConfig
from .core.structure import Structure, StructureBuilder
from .session import Session


def _parse_cq_file(path: str) -> Structure:
    """Read a CQ from ``label(node)`` / ``pred(a, b)`` lines.

    Lines starting with ``#`` and blank lines are skipped.
    """
    builder = StructureBuilder()
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            name, _, rest = line.partition("(")
            args = [a.strip() for a in rest.rstrip(")").split(",")]
            if len(args) == 1:
                builder.add_node(args[0], name.strip())
            elif len(args) == 2:
                builder.add_edge(args[0], args[1], name.strip())
            else:
                raise ValueError(f"cannot parse atom: {line!r}")
    return builder.build()


def _load_structure(name_or_path: str) -> Structure:
    """A zoo query by name (``q2`` / ``d1`` ...) or a CQ file."""
    if hasattr(zoo, name_or_path):
        return getattr(zoo, name_or_path)()
    return _parse_cq_file(name_or_path)


def _parse_atom(text: str):
    """``label(node)`` -> UnaryFact, ``pred(a, b)`` -> BinaryFact."""
    from .core.structure import BinaryFact, UnaryFact

    name, _, rest = text.partition("(")
    args = [a.strip() for a in rest.rstrip(")").split(",")]
    if len(args) == 1:
        return UnaryFact(name.strip(), args[0])
    if len(args) == 2:
        return BinaryFact(name.strip(), args[0], args[1])
    raise ValueError(f"cannot parse atom: {text!r}")


def _parse_weights_file(path: str) -> dict:
    """Read fact annotations from ``atom = value`` lines (value a
    python number; ``#`` comments and blank lines skipped)."""
    weights: dict = {}
    with open(path) as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            atom, sep, value = line.rpartition("=")
            if not sep:
                raise ValueError(f"expected 'atom = value': {line!r}")
            parsed = float(value.strip())
            weights[_parse_atom(atom.strip())] = (
                int(parsed) if parsed.is_integer() else parsed
            )
    return weights


def _session_from_args(args: argparse.Namespace) -> Session:
    """The session every command runs in: environment first, explicit
    global flags on top (the documented env < config precedence)."""
    overrides: dict = {}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.no_cache:
        overrides["hom_cache"] = False
    if args.cache_dir is not None:
        overrides["cache_dir"] = args.cache_dir or None
    return Session(EngineConfig.from_env(**overrides))


def _cmd_zoo(_session: Session, _args: argparse.Namespace) -> int:
    from .core.cq import solitary_f_nodes, solitary_t_nodes, twin_nodes

    for entry in zoo.zoo_table():
        q = entry.query
        census = (
            f"F={len(solitary_f_nodes(q))} T={len(solitary_t_nodes(q))} "
            f"FT={len(twin_nodes(q))}"
        )
        print(f"{entry.name:4} {census:16} paper: {entry.expected}")
    return 0


def _cmd_decide(session: Session, args: argparse.Namespace) -> int:
    if hasattr(zoo, args.query):
        q = getattr(zoo, args.query)()
    else:
        q = _parse_cq_file(args.query)
    decision = session.decide_boundedness(q, probe_depth=args.probe_depth)
    print(decision.describe())
    return 0


def _cmd_eval(session: Session, args: argparse.Namespace) -> int:
    from .core.semiring import resolve_semiring

    q = _load_structure(args.query)
    data = _load_structure(args.data)
    weights = (
        _parse_weights_file(args.weights) if args.weights else None
    )
    if weights and resolve_semiring(args.semiring).dtype == "object":
        print(
            f"--weights files hold numbers, but semiring "
            f"{args.semiring!r} has a non-numeric carrier (its values "
            f"are witness sets); drop --weights or pick a numeric "
            f"semiring",
            file=sys.stderr,
        )
        return 2
    ev = session.evaluate(
        q, data, args.semiring, weights=weights, backend=args.eval_backend
    )
    if not ev.known:
        print(f"UNKNOWN ({ev.reason}) [semiring={ev.semiring}]")
        return 2
    print(f"{ev.value!r} [semiring={ev.semiring} backend={ev.backend}]")
    if ev.witness is not None:
        mapping = ", ".join(
            f"{k}->{v}" for k, v in sorted(ev.witness.items(), key=str)
        )
        print(f"witness: {mapping}")
    return 0


def _cmd_demo(_session: Session, _args: argparse.Namespace) -> int:
    from .atm.machine import toy_alternation_machine
    from .atm.reduction import build_query, skeleton_boundedness_semantics

    machine = toy_alternation_machine()
    for word in ("1", "0"):
        result = build_query(machine, word)
        print(result.describe())
        report = skeleton_boundedness_semantics(machine, word)
        print(report.describe())
        print()
    return 0


def _cmd_config(session: Session, _args: argparse.Namespace) -> int:
    from .core.store import resolve_store_path

    print(session.config.describe())
    path = resolve_store_path(session.config.cache_dir)
    print(f"cache_path={str(path) if path else None!r}")
    return 0


def _cmd_cache(session: Session, args: argparse.Namespace) -> int:
    store = session.store
    if store is None:
        print(
            "no durable store configured: set REPRO_CACHE_DIR or pass "
            "--cache-dir",
            file=sys.stderr,
        )
        return 2
    if args.action == "stats":
        print(store.stats().describe())
        return 0
    if args.action == "clear":
        dropped = store.clear()
        print(f"cleared {dropped} entries from {store.path}")
        return 0
    checked, dropped = store.verify()
    print(f"verified {checked} entries, dropped {dropped} corrupt")
    return 1 if dropped else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Deciding Boundedness of Monadic Sirups (PODS 2021)",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_CHOICES, default=None,
        help="hom-search backend for this run (overrides REPRO_HOM_BACKEND)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="shard-executor worker count (overrides REPRO_HOM_WORKERS; "
        "<= 1 disables parallelism)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the homomorphism cache for this run",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="durable-store directory (overrides REPRO_CACHE_DIR; "
        "empty string disables the disk tier)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("zoo", help="print the Example 1 query zoo")

    decide = commands.add_parser(
        "decide", help="decide boundedness of a zoo query or CQ file"
    )
    decide.add_argument("query", help="zoo name (q2..q8) or path to a CQ file")
    decide.add_argument(
        "--probe-depth", type=int, default=3,
        help="probe depth for non-Lambda queries (default 3)",
    )

    ev = commands.add_parser(
        "eval", help="evaluate a CQ over an instance under a semiring"
    )
    ev.add_argument("query", help="zoo name (q1..q8) or path to a CQ file")
    ev.add_argument("data", help="zoo name (d1, d2) or path to a CQ file")
    ev.add_argument(
        "--semiring", default="bool",
        help="registered semiring name: bool / count / prob / minplus / "
        "maxplus / why (default bool)",
    )
    ev.add_argument(
        "--weights", default=None, metavar="FILE",
        help="per-fact annotations, one 'atom = value' line each",
    )
    ev.add_argument(
        "--eval-backend", default=None, choices=BACKEND_CHOICES,
        help="force one hom backend for this evaluation",
    )

    commands.add_parser("demo", help="run the Theorem 3 toy pipeline")

    commands.add_parser(
        "config", help="print the resolved engine configuration"
    )

    cache = commands.add_parser(
        "cache", help="inspect or maintain the durable store"
    )
    cache.add_argument(
        "action", choices=("stats", "clear", "verify"),
        help="stats: occupancy + hit rates; clear: drop every entry; "
        "verify: full checksum sweep (exit 1 if corrupt rows found)",
    )

    args = parser.parse_args(argv)
    handlers = {
        "zoo": _cmd_zoo,
        "decide": _cmd_decide,
        "eval": _cmd_eval,
        "demo": _cmd_demo,
        "config": _cmd_config,
        "cache": _cmd_cache,
    }
    with _session_from_args(args) as session:
        return handlers[args.command](session, args)


if __name__ == "__main__":
    sys.exit(main())
