"""Boolean formulas over AND and NOT gates.

Sec. 3.5.2 of the paper implements formulas inside CQs with two gate
gadgets only: a binary AND gate and a unary NOT gate.  This module
provides that exact formula language: leaves are variables (indexed
positions of the input vector), inner nodes are ``And`` (two children)
or ``Not`` (one child).  ``Const`` and the ``disj`` builder are
conveniences that :func:`normalize` lowers into the AND/NOT core before
a formula is turned into a gadget.

Structural queries mirror what the gadget construction needs: the list
of *branches* (root-to-leaf gate sequences, keyed by which occurrence of
which variable the leaf is) and per-variable occurrence counts ``k_i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


class Formula:
    """Base class; use :class:`Var`, :class:`Not`, :class:`And`, :class:`Const`."""

    __slots__ = ()

    def evaluate(self, assignment: Sequence[int]) -> bool:
        raise NotImplementedError

    def variables(self) -> frozenset[int]:
        raise NotImplementedError

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __or__(self, other: "Formula") -> "Formula":
        return Not(And(Not(self), Not(other)))


@dataclass(frozen=True)
class Var(Formula):
    """The ``index``-th bit of the input vector."""

    index: int

    def evaluate(self, assignment: Sequence[int]) -> bool:
        return bool(assignment[self.index])

    def variables(self) -> frozenset[int]:
        return frozenset((self.index,))

    def __repr__(self) -> str:
        return f"y{self.index}"


@dataclass(frozen=True)
class Const(Formula):
    """A Boolean constant (lowered away by :func:`normalize`)."""

    value: bool

    def evaluate(self, assignment: Sequence[int]) -> bool:
        return self.value

    def variables(self) -> frozenset[int]:
        return frozenset()

    def __repr__(self) -> str:
        return "1" if self.value else "0"


@dataclass(frozen=True)
class Not(Formula):
    child: Formula

    def evaluate(self, assignment: Sequence[int]) -> bool:
        return not self.child.evaluate(assignment)

    def variables(self) -> frozenset[int]:
        return self.child.variables()

    def __repr__(self) -> str:
        return f"~{self.child!r}"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def evaluate(self, assignment: Sequence[int]) -> bool:
        return self.left.evaluate(assignment) and self.right.evaluate(assignment)

    def variables(self) -> frozenset[int]:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


TRUE = Const(True)
FALSE = Const(False)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def lit(index: int, positive: bool = True) -> Formula:
    """The literal ``y_index`` or its negation."""
    var = Var(index)
    return var if positive else Not(var)


def conj(parts: Sequence[Formula]) -> Formula:
    """Balanced conjunction (``TRUE`` when empty)."""
    parts = list(parts)
    if not parts:
        return TRUE
    while len(parts) > 1:
        merged = []
        for i in range(0, len(parts) - 1, 2):
            merged.append(And(parts[i], parts[i + 1]))
        if len(parts) % 2:
            merged.append(parts[-1])
        parts = merged
    return parts[0]


def disj(parts: Sequence[Formula]) -> Formula:
    """Balanced disjunction via De Morgan (``FALSE`` when empty)."""
    parts = list(parts)
    if not parts:
        return FALSE
    return Not(conj([Not(part) for part in parts]))


def match_pattern(
    pattern: Sequence[int | None], offset: int = 0
) -> Formula:
    """Bits at ``offset..`` equal ``pattern`` (None entries are wildcards)."""
    literals = [
        lit(offset + i, positive=bool(bit))
        for i, bit in enumerate(pattern)
        if bit is not None
    ]
    return conj(literals)


def equals_bits(indices: Sequence[int], value: int) -> Formula:
    """The bits at ``indices`` (MSB first) encode the integer ``value``."""
    width = len(indices)
    if value < 0 or value >= (1 << width):
        raise ValueError(f"{value} does not fit in {width} bits")
    return conj(
        [
            lit(index, positive=bool((value >> (width - 1 - i)) & 1))
            for i, index in enumerate(indices)
        ]
    )


def bits_equal(left: Sequence[int], right: Sequence[int]) -> Formula:
    """The two equally long bit vectors at those indices are equal."""
    if len(left) != len(right):
        raise ValueError("bit vectors must have equal width")
    pairs = []
    for a, b in zip(left, right):
        same = disj([And(Var(a), Var(b)), And(Not(Var(a)), Not(Var(b)))])
        pairs.append(same)
    return conj(pairs)


def at_least(indices: Sequence[int], bound: int) -> Formula:
    """The bits at ``indices`` (MSB first) encode a number >= ``bound``."""
    width = len(indices)
    if bound <= 0:
        return TRUE
    if bound >= (1 << width):
        return FALSE
    bound_bits = [(bound >> (width - 1 - i)) & 1 for i in range(width)]
    cases = []
    prefix: list[Formula] = []
    for i, bit in enumerate(bound_bits):
        if bit == 0:
            # strictly greater by setting this bit while matching the prefix
            cases.append(conj(prefix + [Var(indices[i])]))
            prefix = prefix + [Not(Var(indices[i]))]
        else:
            prefix = prefix + [Var(indices[i])]
    cases.append(conj(prefix))  # exactly equal
    return disj(cases)


def less_than(indices: Sequence[int], bound: int) -> Formula:
    """The bits at ``indices`` (MSB first) encode a number < ``bound``."""
    return Not(at_least(indices, bound))


# ---------------------------------------------------------------------------
# Normalisation and structural queries
# ---------------------------------------------------------------------------


def normalize(formula: Formula) -> Formula:
    """Lower constants away, leaving pure Var/Not/And (paper's gate set).

    A formula equivalent to a constant is rendered as a constant-valued
    combination of its first variable, or raises if variable-free.
    """

    def lower(f: Formula) -> Formula | bool:
        if isinstance(f, Const):
            return f.value
        if isinstance(f, Var):
            return f
        if isinstance(f, Not):
            sub = lower(f.child)
            if isinstance(sub, bool):
                return not sub
            return Not(sub)
        if isinstance(f, And):
            left = lower(f.left)
            right = lower(f.right)
            if isinstance(left, bool):
                if not left:
                    return False
                return right
            if isinstance(right, bool):
                if not right:
                    return False
                return left
            return And(left, right)
        raise TypeError(f"unknown formula node {f!r}")

    lowered = lower(formula)
    if not isinstance(lowered, bool):
        return lowered
    variables = sorted(formula.variables())
    if not variables:
        raise ValueError("cannot normalise a variable-free constant formula")
    probe = Var(variables[0])
    tautology = Not(And(probe, Not(probe)))
    return tautology if lowered else Not(tautology)


def all_gates(formula: Formula) -> list[Formula]:
    """All subformula nodes, leaves included, in preorder."""
    result: list[Formula] = []

    def walk(f: Formula) -> None:
        result.append(f)
        if isinstance(f, Not):
            walk(f.child)
        elif isinstance(f, And):
            walk(f.left)
            walk(f.right)

    walk(formula)
    return result


def formula_size(formula: Formula) -> int:
    """Number of gates (inner nodes and leaves)."""
    return len(all_gates(formula))


def formula_depth(formula: Formula) -> int:
    if isinstance(formula, (Var, Const)):
        return 0
    if isinstance(formula, Not):
        return 1 + formula_depth(formula.child)
    if isinstance(formula, And):
        return 1 + max(formula_depth(formula.left), formula_depth(formula.right))
    raise TypeError(f"unknown formula node {formula!r}")


@dataclass(frozen=True)
class Branch:
    """One root-to-leaf branch: the leaf's variable, which occurrence of
    that variable this leaf is (``j`` in the paper's ``y_i^j``), and the
    inner gates from the leaf up to the root."""

    variable: int
    occurrence: int
    gates_leaf_to_root: tuple[Formula, ...]


def branches(formula: Formula) -> list[Branch]:
    """All branches of a normalised formula, in left-to-right leaf order."""
    seen: dict[int, int] = {}
    result: list[Branch] = []

    def walk(f: Formula, above: tuple[Formula, ...]) -> None:
        if isinstance(f, Var):
            occurrence = seen.get(f.index, 0) + 1
            seen[f.index] = occurrence
            result.append(Branch(f.index, occurrence, above))
            return
        if isinstance(f, Const):
            raise ValueError("normalise the formula before taking branches")
        if isinstance(f, Not):
            walk(f.child, (f,) + above)
            return
        if isinstance(f, And):
            walk(f.left, (f,) + above)
            walk(f.right, (f,) + above)
            return
        raise TypeError(f"unknown formula node {f!r}")

    walk(formula, ())
    return result


def occurrence_counts(formula: Formula) -> dict[int, int]:
    """How many leaves each variable labels (the paper's ``k_i``)."""
    counts: dict[int, int] = {}
    for branch in branches(formula):
        counts[branch.variable] = max(
            counts.get(branch.variable, 0), branch.occurrence
        )
    return counts


def truth_table(formula: Formula, arity: int) -> list[bool]:
    """All ``2^arity`` values (tests only; keep ``arity`` small)."""
    if arity > 20:
        raise ValueError("truth table too large")
    rows = []
    for value in range(1 << arity):
        assignment = [(value >> (arity - 1 - i)) & 1 for i in range(arity)]
        rows.append(formula.evaluate(assignment))
    return rows
