"""Boolean formulas and the paper's property-checking formula library.

* :mod:`repro.circuits.formula` -- a minimal AND/NOT formula AST (the
  gate inventory of the Theorem 3 gadgets), with evaluation, structural
  queries (branches, occurrence counts) and convenience builders;
* :mod:`repro.circuits.gather` -- input specifications (*up* and *down*
  groups) and the gathering of candidate inputs around a node of a
  01-tree, the semantics behind Claim 4.2;
* :mod:`repro.circuits.library` -- the concrete formulas of Sec. 3.4:
  ``Good``, ``MustBranch_k``, the ``NoBranch`` family, ``Head``,
  ``State``, ``Cell``, ``SameCell``, ``Step``, ``Init`` and ``Reject``.
"""

from .formula import (
    And,
    Const,
    Formula,
    Not,
    Var,
    all_gates,
    branches,
    conj,
    disj,
    equals_bits,
    formula_depth,
    formula_size,
    lit,
    match_pattern,
    normalize,
    occurrence_counts,
)
from .gather import (
    CheckFormula,
    InputGroup,
    InputSpec,
    fires_at,
    gather_inputs,
    satisfying_inputs,
)
from .library import (
    FormulaLibrary,
    build_library,
    cell_formula,
    good_formula,
    head_formula,
    init_formula,
    must_branch_formula,
    no_branch_pair_formula,
    no_branch_zero_formula,
    no_branch_one_formula,
    reject_formula,
    state_formula,
    step_formula,
)

__all__ = [
    "And",
    "CheckFormula",
    "Const",
    "Formula",
    "FormulaLibrary",
    "InputGroup",
    "InputSpec",
    "Not",
    "Var",
    "all_gates",
    "branches",
    "build_library",
    "cell_formula",
    "conj",
    "disj",
    "equals_bits",
    "fires_at",
    "formula_depth",
    "formula_size",
    "gather_inputs",
    "good_formula",
    "head_formula",
    "init_formula",
    "lit",
    "match_pattern",
    "must_branch_formula",
    "no_branch_pair_formula",
    "no_branch_zero_formula",
    "no_branch_one_formula",
    "normalize",
    "occurrence_counts",
    "reject_formula",
    "satisfying_inputs",
    "state_formula",
    "step_formula",
]
