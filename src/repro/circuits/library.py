"""The property-checking formulas of Sec. 3.4, fully instantiated.

Every formula is a *failure detector*: evaluated on inputs gathered
around a node of a 01-tree (per its :class:`~repro.circuits.gather.InputSpec`),
it is true iff the gathered input witnesses a violation of the property
the formula guards -- goodness, proper branching, proper computation,
proper initialisation -- or, for ``Reject``, iff the node represents a
``q_reject`` configuration.

Layout conventions (shared with :mod:`repro.atm.encoding`):

* a path from a main node to bit ``address`` of its configuration is
  ``(111 a_1) .. (111 a_d) (111 v)`` with ``a_1 .. a_d`` the address in
  binary MSB-first and ``v`` the stored bit (length ``4(d+1)``);
* the same path through a *child* main node is prefixed by
  ``(0, 0, 1, child)`` (length ``4(d+1) + 4``);
* uppath inputs are node-to-root, i.e. the reverse of the path suffix.

Reproduction note: the head position is stored in binary inside the
state block (see :mod:`repro.atm.params`), so the two-step transition
check of ``Step`` is expressed with small increment/decrement equality
formulas over head and cell-index bits -- everything stays polynomial
in the machine description, which is what the 2ExpTime-hardness proof
needs from the construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..bitops import int_to_bits

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.atm
    from ..atm.machine import ATM
    from ..atm.params import EncodingParams
from .formula import (
    And,
    Formula,
    Not,
    Var,
    bits_equal,
    at_least,
    conj,
    disj,
    equals_bits,
    lit,
    normalize,
)
from .gather import DOWN, UP, CheckFormula, InputGroup, InputSpec, SharedParam

GAMMA = (1, 1, 1)
CHAIN = (0, 0, 1)


# ---------------------------------------------------------------------------
# Input-group plumbing
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _GroupRef:
    """Offset bookkeeping for one input group inside the input vector."""

    offset: int
    length: int
    prefix: int  # 0 for own-config paths, 4 for child-config paths
    d: int

    def pos(self, local: int) -> int:
        if not 0 <= local < self.length:
            raise IndexError(local)
        return self.offset + local

    def addr_position(self, block: int) -> int:
        """Input position of address bit ``block`` (0-based, MSB first)."""
        return self.offset + self.prefix + 4 * block + 3

    @property
    def value_position(self) -> int:
        return self.offset + self.prefix + 4 * self.d + 3

    def addr_positions(self) -> list[int]:
        return [self.addr_position(b) for b in range(self.d)]


class _SpecBuilder:
    """Accumulates input groups and shared parameters in order."""

    def __init__(self, d: int) -> None:
        self._d = d
        self._groups: list[InputGroup] = []
        self._shared: list[SharedParam] = []
        self._offset = 0

    def add(self, kind: str, length: int, mask=None, prefix: int = 0) -> _GroupRef:
        self._groups.append(InputGroup(kind, length, mask))
        ref = _GroupRef(self._offset, length, prefix, self._d)
        self._offset += length
        return ref

    def share(self, name: str, width: int) -> None:
        self._shared.append(SharedParam(name, width))

    def spec(self) -> InputSpec:
        return InputSpec(tuple(self._groups), tuple(self._shared))


def _own_path_mask(
    params: EncodingParams, addr_bits: Sequence[object]
) -> tuple[object, ...]:
    """Mask for a main-node-to-bit path with the given d address entries."""
    mask: list[object] = []
    for block in range(params.d):
        mask.extend(GAMMA)
        mask.append(addr_bits[block])
    mask.extend(GAMMA)
    mask.append(None)  # the stored bit stays free
    return tuple(mask)


def _child_path_mask(
    params: EncodingParams, child: int, addr_bits: Sequence[object]
) -> tuple[object, ...]:
    return (0, 0, 1, child) + _own_path_mask(params, addr_bits)


def _const_addr(params: EncodingParams, address: int) -> list[object]:
    return list(int_to_bits(address, params.d))


def _cell_addr(
    params: EncodingParams, offset: int, param: str
) -> list[object]:
    """Address bits of cell-block position ``offset`` with the cell index
    taken from shared parameter ``param``."""
    bits: list[object] = list(params.cell_address_bits(offset, None))
    for b, position in enumerate(params.cell_index_bit_positions()):
        bits[position] = (param, b)
    return bits


def _mask_literals(ref: _GroupRef, mask: Sequence[object]) -> list[Formula]:
    """The fixed mask bits as formula literals (structural conjuncts)."""
    return [
        lit(ref.pos(i), positive=bool(entry))
        for i, entry in enumerate(mask)
        if isinstance(entry, int)
    ]


def _own_group(
    builder: _SpecBuilder,
    params: EncodingParams,
    addr_bits: Sequence[object],
    literals: list[Formula],
) -> _GroupRef:
    mask = _own_path_mask(params, addr_bits)
    ref = builder.add(DOWN, 4 * (params.d + 1), mask)
    literals.extend(_mask_literals(ref, mask))
    return ref


def _child_group(
    builder: _SpecBuilder,
    params: EncodingParams,
    child: int,
    addr_bits: Sequence[object],
    literals: list[Formula],
) -> _GroupRef:
    mask = _child_path_mask(params, child, addr_bits)
    ref = builder.add(DOWN, 4 * (params.d + 1) + 4, mask, prefix=4)
    literals.extend(_mask_literals(ref, mask))
    return ref


def _cell_index_positions(params: EncodingParams, ref: _GroupRef) -> list[int]:
    return [
        ref.addr_position(block)
        for block in params.cell_index_bit_positions()
    ]


def _xor(a: Formula, b: Formula) -> Formula:
    return disj([And(a, Not(b)), And(Not(a), b)])


def _values_equal_const(refs: Sequence[_GroupRef], bits: Sequence[int]) -> Formula:
    """The stored bits of ``refs`` equal the constant bit string."""
    return conj(
        [
            lit(ref.value_position, positive=bool(bit))
            for ref, bit in zip(refs, bits)
        ]
    )


def _values_pairwise_equal(
    left: Sequence[_GroupRef], right: Sequence[_GroupRef]
) -> Formula:
    return bits_equal(
        [ref.value_position for ref in left],
        [ref.value_position for ref in right],
    )


# ---------------------------------------------------------------------------
# Increment / decrement equalities over bit vectors (head arithmetic)
# ---------------------------------------------------------------------------


def _equals_positions(xs: Sequence[int], ys: Sequence[int]) -> Formula:
    return bits_equal(list(xs), list(ys))


def _successor_equals(xs: Sequence[int], ys: Sequence[int]) -> Formula:
    """``y == x + 1`` for MSB-first bit positions, no overflow allowed.

    ``x`` ends in exactly ``k`` ones for some ``k``: then ``y`` flips bit
    ``k`` to one, clears the low ``k`` bits, and matches above.
    """
    width = len(xs)
    cases = []
    for k in range(width):
        parts: list[Formula] = []
        parts.append(Not(Var(xs[width - 1 - k])))
        parts.append(Var(ys[width - 1 - k]))
        for j in range(k):
            parts.append(Var(xs[width - 1 - j]))
            parts.append(Not(Var(ys[width - 1 - j])))
        high_x = [xs[i] for i in range(width - 1 - k)]
        high_y = [ys[i] for i in range(width - 1 - k)]
        if high_x:
            parts.append(_equals_positions(high_x, high_y))
        cases.append(conj(parts))
    return disj(cases)


def _shift_equals(xs: Sequence[int], ys: Sequence[int], shift: int) -> Formula:
    """``y == x + shift`` for shift in -2..2 (callers guard overflow)."""
    if shift == 0:
        return _equals_positions(xs, ys)
    if shift == 1:
        return _successor_equals(xs, ys)
    if shift == -1:
        return _successor_equals(ys, xs)
    if abs(shift) == 2:
        if len(xs) < 2:
            # Width-1 vectors cannot move by 2 without overflow; return
            # a contradiction over the input (not a bare constant, so it
            # stays normalisable in isolation).
            probe = Var(xs[0])
            return And(probe, Not(probe))
        low_equal = _equals_positions(xs[-1:], ys[-1:])
        high = _shift_equals(xs[:-1], ys[:-1], shift // 2)
        return And(low_equal, high)
    raise ValueError(f"unsupported shift {shift}")


# ---------------------------------------------------------------------------
# Goodness and branching patterns (Secs. 3.4.1, 3.4.2)
# ---------------------------------------------------------------------------


def good_formula(params: EncodingParams) -> CheckFormula:
    """Fires iff the last ``4d + 11`` edges contain no ``001*`` pattern."""
    k = 4 * params.d + 11
    builder = _SpecBuilder(params.d)
    builder.add(UP, k)
    clauses = []
    for t in range(k - 3):
        # Suffix position t (downward) is uppath variable k - 1 - t.
        here = And(
            And(Not(Var(k - 1 - t)), Not(Var(k - 2 - t))),
            Var(k - 3 - t),
        )
        clauses.append(Not(here))
    return CheckFormula("Good", normalize(conj(clauses)), builder.spec())


def _suffix_patterns(
    params: EncodingParams, k: int, requirement: str
) -> list[list[int | None]]:
    """Downward suffix patterns ``001* (111*)^l w`` of length ``k`` whose
    node must satisfy the given branching requirement."""
    if k < 4:
        return []
    w_len = (k - 4) % 4
    blocks = (k - 4) // 4
    d = params.d
    if blocks > d + 1:
        return []
    tails: list[tuple[int, ...]] = []
    if requirement == "must_branch":
        if w_len == 0 and blocks == 0:
            tails.append(())
        if w_len == 3:
            if blocks <= d + 1:
                tails.append((0, 0, 1))
            if blocks < d:
                tails.append((1, 1, 1))
    elif requirement == "no_zero_child":
        if w_len == 0 and 0 < blocks <= d:
            tails.append(())
        if w_len == 1:
            tails.append((1,))
        if w_len == 2:
            tails.extend([(1, 1), (0, 0)])
    elif requirement == "no_one_child":
        if w_len == 0 and blocks == d + 1:
            tails.append(())
        if w_len == 1:
            tails.append((0,))
    elif requirement == "exactly_one_child":
        if w_len == 3 and blocks == d:
            tails.append((1, 1, 1))
    else:
        raise ValueError(f"unknown requirement {requirement!r}")
    patterns = []
    for tail in tails:
        pattern: list[int | None] = [0, 0, 1, None]
        pattern.extend([1, 1, 1, None] * blocks)
        pattern.extend(tail)
        patterns.append(pattern)
    return patterns


def _suffix_match(k: int, pattern: Sequence[int | None]) -> Formula:
    """The uppath variables 0..k-1 spell the downward ``pattern``."""
    return conj(
        [
            lit(k - 1 - t, positive=bool(bit))
            for t, bit in enumerate(pattern)
            if bit is not None
        ]
    )


def must_branch_formula(params: EncodingParams, k: int) -> CheckFormula | None:
    """(pb1) violations: the node sits where branching is mandatory.

    The formula only reads the uppath; the reduction realises it in
    frames of type AT and TA, which can only trigger at segments missing
    one bud -- exactly the non-branching skeleton nodes.
    """
    patterns = _suffix_patterns(params, k, "must_branch")
    if not patterns:
        return None
    builder = _SpecBuilder(params.d)
    builder.add(UP, k)
    formula = disj([_suffix_match(k, p) for p in patterns])
    return CheckFormula(f"MustBranch[{k}]", normalize(formula), builder.spec())


def no_branch_zero_formula(
    params: EncodingParams, k: int
) -> CheckFormula | None:
    """(pb2) violations: a 0-child where only a 1-child may follow."""
    patterns = _suffix_patterns(params, k, "no_zero_child")
    if not patterns:
        return None
    builder = _SpecBuilder(params.d)
    builder.add(UP, k)
    builder.add(DOWN, 1)
    formula = And(
        disj([_suffix_match(k, p) for p in patterns]), Not(Var(k))
    )
    return CheckFormula(f"NoBranch0[{k}]", normalize(formula), builder.spec())


def no_branch_one_formula(
    params: EncodingParams, k: int
) -> CheckFormula | None:
    """(pb3) violations: a 1-child where only a 0-child may follow."""
    patterns = _suffix_patterns(params, k, "no_one_child")
    if not patterns:
        return None
    builder = _SpecBuilder(params.d)
    builder.add(UP, k)
    builder.add(DOWN, 1)
    formula = And(disj([_suffix_match(k, p) for p in patterns]), Var(k))
    return CheckFormula(f"NoBranch1[{k}]", normalize(formula), builder.spec())


def no_branch_pair_formula(params: EncodingParams) -> CheckFormula:
    """(pb4) violations: two children at the content-bit level."""
    k = 4 + 4 * params.d + 3
    patterns = _suffix_patterns(params, k, "exactly_one_child")
    builder = _SpecBuilder(params.d)
    builder.add(UP, k)
    builder.add(DOWN, 1)
    builder.add(DOWN, 1)
    formula = And(
        disj([_suffix_match(k, p) for p in patterns]),
        _xor(Var(k), Var(k + 1)),
    )
    return CheckFormula(f"NoBranchPair[{k}]", normalize(formula), builder.spec())


# ---------------------------------------------------------------------------
# Structural building blocks (Sec. 3.4.3): Head, State, Cell, SameCell
# ---------------------------------------------------------------------------


def head_formula(params: EncodingParams) -> CheckFormula:
    """A single path from a main node to the first bit of some cell."""
    builder = _SpecBuilder(params.d)
    builder.share("cell", params.p)
    literals: list[Formula] = []
    _own_group(builder, params, _cell_addr(params, 0, "cell"), literals)
    return CheckFormula("Head", normalize(conj(literals)), builder.spec())


def state_formula(params: EncodingParams) -> CheckFormula:
    """Paths to every state-code and head bit of the node's configuration."""
    builder = _SpecBuilder(params.d)
    literals: list[Formula] = []
    for address in range(params.n_q + params.p):
        _own_group(builder, params, _const_addr(params, address), literals)
    return CheckFormula("State", normalize(conj(literals)), builder.spec())


def cell_formula(params: EncodingParams) -> CheckFormula:
    """Paths to all bits of one (common) cell of the node's configuration."""
    builder = _SpecBuilder(params.d)
    builder.share("cell", params.p)
    literals: list[Formula] = []
    refs = [
        _own_group(builder, params, _cell_addr(params, off, "cell"), literals)
        for off in range(params.n_gamma)
    ]
    for other in refs[1:]:
        literals.append(
            _equals_positions(
                _cell_index_positions(params, refs[0]),
                _cell_index_positions(params, other),
            )
        )
    return CheckFormula("Cell", normalize(conj(literals)), builder.spec())


def same_cell_formula(params: EncodingParams) -> CheckFormula:
    """First-bit paths of the same cell in a node and its two children."""
    builder = _SpecBuilder(params.d)
    builder.share("cell", params.p)
    literals: list[Formula] = []
    own = _own_group(builder, params, _cell_addr(params, 0, "cell"), literals)
    kid0 = _child_group(
        builder, params, 0, _cell_addr(params, 0, "cell"), literals
    )
    kid1 = _child_group(
        builder, params, 1, _cell_addr(params, 0, "cell"), literals
    )
    for other in (kid0, kid1):
        literals.append(
            _equals_positions(
                _cell_index_positions(params, own),
                _cell_index_positions(params, other),
            )
        )
    return CheckFormula("SameCell", normalize(conj(literals)), builder.spec())


# ---------------------------------------------------------------------------
# Reject (Sec. 3.4.5)
# ---------------------------------------------------------------------------


def reject_formula(params: EncodingParams, machine: ATM) -> CheckFormula:
    """Fires iff the node's state bits encode ``q_reject``."""
    builder = _SpecBuilder(params.d)
    literals: list[Formula] = []
    refs = [
        _own_group(builder, params, _const_addr(params, address), literals)
        for address in range(params.n_q)
    ]
    code = int_to_bits(params.state_code(machine.q_reject), params.n_q)
    formula = And(conj(literals), _values_equal_const(refs, code))
    return CheckFormula("Reject", normalize(formula), builder.spec())


def accept_formula(params: EncodingParams, machine: ATM) -> CheckFormula:
    """Companion detector for ``q_accept`` (diagnostics and tests)."""
    builder = _SpecBuilder(params.d)
    literals: list[Formula] = []
    refs = [
        _own_group(builder, params, _const_addr(params, address), literals)
        for address in range(params.n_q)
    ]
    code = int_to_bits(params.state_code(machine.q_accept), params.n_q)
    formula = And(conj(literals), _values_equal_const(refs, code))
    return CheckFormula("Accept", normalize(formula), builder.spec())


# ---------------------------------------------------------------------------
# Init (Sec. 3.4.4)
# ---------------------------------------------------------------------------


def init_formula(
    params: EncodingParams, machine: ATM, word: Sequence[str]
) -> CheckFormula:
    """Fires iff a restart main node does not carry ``c_init(w)``.

    Restart nodes are recognised by the uppath pattern ``111* 001*``;
    the violation is a wrong state/head, a wrong input cell, a non-blank
    cell beyond the input, or a parent bit differing from the incoming
    branch bit.
    """
    builder = _SpecBuilder(params.d)
    builder.share("cell", params.p)
    literals: list[Formula] = []

    up = builder.add(
        UP, 8, mask=(None, 1, 0, 0, None, 1, 1, 1)
    )
    literals.extend(
        lit(up.pos(i), positive=bool(bit))
        for i, bit in ((1, 1), (2, 0), (3, 0), (5, 1), (6, 1), (7, 1))
    )
    incoming = Var(up.pos(0))

    state_refs = [
        _own_group(builder, params, _const_addr(params, address), literals)
        for address in range(params.n_q + params.p)
    ]
    expected_state = int_to_bits(
        params.state_code(machine.q_init), params.n_q
    ) + int_to_bits(0, params.p)

    word_refs: list[tuple[_GroupRef, int]] = []
    for j, symbol in enumerate(word):
        block = params.cell_block(symbol)
        for off in range(params.n_gamma):
            ref = _own_group(
                builder,
                params,
                _const_addr(params, params.cell_offset(j) + off),
                literals,
            )
            word_refs.append((ref, block[off]))

    tail_refs = [
        _own_group(builder, params, _cell_addr(params, off, "cell"), literals)
        for off in range(params.n_gamma)
    ]
    for other in tail_refs[1:]:
        literals.append(
            _equals_positions(
                _cell_index_positions(params, tail_refs[0]),
                _cell_index_positions(params, other),
            )
        )

    parent_ref = _own_group(
        builder,
        params,
        _const_addr(params, params.parent_bit_position),
        literals,
    )

    blank_block = params.cell_block(machine.blank)
    violations = [
        Not(_values_equal_const(state_refs, expected_state)),
        Not(
            conj(
                [
                    lit(ref.value_position, positive=bool(bit))
                    for ref, bit in word_refs
                ]
            )
        ),
        And(
            at_least(_cell_index_positions(params, tail_refs[0]), len(word)),
            Not(_values_equal_const(tail_refs, blank_block)),
        ),
        _xor(Var(parent_ref.value_position), incoming),
    ]
    formula = And(conj(literals), disj(violations))
    return CheckFormula("Init", normalize(formula), builder.spec())


# ---------------------------------------------------------------------------
# Step (Sec. 3.4.3)
# ---------------------------------------------------------------------------


def _implies(premise: Formula, conclusion: Formula) -> Formula:
    return Not(And(premise, Not(conclusion)))


@dataclass(frozen=True)
class _StepVars:
    """Positions of all semantic payloads inside the Step input vector."""

    q: list[int]
    h: list[int]
    a_sym: list[int]
    v_index: list[int]
    q0: list[int]
    h0: list[int]
    q1: list[int]
    h1: list[int]
    i_index: list[int]
    sigma: list[int]
    sigma0: list[int]
    sigma1: list[int]
    pad: list[tuple[int, int]]  # (position, expected bit) of child block pads
    b0: int
    b1: int


def _sym_positions(params: EncodingParams, refs: Sequence[_GroupRef]) -> list[int]:
    """Value positions of the symbol-code bits within a cell-block group set."""
    start = params.n_gamma - params.sym_bits
    return [refs[off].value_position for off in range(start, params.n_gamma)]


def _pad_expectations(
    params: EncodingParams, refs: Sequence[_GroupRef]
) -> list[tuple[int, int]]:
    return [
        (refs[off].value_position, 0)
        for off in range(params.n_gamma - params.sym_bits)
    ]


def _step_structure(
    params: EncodingParams, builder: _SpecBuilder
) -> tuple[list[Formula], _StepVars]:
    literals: list[Formula] = []
    builder.share("vcell", params.p)
    builder.share("cell", params.p)

    s_refs = [
        _own_group(builder, params, _const_addr(params, address), literals)
        for address in range(params.n_q + params.p)
    ]
    v_refs = [
        _own_group(builder, params, _cell_addr(params, off, "vcell"), literals)
        for off in range(params.n_gamma)
    ]
    s0_refs = [
        _child_group(builder, params, 0, _const_addr(params, a), literals)
        for a in range(params.n_q + params.p)
    ]
    s1_refs = [
        _child_group(builder, params, 1, _const_addr(params, a), literals)
        for a in range(params.n_q + params.p)
    ]
    t_refs = [
        _own_group(builder, params, _cell_addr(params, off, "cell"), literals)
        for off in range(params.n_gamma)
    ]
    t0_refs = [
        _child_group(builder, params, 0, _cell_addr(params, off, "cell"), literals)
        for off in range(params.n_gamma)
    ]
    t1_refs = [
        _child_group(builder, params, 1, _cell_addr(params, off, "cell"), literals)
        for off in range(params.n_gamma)
    ]
    z0_ref = _child_group(
        builder, params, 0,
        _const_addr(params, params.parent_bit_position), literals,
    )
    z1_ref = _child_group(
        builder, params, 1,
        _const_addr(params, params.parent_bit_position), literals,
    )

    # Cross-group address agreement: the v group points at the head cell,
    # the t/t0/t1 groups at one common cell, and blocks cohere internally.
    h_positions = [
        s_refs[params.n_q + bit].value_position for bit in range(params.p)
    ]
    v_index = _cell_index_positions(params, v_refs[0])
    i_index = _cell_index_positions(params, t_refs[0])
    literals.append(_equals_positions(v_index, h_positions))
    for group in (v_refs, t_refs, t0_refs, t1_refs):
        anchor = _cell_index_positions(params, group[0])
        for other in group[1:]:
            literals.append(
                _equals_positions(
                    anchor, _cell_index_positions(params, other)
                )
            )
    for other in (t0_refs, t1_refs):
        literals.append(
            _equals_positions(i_index, _cell_index_positions(params, other[0]))
        )

    variables = _StepVars(
        q=[s_refs[b].value_position for b in range(params.n_q)],
        h=h_positions,
        a_sym=_sym_positions(params, v_refs),
        v_index=v_index,
        q0=[s0_refs[b].value_position for b in range(params.n_q)],
        h0=[
            s0_refs[params.n_q + b].value_position for b in range(params.p)
        ],
        q1=[s1_refs[b].value_position for b in range(params.n_q)],
        h1=[
            s1_refs[params.n_q + b].value_position for b in range(params.p)
        ],
        i_index=i_index,
        sigma=_sym_positions(params, t_refs),
        sigma0=_sym_positions(params, t0_refs),
        sigma1=_sym_positions(params, t1_refs),
        pad=_pad_expectations(params, t0_refs)
        + _pad_expectations(params, t1_refs),
        b0=z0_ref.value_position,
        b1=z1_ref.value_position,
    )
    return literals, variables


def _sym_equals(positions: Sequence[int], code: int, width: int) -> Formula:
    return equals_bits(list(positions), code)


def _halting_consistency(
    params: EncodingParams, machine: ATM, v: _StepVars
) -> list[Formula]:
    """Halting configurations repeat with parent bits 0 and 1."""
    cases = []
    for state in (machine.q_accept, machine.q_reject):
        code = params.state_code(state)
        cases.append(
            conj(
                [
                    equals_bits(v.q, code),
                    equals_bits(v.q0, code),
                    equals_bits(v.q1, code),
                    _equals_positions(v.h0, v.h),
                    _equals_positions(v.h1, v.h),
                    _equals_positions(v.sigma0, v.sigma),
                    _equals_positions(v.sigma1, v.sigma),
                    Not(Var(v.b0)),
                    Var(v.b1),
                ]
            )
        )
    return cases


def _second_step_checks(
    params: EncodingParams,
    machine: ATM,
    v: _StepVars,
    qz: str,
    scanned: str,
    hz_shift: int,
) -> Formula:
    """State/head checks for both grandchildren given the AND-state and
    the symbol it scans; ``hz_shift`` is ``head(c^z) - head(c)``.

    The callers guarantee, via preconditions on ``h``, that the composed
    shifts never overflow.
    """
    branches = machine.branches(qz, scanned)
    assert branches is not None
    checks = []
    for child_index, (q_target, h_target) in enumerate(
        ((v.q0, v.h0), (v.q1, v.h1))
    ):
        action = branches[child_index]
        checks.append(
            equals_bits(q_target, params.state_code(action.new_state))
        )
        checks.append(
            _shift_equals(v.h, h_target, hz_shift + action.move)
        )
    return conj(checks)


def _second_step_boundary_checks(
    params: EncodingParams,
    machine: ATM,
    v: _StepVars,
    qz: str,
    scanned: str,
    hz_shift: int,
) -> Formula:
    """Like :func:`_second_step_checks` but with the second move clamped
    at the tape boundary reached after the first move."""
    branches = machine.branches(qz, scanned)
    assert branches is not None
    checks = []
    for child_index, (q_target, h_target) in enumerate(
        ((v.q0, v.h0), (v.q1, v.h1))
    ):
        action = branches[child_index]
        checks.append(
            equals_bits(q_target, params.state_code(action.new_state))
        )
        checks.append(_shift_equals(v.h, h_target, hz_shift))
    return conj(checks)


def _cell_checks_for_writes(
    params: EncodingParams,
    v: _StepVars,
    write_at_h: tuple[str, str] | None,
    machine: ATM,
) -> Formula:
    """Cell checks when both net writes land on ``h``: if ``i == h`` the
    children carry the given symbols, otherwise the cell is unchanged."""
    i_is_h = _equals_positions(v.i_index, v.h)
    if write_at_h is None:
        written = _equals_positions(v.sigma0, v.sigma) & _equals_positions(
            v.sigma1, v.sigma
        )
    else:
        written = And(
            equals_bits(v.sigma0, params.symbol_code(write_at_h[0])),
            equals_bits(v.sigma1, params.symbol_code(write_at_h[1])),
        )
    unchanged = And(
        _equals_positions(v.sigma0, v.sigma),
        _equals_positions(v.sigma1, v.sigma),
    )
    return And(_implies(i_is_h, written), _implies(Not(i_is_h), unchanged))


def _moving_case(
    params: EncodingParams,
    machine: ATM,
    v: _StepVars,
    qz: str,
    first_write: str,
    move: int,
) -> Formula:
    """Consistency when the first action moves the head off its cell.

    Caller supplies the precondition that the move does not clamp, so
    ``h_z = h + move`` exactly.  Three cell cases: the old head cell got
    the first write; the new head cell determines the scanned symbol and
    receives the second write; every other cell is unchanged.
    """
    i_is_h = _equals_positions(v.i_index, v.h)
    i_is_hz = _shift_equals(v.h, v.i_index, move)

    old_head = And(
        equals_bits(v.sigma0, params.symbol_code(first_write)),
        equals_bits(v.sigma1, params.symbol_code(first_write)),
    )

    new_head_cases = []
    for scanned in machine.alphabet:
        branches = machine.branches(qz, scanned)
        assert branches is not None
        new_head_cases.append(
            conj(
                [
                    equals_bits(v.sigma, params.symbol_code(scanned)),
                    equals_bits(
                        v.sigma0, params.symbol_code(branches[0].write)
                    ),
                    equals_bits(
                        v.sigma1, params.symbol_code(branches[1].write)
                    ),
                    _second_step_checks_at_hz(
                        params, machine, v, qz, scanned, move
                    ),
                ]
            )
        )
    new_head = disj(new_head_cases)

    unchanged = And(
        _equals_positions(v.sigma0, v.sigma),
        _equals_positions(v.sigma1, v.sigma),
    )
    return conj(
        [
            _implies(i_is_h, old_head),
            _implies(i_is_hz, new_head),
            _implies(And(Not(i_is_h), Not(i_is_hz)), unchanged),
        ]
    )


def _second_step_checks_at_hz(
    params: EncodingParams,
    machine: ATM,
    v: _StepVars,
    qz: str,
    scanned: str,
    move: int,
) -> Formula:
    """Grandchild state/head checks, with the second move clamped when
    ``h_z = h + move`` sits at a tape boundary.

    The boundary condition is itself a formula over ``h``: ``h_z == max``
    iff ``h == max - move`` etc., so the case split stays polynomial.
    """
    branches = machine.branches(qz, scanned)
    assert branches is not None
    top = params.cells - 1
    checks = []
    for child_index, (q_target, h_target) in enumerate(
        ((v.q0, v.h0), (v.q1, v.h1))
    ):
        action = branches[child_index]
        checks.append(
            equals_bits(q_target, params.state_code(action.new_state))
        )
        if action.move == 0:
            checks.append(_shift_equals(v.h, h_target, move))
            continue
        boundary_value = top - move if action.move > 0 else -move
        clamps = 0 <= boundary_value <= top
        at_boundary = (
            equals_bits(v.h, boundary_value) if clamps else None
        )
        moved = _shift_equals(v.h, h_target, move + action.move)
        stayed = _shift_equals(v.h, h_target, move)
        if at_boundary is None:
            checks.append(moved)
        else:
            checks.append(
                And(
                    _implies(at_boundary, stayed),
                    _implies(Not(at_boundary), moved),
                )
            )
    return conj(checks)


def _nonhalting_consistency(
    params: EncodingParams, machine: ATM, v: _StepVars
) -> list[Formula]:
    """One disjunct per (state, scanned symbol, choice z): the children
    realise both second-step branches after the chosen first step."""
    top = params.cells - 1
    cases = []
    for state in machine.states:
        if machine.is_halting(state):
            continue
        for scanned in machine.alphabet:
            branches = machine.branches(state, scanned)
            assert branches is not None
            base = And(
                equals_bits(v.q, params.state_code(state)),
                equals_bits(v.a_sym, params.symbol_code(scanned)),
            )
            for z, action in enumerate(branches):
                z_bits = And(
                    lit(v.b0, positive=bool(z)), lit(v.b1, positive=bool(z))
                )
                qz, wsym, move = action.new_state, action.write, action.move
                if machine.is_halting(qz):
                    # The two-step window is undefined: a main node whose
                    # grandchild step would pass through a halting state
                    # can never be consistent (desired trees only halt at
                    # OR-level, where the halting disjuncts apply).
                    continue
                if move == 0:
                    second = machine.branches(qz, wsym)
                    assert second is not None
                    body = And(
                        _second_step_checks_at_hz(
                            params, machine, v, qz, wsym, 0
                        ),
                        _cell_checks_for_writes(
                            params,
                            v,
                            (second[0].write, second[1].write),
                            machine,
                        ),
                    )
                else:
                    boundary = top if move > 0 else 0
                    stay_like = And(
                        equals_bits(v.h, boundary),
                        And(
                            _second_step_checks_at_hz(
                                params, machine, v, qz, wsym, 0
                            ),
                            _cell_checks_for_writes(
                                params,
                                v,
                                tuple(
                                    a.write
                                    for a in machine.branches(qz, wsym)
                                ),
                                machine,
                            ),
                        ),
                    )
                    moving = And(
                        Not(equals_bits(v.h, boundary)),
                        _moving_case(params, machine, v, qz, wsym, move),
                    )
                    body = disj([stay_like, moving])
                cases.append(conj([base, z_bits, body]))
    return cases


def step_formula(params: EncodingParams, machine: ATM) -> CheckFormula:
    """Fires iff a gathered input witnesses a transition inconsistency.

    One formula subsumes the paper's ``Step_0 | Step_1`` split and the
    halting-repetition check: it is the negation of "some choice ``z``
    (or the halting repetition) explains the two children".
    """
    builder = _SpecBuilder(params.d)
    literals, v = _step_structure(params, builder)
    pads_ok = conj(
        [lit(pos, positive=bool(bit)) for pos, bit in v.pad]
    )
    consistent = disj(
        _halting_consistency(params, machine, v)
        + _nonhalting_consistency(params, machine, v)
    )
    formula = And(conj(literals), Not(And(pads_ok, consistent)))
    return CheckFormula("Step", normalize(formula), builder.spec())


# ---------------------------------------------------------------------------
# The full library
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FormulaLibrary:
    """Every property-checking formula the Theorem 3 query implements."""

    params: EncodingParams
    good: CheckFormula
    must_branch: tuple[CheckFormula, ...]
    no_branch_zero: tuple[CheckFormula, ...]
    no_branch_one: tuple[CheckFormula, ...]
    no_branch_pair: CheckFormula
    step: CheckFormula
    init: CheckFormula
    reject: CheckFormula

    def all_checks(self) -> list[CheckFormula]:
        return (
            [self.good]
            + list(self.must_branch)
            + list(self.no_branch_zero)
            + list(self.no_branch_one)
            + [self.no_branch_pair, self.step, self.init, self.reject]
        )

    def branching_checks(self) -> list[CheckFormula]:
        return (
            list(self.no_branch_zero)
            + list(self.no_branch_one)
            + [self.no_branch_pair]
        )

    def total_size(self) -> int:
        from .formula import formula_size

        return sum(formula_size(c.formula) for c in self.all_checks())

    def describe(self) -> str:
        lines = [f"Formula library for {self.params.describe()}"]
        lines.extend(f"  {check.describe()}" for check in self.all_checks())
        return "\n".join(lines)


def build_library(
    params: EncodingParams, machine: ATM, word: Sequence[str]
) -> FormulaLibrary:
    """All formulas of Sec. 3.4 for one machine/input pair."""
    k_max = 4 * params.d + 11
    must = []
    zero = []
    one = []
    for k in range(4, k_max + 1):
        check = must_branch_formula(params, k)
        if check is not None:
            must.append(check)
        check = no_branch_zero_formula(params, k)
        if check is not None:
            zero.append(check)
        check = no_branch_one_formula(params, k)
        if check is not None:
            one.append(check)
    return FormulaLibrary(
        params=params,
        good=good_formula(params),
        must_branch=tuple(must),
        no_branch_zero=tuple(zero),
        no_branch_one=tuple(one),
        no_branch_pair=no_branch_pair_formula(params),
        step=step_formula(params, machine),
        init=init_formula(params, machine, word),
        reject=reject_formula(params, machine),
    )
