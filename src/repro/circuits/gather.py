"""Input gathering around a node of a 01-tree (the Claim 4.2 semantics).

Each property-checking formula of Sec. 3.4 comes with *input types*
describing where its input bits live relative to a tested node: either
on the unique *uppath* (the reverse of a suffix of the path ending at
the node) or on some *downpath* (a prefix of a path starting at the
node).  A property fails at the node iff **some** gatherable input makes
the formula true.

Masks
-----
The formulas conjoin many fixed structural literals (the ``111``
padding of configuration trees, fixed address bits, ...).  Inputs that
violate those literals can never satisfy the formula, so gathering may
skip them up front.  An :class:`InputGroup` therefore carries an
optional mask fixing such positions; mask entries may also reference a
*shared parameter* (e.g. the common cell index of ``SameCell``), which
gathering enumerates once for all groups.  Masking is a pure
optimisation: the tests cross-check masked against brute-force
gathering on small trees.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Protocol, Sequence

from .formula import Formula

Path = tuple[int, ...]


class TreeLike(Protocol):
    """The slice of the 01-tree interface gathering needs."""

    def children(self, node: Path) -> tuple[int, ...]: ...

    def full_label_path(self, node: Path) -> Path: ...

#: A mask entry: a fixed bit, a free position, or ``(param, bit_index)``.
MaskEntry = "int | None | tuple[str, int]"

UP = "up"
DOWN = "down"


@dataclass(frozen=True)
class SharedParam:
    """A value enumerated once per gathering attempt, shared by groups."""

    name: str
    width: int

    def values(self) -> range:
        return range(1 << self.width)


@dataclass(frozen=True)
class InputGroup:
    """One block of input bits: an uppath or a downpath of fixed length."""

    kind: str
    length: int
    mask: tuple[object, ...] | None = None

    def __post_init__(self) -> None:
        if self.kind not in (UP, DOWN):
            raise ValueError(f"kind must be 'up' or 'down', got {self.kind!r}")
        if self.mask is not None and len(self.mask) != self.length:
            raise ValueError("mask length must equal group length")


@dataclass(frozen=True)
class InputSpec:
    """The full input layout of a formula: groups plus shared parameters."""

    groups: tuple[InputGroup, ...]
    shared: tuple[SharedParam, ...] = ()

    @property
    def arity(self) -> int:
        return sum(group.length for group in self.groups)

    def group_offsets(self) -> list[int]:
        """Start index of each group within the concatenated input."""
        offsets = []
        position = 0
        for group in self.groups:
            offsets.append(position)
            position += group.length
        return offsets


@dataclass(frozen=True)
class CheckFormula:
    """A named property-checking formula with its input specification."""

    name: str
    formula: Formula
    spec: InputSpec

    def __post_init__(self) -> None:
        used = self.formula.variables()
        if used and max(used) >= self.spec.arity:
            raise ValueError(
                f"{self.name}: formula uses variable {max(used)} but the "
                f"input spec only provides {self.spec.arity} bits"
            )

    def describe(self) -> str:
        shapes = ", ".join(
            f"{g.kind}[{g.length}]" for g in self.spec.groups
        )
        return f"{self.name}: arity {self.spec.arity} over {shapes}"


def _resolve_mask(
    mask: tuple[object, ...] | None,
    length: int,
    params: Mapping[str, int],
    widths: Mapping[str, int],
) -> list[int | None]:
    resolved: list[int | None] = [None] * length
    if mask is None:
        return resolved
    for i, entry in enumerate(mask):
        if entry is None:
            continue
        if isinstance(entry, int):
            resolved[i] = entry
        else:
            name, bit = entry  # type: ignore[misc]
            width = widths[name]
            resolved[i] = (params[name] >> (width - 1 - bit)) & 1
    return resolved


def _uppath(tree: TreeLike, node: Path, length: int) -> tuple[int, ...] | None:
    labels = tree.full_label_path(node)
    if len(labels) < length:
        return None
    return tuple(reversed(labels[-length:]))


def _downpaths(
    tree: TreeLike, node: Path, length: int, mask: Sequence[int | None]
) -> Iterator[tuple[int, ...]]:
    stack: list[tuple[Path, tuple[int, ...]]] = [(tuple(node), ())]
    while stack:
        at, bits = stack.pop()
        if len(bits) == length:
            yield bits
            continue
        want = mask[len(bits)]
        for bit in tree.children(at):
            if want is not None and bit != want:
                continue
            stack.append((at + (bit,), bits + (bit,)))


def gather_inputs(
    tree: TreeLike,
    node: Path,
    spec: InputSpec,
    max_inputs: int = 200_000,
) -> Iterator[tuple[int, ...]]:
    """All candidate input vectors gatherable around ``node``.

    Raises :class:`RuntimeError` past ``max_inputs`` candidates as a
    guard against mis-specified (unmasked) explosive gathers.
    """
    widths = {param.name: param.width for param in spec.shared}
    produced = 0
    for values in itertools.product(
        *(param.values() for param in spec.shared)
    ):
        bound = dict(zip((p.name for p in spec.shared), values))
        per_group: list[list[tuple[int, ...]]] = []
        feasible = True
        for group in spec.groups:
            mask = _resolve_mask(group.mask, group.length, bound, widths)
            if group.kind == UP:
                path = _uppath(tree, node, group.length)
                if path is None or any(
                    want is not None and bit != want
                    for bit, want in zip(path, mask)
                ):
                    feasible = False
                    break
                per_group.append([path])
            else:
                candidates = list(_downpaths(tree, node, group.length, mask))
                if not candidates:
                    feasible = False
                    break
                per_group.append(candidates)
        if not feasible:
            continue
        for combo in itertools.product(*per_group):
            produced += 1
            if produced > max_inputs:
                raise RuntimeError(
                    f"gathering produced more than {max_inputs} inputs; "
                    "the input spec is probably missing masks"
                )
            yield tuple(itertools.chain.from_iterable(combo))


def fires_at(
    check: CheckFormula,
    tree: TreeLike,
    node: Path,
    max_inputs: int = 200_000,
) -> bool:
    """True iff some gatherable input satisfies the formula at ``node``."""
    return any(
        check.formula.evaluate(candidate)
        for candidate in gather_inputs(tree, node, check.spec, max_inputs)
    )


def satisfying_inputs(
    check: CheckFormula,
    tree: TreeLike,
    node: Path,
    max_inputs: int = 200_000,
) -> list[tuple[int, ...]]:
    """All gatherable inputs satisfying the formula (tests/diagnostics)."""
    return [
        candidate
        for candidate in gather_inputs(tree, node, check.spec, max_inputs)
        if check.formula.evaluate(candidate)
    ]
