"""Ditree d-sirup classification (Section 4 of the paper)."""

from .classify import (
    Classification,
    Complexity,
    classify_disjoint,
    classify_plain,
    contact_models_admit_q,
    theorem7_applies,
    theorem11_trichotomy,
)
from .reductions import (
    Digraph,
    grid_dag,
    layered_dag,
    pick_reduction_pair,
    random_dag,
    random_graph,
    reachability_instance,
)
from .structure import (
    DitreeCQ,
    DitreeError,
    ditree_pairs_summary,
    is_minimal,
    minimise,
)

__all__ = [
    "Classification",
    "Complexity",
    "Digraph",
    "DitreeCQ",
    "DitreeError",
    "classify_disjoint",
    "classify_plain",
    "contact_models_admit_q",
    "ditree_pairs_summary",
    "grid_dag",
    "is_minimal",
    "layered_dag",
    "minimise",
    "pick_reduction_pair",
    "random_dag",
    "random_graph",
    "reachability_instance",
    "theorem7_applies",
    "theorem11_trichotomy",
]
