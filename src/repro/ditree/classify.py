"""Classifiers for ditree d-sirups (Section 4 of the paper).

This module implements the decidable classifications:

* :func:`classify_plain` — data complexity of ``(Δ_q, G)`` for ditree
  CQs, combining the upper bounds quoted from [22] (items (a)-(d) on
  the paper's page 12) with the hardness results of Theorem 7 and the
  trichotomy of Theorem 11;
* :func:`classify_disjoint` — Corollary 8's trichotomy for ``(Δ⁺_q, G)``
  (covering + disjointness): FO / L-hard / NL-hard;
* :func:`theorem7_applies` — the two NL-hardness cases of Theorem 7;
* :func:`theorem11_trichotomy` — the FO/L/NL trichotomy for ditree CQs
  with one solitary F and one solitary T, decided in polynomial time via
  the contact-model homomorphism test from the proof of Theorem 11.

Complexity labels are *data complexity* classes; "hard" means hard for
the class under FO reductions, as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.cq import solitary_f_nodes, solitary_t_nodes, twin_nodes
from ..core.homomorphism import has_homomorphism
from ..core.structure import F, Node, Structure, T, UnaryFact
from .structure import DitreeCQ, is_minimal


class Complexity(enum.Enum):
    """Data-complexity classes appearing in the paper's classification."""

    AC0 = "AC0 (FO-rewritable)"
    L = "L-complete"
    NL = "NL-complete"
    P = "P-complete"
    CONP = "coNP-complete"
    L_HARD = "L-hard (in P)"
    NL_HARD = "NL-hard (in P)"
    UNKNOWN = "unclassified"


@dataclass(frozen=True)
class Classification:
    complexity: Complexity
    reasons: tuple[str, ...]

    def describe(self) -> str:
        return f"{self.complexity.value}: " + "; ".join(self.reasons)


def theorem7_applies(cq: DitreeCQ) -> tuple[bool, str]:
    """Does Theorem 7 make ``(Δ_q, G)`` NL-hard?

    Requires a *minimal* ditree CQ with at least one solitary F and one
    solitary T, and either (i) a ≺-comparable solitary pair, or (ii) not
    quasi-symmetric and twin-free.
    """
    if not solitary_f_nodes(cq.query) or not solitary_t_nodes(cq.query):
        return False, "needs a solitary F and a solitary T"
    if cq.comparable_solitary_pairs():
        return True, "case (i): a ≺-comparable solitary pair exists"
    if not cq.twins and not cq.is_quasi_symmetric():
        return True, "case (ii): twin-free and not quasi-symmetric"
    return False, "neither case of Theorem 7 applies"


# ----------------------------------------------------------------------
# Theorem 11: one solitary F, one solitary T
# ----------------------------------------------------------------------


def _contact_chain_model(
    cq: DitreeCQ, t: Node, f: Node, contact_label: str
) -> Structure:
    """The model ``I`` over ``H_(t,f)`` from the proof of Theorem 7 (ii):
    three glued copies ``q_{a-1}, q_a, q_{a+1}`` with both contacts
    labelled ``contact_label`` (T or F).

    Copy ``a`` is glued to copy ``a-1`` at ``t_a = f_{a-1}`` and to copy
    ``a+1`` at ``f_a = t_{a+1}``; the two glue nodes ("contacts") carry
    ``contact_label`` instead of their original T/F labels, and the outer
    T/F endpoints keep their labels.
    """
    # Glue: t of copy 0 = f of copy -1;  f of copy 0 = t of copy +1.
    glue = {(-1, f): ("c", "left"), (0, t): ("c", "left"),
            (0, f): ("c", "right"), (1, t): ("c", "right")}

    def resolve(idx: int, node: Node) -> Node:
        return glue.get((idx, node), (idx, node))

    # Every t/f endpoint of every copy is a contact in D_G (an A-node of
    # the reduction): the outer ones ((-1, t) and (1, f)) are unglued
    # here but still carry the contact label rather than T/F.
    contacts = {("c", "left"), ("c", "right"), (-1, t), (1, f)}
    unary: set[UnaryFact] = set()
    binary = set()
    for idx in (-1, 0, 1):
        for fact in cq.query.unary_facts:
            node = resolve(idx, fact.node)
            if node in contacts and fact.node in (t, f):
                continue  # contacts get their label below
            unary.add(UnaryFact(fact.label, node))
        for fact in cq.query.binary_facts:
            binary.add(
                type(fact)(
                    fact.pred,
                    resolve(idx, fact.src),
                    resolve(idx, fact.dst),
                )
            )
    for node in contacts:
        unary.add(UnaryFact(contact_label, node))
    return Structure((), unary, binary)


def contact_models_admit_q(cq: DitreeCQ) -> tuple[bool, bool]:
    """For the unique solitary pair (t, f): does ``q`` map into the
    contact-chain model with both contacts F, resp. both contacts T?

    This is the polynomial test in the proof of Theorem 11.
    """
    ts = sorted(solitary_t_nodes(cq.query), key=str)
    fs = sorted(solitary_f_nodes(cq.query), key=str)
    if len(ts) != 1 or len(fs) != 1:
        raise ValueError("contact test needs exactly one solitary T and F")
    t, f = ts[0], fs[0]
    model_f = _contact_chain_model(cq, t, f, F)
    model_t = _contact_chain_model(cq, t, f, T)
    return (
        has_homomorphism(cq.query, model_f),
        has_homomorphism(cq.query, model_t),
    )


def theorem11_trichotomy(cq: DitreeCQ) -> Classification:
    """FO / L-complete / NL-complete for one solitary F + one solitary T.

    Follows the proof of Theorem 11: a ≺-comparable pair gives NL
    (items (c) + Theorem 7 (i)); a quasi-symmetric query gives L (item
    (d) + Appendix G); otherwise the contact-model test separates
    FO-rewritable from NL-hard.
    """
    ts = solitary_t_nodes(cq.query)
    fs = solitary_f_nodes(cq.query)
    if len(ts) != 1 or len(fs) != 1:
        raise ValueError(
            "Theorem 11 needs exactly one solitary F and one solitary T"
        )
    (t,), (f,) = sorted(ts, key=str), sorted(fs, key=str)
    if cq.comparable(t, f):
        return Classification(
            Complexity.NL,
            (
                "solitary pair is ≺-comparable: linear-datalog upper bound "
                "(item (c)) and NL-hardness by Theorem 7 (i)",
            ),
        )
    if cq.is_quasi_symmetric():
        return Classification(
            Complexity.L,
            (
                "quasi-symmetric: symmetric-linear-datalog upper bound "
                "(item (d)) and L-hardness by Appendix G",
            ),
        )
    admits_f, admits_t = contact_models_admit_q(cq)
    if admits_f or admits_t:
        return Classification(
            Complexity.AC0,
            (
                "a contact-chain model admits q: depth-<=2 cactuses cover "
                "all larger ones (proof of Theorem 11), so FO-rewritable",
            ),
        )
    return Classification(
        Complexity.NL,
        (
            "neither contact-chain model admits q: NL-hardness by the "
            "proof of Theorem 7 (ii), NL upper bound by item (c)",
        ),
    )


# ----------------------------------------------------------------------
# Corollary 8: Δ⁺ (covering + disjointness) trichotomy
# ----------------------------------------------------------------------


def classify_disjoint(cq: DitreeCQ) -> Classification:
    """Corollary 8: every ditree ``(Δ⁺_q, G)`` is FO-rewritable (twins
    present), L-hard (quasi-symmetric, twin-free), or NL-hard."""
    if twin_nodes(cq.query):
        return Classification(
            Complexity.AC0,
            (
                "q contains an FT-twin, so q never matches a disjoint "
                "model built over consistent data: FO-rewritable",
            ),
        )
    if not solitary_f_nodes(cq.query) or not solitary_t_nodes(cq.query):
        return Classification(
            Complexity.AC0,
            ("q lacks a solitary F or T: no case distinction arises",),
        )
    if cq.is_quasi_symmetric():
        return Classification(
            Complexity.L_HARD,
            ("twin-free and quasi-symmetric: L-hard by [22]/Appendix G",),
        )
    return Classification(
        Complexity.NL_HARD,
        ("twin-free, not quasi-symmetric: NL-hard by Theorem 7",),
    )


# ----------------------------------------------------------------------
# General ditree classification (upper bounds from [22] + hardness)
# ----------------------------------------------------------------------


def classify_plain(cq: DitreeCQ, check_minimality: bool = True) -> Classification:
    """Best-effort data-complexity classification of a ditree ``(Δ_q, G)``.

    Exact for: no solitary F (AC0), one solitary F + one solitary T
    (Theorem 11 trichotomy).  For one solitary F and several solitary Ts
    it reports the datalog upper bound plus any Theorem 7 hardness; the
    FO/L dichotomy inside that fragment is decided by
    :mod:`repro.ditree.lambda_cq` for Λ-CQs.
    """
    reasons: list[str] = []
    if check_minimality and not is_minimal(cq.query):
        reasons.append("warning: q is not minimal; classify its core")
    fs = solitary_f_nodes(cq.query)
    ts = solitary_t_nodes(cq.query)
    if not fs:
        return Classification(
            Complexity.AC0,
            tuple(reasons)
            + ("no solitary F: FO-rewritable by [22] item (a)",),
        )
    if len(fs) == 1 and len(ts) == 1:
        base = theorem11_trichotomy(cq)
        return Classification(base.complexity, tuple(reasons) + base.reasons)
    if len(fs) == 1:
        hard, why = theorem7_applies(cq)
        if hard:
            return Classification(
                Complexity.NL_HARD,
                tuple(reasons)
                + (
                    f"NL-hard by Theorem 7 ({why}); in P by the datalog "
                    "upper bound of [22] item (b)",
                ),
            )
        return Classification(
            Complexity.UNKNOWN,
            tuple(reasons)
            + (
                "one solitary F, several solitary Ts, Theorem 7 silent: "
                "use the Λ-CQ FO/L decider (Theorem 9) if q is a Λ-CQ",
            ),
        )
    hard, why = theorem7_applies(cq)
    if hard:
        return Classification(
            Complexity.NL_HARD,
            tuple(reasons) + (f"NL-hard by Theorem 7 ({why})",),
        )
    return Classification(Complexity.UNKNOWN, tuple(reasons))
