"""The exact FO/L decider for Λ-CQs (Theorem 9 / Appendices D-F).

A Λ-CQ is a ditree 1-CQ whose solitary F node is ≺-incomparable with
every solitary T node; ``k`` (the *span*) is the number of solitary T
nodes.  Theorem 9 shows the d-sirup ``(Δ_q, G)`` of a Λ-CQ is either
FO-rewritable or L-hard, and that the dichotomy is decidable in time
``p(|q|) · 2^{p'(k)}`` — fixed-parameter tractable in the span.

The implementation follows Appendix F:

1. *Types.*  The neighbourhood of a segment in a cactus skeleton is
   described by a type ``(P, i, C)``: the parent's bud set ``P``, the
   incoming bud label ``i`` and the segment's own bud set ``C``.  Root
   types have ``P = ∅`` and ``i = None``.  The type digraph ``𝔊`` has an
   edge ``(P, i, C) --j--> (C, j, C')`` for every ``j ∈ C`` and ``C'``.
2. *Black types*: some root segment maps homomorphically into the
   blow-up of the type (an unanchored root-segment embedding lives
   entirely inside one segment).
3. *Blue types*: positions winning for the "embedding" player in the
   two-player game in which the opponent extends the skeleton one
   segment per bud label and the embedding player chooses the branch.
   Blue ⊇ black; any periodic structure containing a blue internal type
   admits an unanchored root-segment homomorphism (cases (h2)/(h3) of
   Claim 9.2).
4. *Cuttable edges*: a depth-indexed fixpoint computing, for every
   𝔊-edge (= bud A-node), whether every uncoloured continuation below it
   is covered by a depth-``d`` focused cactus homomorphism.
5. *Root check*: FO-rewritability holds iff every root type and every
   uncoloured, genuinely-periodic depth-1 extension of it admits an
   anchored covering homomorphism whose budded leaves land on cuttable
   A-nodes.

The decider is exact on the Λ-CQ fragment and cross-validated in the
test suite against the depth-bounded Proposition 2 probe
(:mod:`repro.core.boundedness`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..core.cactus import cactus_factory
from ..core.cq import OneCQ
from ..core.homomorphism import find_homomorphism, has_homomorphism
from ..core.structure import Node, Structure, UnaryFact
from .structure import DitreeCQ

BudSet = frozenset[int]


@dataclass(frozen=True)
class SegType:
    """A segment type ``(P, i, C)``; root types use ``in_label=None``."""

    parent_buds: BudSet
    in_label: int | None
    buds: BudSet

    @property
    def is_root(self) -> bool:
        return self.in_label is None

    @property
    def is_leaf(self) -> bool:
        return not self.buds

    def describe(self) -> str:
        p = "{" + ",".join(map(str, sorted(self.parent_buds))) + "}"
        c = "{" + ",".join(map(str, sorted(self.buds))) + "}"
        i = "r" if self.in_label is None else str(self.in_label)
        return f"({p},{i},{c})"


def _subsets(k: int) -> list[BudSet]:
    items = list(range(k))
    out = []
    for r in range(k + 1):
        for combo in itertools.combinations(items, r):
            out.append(frozenset(combo))
    return out


def all_types(k: int) -> list[SegType]:
    """All root and internal types for span ``k``."""
    types: list[SegType] = []
    for c in _subsets(k):
        types.append(SegType(frozenset(), None, c))
    for p in _subsets(k):
        for i in sorted(p):
            for c in _subsets(k):
                types.append(SegType(p, i, c))
    return types


def successors(t: SegType, j: int, k: int) -> list[SegType]:
    """All 𝔊-successors of ``t`` along bud label ``j ∈ t.buds``."""
    if j not in t.buds:
        raise ValueError(f"label {j} is not budded in {t.describe()}")
    return [SegType(t.buds, j, c) for c in _subsets(k)]


# ----------------------------------------------------------------------
# Segment structures and blow-ups
# ----------------------------------------------------------------------


def segment_structure(
    one_cq: OneCQ, budded: BudSet, root: bool, tag: object, session=None
) -> tuple[Structure, Mapping[Node, Node]]:
    """One segment copy of ``q``: focus labelled F (root) or A
    (non-root); ``y_j`` labelled A for ``j ∈ budded`` and T otherwise.
    Returns the structure and the variable map ``q-var -> node``.

    Copies are interned per ``(budded, root, tag)`` on the query's
    pooled :class:`~repro.core.cactus.CactusFactory`: the Appendix F
    cuttability fixpoint and the root check request the same handful of
    copies over and over, and sharing one frozen :class:`Structure` per
    copy also lets the hom engine keep one compiled search plan per
    copy for the whole decision procedure.  Treat the returned
    structure and mapping as immutable.
    """
    return cactus_factory(one_cq, session).segment_copy(
        frozenset(budded), root, tag
    )


def root_segment(
    one_cq: OneCQ, budded: BudSet, session=None
) -> tuple[Structure, Node]:
    """A root segment with the given bud set; returns (structure, F-node)."""
    s, mapping = segment_structure(
        one_cq, budded, root=True, tag="rs", session=session
    )
    return s, mapping[one_cq.focus]


def glue_segments(
    parts: Mapping[object, tuple[Structure, dict[Node, Node]]],
    glue_edges: list[tuple[object, int, object]],
    one_cq: OneCQ,
) -> tuple[Structure, dict[tuple[object, Node], Node]]:
    """Union of segment copies with child focus glued onto parent bud.

    ``glue_edges`` lists (parent_tag, bud_label, child_tag).  Returns the
    glued structure and a resolver from (tag, q-var) to final node.
    """
    # Union-find over (tag, var) pairs.
    canon: dict[Node, Node] = {}

    def find(x: Node) -> Node:
        while canon.get(x, x) != x:
            x = canon.get(x, x)
        return x

    def union(x: Node, y: Node) -> None:
        rx, ry = find(x), find(y)
        if rx != ry:
            canon[ry] = rx

    for parent_tag, j, child_tag in glue_edges:
        parent_node = parts[parent_tag][1][one_cq.solitary_ts[j]]
        child_node = parts[child_tag][1][one_cq.focus]
        union(parent_node, child_node)

    rename: dict[Node, Node] = {}
    nodes: set[Node] = set()
    unary: set[UnaryFact] = set()
    binary = set()
    for tag, (structure, _) in parts.items():
        for node in structure.nodes:
            rename[node] = find(node)
            nodes.add(find(node))
        for fact in structure.unary_facts:
            unary.add(UnaryFact(fact.label, find(fact.node)))
        for fact in structure.binary_facts:
            binary.add(
                type(fact)(fact.pred, find(fact.src), find(fact.dst))
            )
    resolver = {
        (tag, var): find(mapping[var])
        for tag, (_, mapping) in parts.items()
        for var in mapping
    }
    return Structure(nodes, unary, binary), resolver


def type_blowup(one_cq: OneCQ, t: SegType, session=None) -> Structure:
    """The blow-up ¯t of a single type: one segment with t's labels."""
    s, _ = segment_structure(
        one_cq, t.buds, root=t.is_root, tag=("b", t), session=session
    )
    return s


# ----------------------------------------------------------------------
# Black and blue types
# ----------------------------------------------------------------------


def compute_black(
    one_cq: OneCQ, types: list[SegType], session=None
) -> set[SegType]:
    """Internal types whose blow-up absorbs some root segment."""
    k = one_cq.span
    black: set[SegType] = set()
    root_segments = [
        root_segment(one_cq, b, session) for b in _subsets(k)
    ]
    for t in types:
        if t.is_root:
            continue
        target = type_blowup(one_cq, t, session)
        for source, _ in root_segments:
            if has_homomorphism(source, target, session=session):
                black.add(t)
                break
    return black


def compute_blue(
    one_cq: OneCQ, types: list[SegType], black: set[SegType]
) -> set[SegType]:
    """Blue = internal types NOT winning for the extending player.

    Least fixpoint of W1 (extender wins): an internal type is in W1 iff
    it is not black and, for every bud label, some successor is in W1
    (leaves: not black suffices).  Blue is the complement within the
    internal types; blue ⊇ black.
    """
    k = one_cq.span
    internal = [t for t in types if not t.is_root]
    w1: set[SegType] = set()
    changed = True
    while changed:
        changed = False
        for t in internal:
            if t in w1 or t in black:
                continue
            if all(
                any(s in w1 for s in successors(t, j, k))
                for j in t.buds
            ):
                w1.add(t)
                changed = True
    return {t for t in internal if t not in w1}


# ----------------------------------------------------------------------
# Cuttable edges
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GEdge:
    """A 𝔊-edge: parent type, bud label, child type."""

    parent: SegType
    label: int
    child: SegType

    def describe(self) -> str:
        return (
            f"{self.parent.describe()} --{self.label}--> "
            f"{self.child.describe()}"
        )


def all_edges(types: list[SegType], k: int) -> list[GEdge]:
    out = []
    for t in types:
        for j in sorted(t.buds):
            for child in successors(t, j, k):
                out.append(GEdge(t, j, child))
    return out


@dataclass
class LambdaAnalysis:
    """All precomputed tables of the Appendix F decision procedure."""

    one_cq: OneCQ
    types: list[SegType]
    black: set[SegType]
    blue: set[SegType]
    cuttable: dict[GEdge, int] = field(default_factory=dict)
    stabilised_at: int = 0

    def coloured(self, t: SegType) -> bool:
        return t in self.blue  # blue ⊇ black

    def edge_cuttable(self, edge: GEdge) -> bool:
        return edge in self.cuttable


def _extension_choices(
    t: SegType, k: int, blue: set[SegType]
) -> Iterator[dict[int, SegType]]:
    """All uncoloured depth-1 extensions of ``t`` (one child per label)."""
    labels = sorted(t.buds)
    options = []
    for j in labels:
        usable = [s for s in successors(t, j, k) if s not in blue]
        options.append(usable)
    if any(not opts for opts in options):
        return  # some label admits only coloured children: vacuous
    for combo in itertools.product(*options):
        yield dict(zip(labels, combo))


def _cut_step_holds(
    analysis: LambdaAnalysis,
    edge: GEdge,
    prev: dict[GEdge, int],
    session=None,
) -> bool:
    """Is ``edge`` cuttable given the previous level's table?

    For every uncoloured extension of the child segment, some segment
    copy ``q°`` (focus relabelled A, bud set B) must map into the
    two-segment-plus-children neighbourhood with its focus on the glue
    A-node of ``edge``, avoiding the parent's own focus, and with every
    budded leaf landing on an A-node already known to be cuttable.
    """
    one_cq = analysis.one_cq
    k = one_cq.span
    u, j0, v = edge.parent, edge.label, edge.child
    if v in analysis.blue:
        return True  # adversary never enters a coloured child

    def universal_cuttable(t: SegType, j: int) -> bool:
        return all(
            GEdge(t, j, w) in prev for w in successors(t, j, k)
        )

    for extension in _extension_choices(v, k, analysis.blue):
        parts = {
            "u": segment_structure(
                one_cq, u.buds, root=u.is_root, tag="u", session=session
            ),
            "v": segment_structure(
                one_cq, v.buds, root=False, tag="v", session=session
            ),
        }
        glue_edges = [("u", j0, "v")]
        for j, child in extension.items():
            parts[("c", j)] = segment_structure(
                one_cq, child.buds, root=False, tag=("c", j), session=session
            )
            glue_edges.append(("v", j, ("c", j)))
        target, resolver = glue_segments(parts, glue_edges, one_cq)
        glue_node = resolver[("v", one_cq.focus)]
        parent_focus = (
            None if u.is_root else resolver[("u", one_cq.focus)]
        )

        # Approved A-nodes for budded leaves of the covering segment.
        approved: set[Node] = set()
        if GEdge(u, j0, v) in prev:
            approved.add(glue_node)
        for j in u.buds:
            if j == j0:
                continue
            if universal_cuttable(u, j):
                approved.add(resolver[("u", one_cq.solitary_ts[j])])
        for j, child in extension.items():
            if GEdge(v, j, child) in prev:
                approved.add(resolver[("v", one_cq.solitary_ts[j])])
            for j2 in child.buds:
                if universal_cuttable(child, j2):
                    approved.add(
                        resolver[(("c", j), one_cq.solitary_ts[j2])]
                    )

        if not _segment_cover_exists(
            one_cq, target, glue_node, approved, forbidden=parent_focus,
            session=session,
        ):
            return False
    return True


def _segment_cover_exists(
    one_cq: OneCQ,
    target: Structure,
    focus_image: Node,
    approved: set[Node],
    forbidden: Node | None,
    root: bool = False,
    session=None,
) -> bool:
    """Does some segment copy (bud set B) map into ``target`` with its
    focus on ``focus_image``, budded leaves on ``approved`` A-nodes and
    no node on ``forbidden``?

    The constraints are passed declaratively (``node_domains`` for the
    budded leaves, ``forbid`` for the parent focus) so the cuttability
    fixpoint's many repeated checks hit the engine's hom-cache instead
    of re-running an uncacheable ``node_filter`` search.
    """
    k = one_cq.span
    approved_frozen = frozenset(approved)
    forbid = None if forbidden is None else frozenset({forbidden})
    for budset in _subsets(k):
        source, mapping = segment_structure(
            one_cq, budset, root=root, tag="cover", session=session
        )
        node_domains = {
            mapping[one_cq.solitary_ts[j]]: approved_frozen for j in budset
        }
        hom = find_homomorphism(
            source,
            target,
            seed={mapping[one_cq.focus]: focus_image},
            node_domains=node_domains,
            forbid=forbid,
            session=session,
        )
        if hom is not None:
            return True
    return False


def compute_cuttable(
    analysis: LambdaAnalysis, max_depth: int = 12, session=None
) -> None:
    """Depth-indexed fixpoint of edge cuttability (Appendix F)."""
    one_cq = analysis.one_cq
    k = one_cq.span
    edges = all_edges(analysis.types, k)

    # Depth 1: a leaf segment (B = ∅) maps into ¯u ∪ ¯v with its focus
    # on the glue node.  This is _cut_step_holds with an empty previous
    # table (no approved A-nodes) restricted to leaf-only covers — the
    # generic step with prev = {} computes exactly that.
    table: dict[GEdge, int] = {}
    depth = 0
    while depth < max_depth:
        depth += 1
        new = {}
        for edge in edges:
            if edge in table:
                new[edge] = table[edge]
                continue
            if _cut_step_holds(analysis, edge, table, session):
                new[edge] = depth
        if len(new) == len(table):
            break
        table = new
    analysis.cuttable = table
    analysis.stabilised_at = depth


# ----------------------------------------------------------------------
# Periodic-continuation feasibility
# ----------------------------------------------------------------------


def compute_completable(
    types: list[SegType], blue: set[SegType], k: int
) -> set[SegType]:
    """Uncoloured internal types every bud label of which admits an
    uncoloured completable child (greatest fixpoint)."""
    current = {t for t in types if not t.is_root and t not in blue}
    changed = True
    while changed:
        changed = False
        for t in list(current):
            ok = all(
                any(s in current for s in successors(t, j, k))
                for j in t.buds
            )
            if not ok:
                current.discard(t)
                changed = True
    return current


def compute_infinite(
    completable: set[SegType], k: int
) -> set[SegType]:
    """Completable types that can start an infinite completable path
    (greatest fixpoint: some successor is again infinite)."""
    current = {t for t in completable if t.buds}
    changed = True
    while changed:
        changed = False
        for t in list(current):
            ok = any(
                s in current
                for j in t.buds
                for s in successors(t, j, k)
                if s in completable
            )
            if not ok:
                current.discard(t)
                changed = True
    return current


# ----------------------------------------------------------------------
# The decision procedure
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LambdaDecision:
    """Outcome of the Theorem 9 dichotomy for one Λ-CQ."""

    fo_rewritable: bool
    reason: str
    stabilised_at: int
    witness: str | None = None  # a bad root extension when L-hard

    def describe(self) -> str:
        label = "FO-rewritable" if self.fo_rewritable else "L-hard"
        return f"{label}: {self.reason}"


def analyse(one_cq: OneCQ, session=None) -> LambdaAnalysis:
    """Precompute types, black/blue sets and the cuttability table.

    ``session`` selects the engine state every hom check and interned
    segment copy goes through (the default session when omitted), so a
    decision run inside an explicit
    :class:`~repro.session.Session` fills that session's caches.
    """
    k = one_cq.span
    types = all_types(k)
    black = compute_black(one_cq, types, session)
    blue = compute_blue(one_cq, types, black)
    analysis = LambdaAnalysis(one_cq, types, black, blue)
    compute_cuttable(analysis, session=session)
    return analysis


def decide_lambda(
    cq: DitreeCQ | OneCQ | Structure,
    session=None,
) -> LambdaDecision:
    """Decide the FO/L dichotomy of Theorem 9 for a Λ-CQ.

    Raises ``ValueError`` if the query is not a Λ-CQ.
    """
    if isinstance(cq, Structure):
        cq = DitreeCQ.from_structure(cq)
    if isinstance(cq, DitreeCQ):
        if not cq.is_lambda_cq():
            raise ValueError("query is not a Λ-CQ (Theorem 9 fragment)")
        one_cq = OneCQ.from_structure(cq.query)
    else:
        one_cq = cq
    k = one_cq.span
    if k == 0:
        return LambdaDecision(
            True, "span 0: no budding, 𝔎_q = {q} is finite", 0
        )

    analysis = analyse(one_cq, session)
    completable = compute_completable(analysis.types, analysis.blue, k)
    infinite = compute_infinite(completable, k)

    for c0 in _subsets(k):
        if not c0:
            continue  # the trivial root never starts a periodic structure
        t0 = SegType(frozenset(), None, c0)
        labels = sorted(c0)
        options = []
        for j in labels:
            usable = [
                s
                for s in successors(t0, j, k)
                if s in completable
            ]
            options.append(usable)
        if any(not opts for opts in options):
            continue  # adversary cannot even complete the first level
        for combo in itertools.product(*options):
            extension = dict(zip(labels, combo))
            if not any(child in infinite for child in extension.values()):
                continue  # no periodic part can grow below this root
            if not _anchored_cover_exists(analysis, t0, extension, session):
                witness = (
                    t0.describe()
                    + " -> "
                    + ", ".join(
                        f"{j}:{c.describe()}"
                        for j, c in sorted(extension.items())
                    )
                )
                return LambdaDecision(
                    False,
                    "an uncoloured periodic root extension admits no "
                    "anchored covering homomorphism (Claim 9.3)",
                    analysis.stabilised_at,
                    witness,
                )
    return LambdaDecision(
        True,
        "every uncoloured periodic root extension is covered by an "
        "anchored depth-bounded homomorphism (Claim 9.2)",
        analysis.stabilised_at,
    )


def _anchored_cover_exists(
    analysis: LambdaAnalysis,
    t0: SegType,
    extension: dict[int, SegType],
    session=None,
) -> bool:
    """Final root check: an anchored root-segment homomorphism whose
    budded leaves land on cuttable A-nodes."""
    one_cq = analysis.one_cq
    k = one_cq.span
    parts = {
        "r": segment_structure(
            one_cq, t0.buds, root=True, tag="r", session=session
        ),
    }
    glue_edges = []
    for j, child in extension.items():
        parts[("c", j)] = segment_structure(
            one_cq, child.buds, root=False, tag=("c", j), session=session
        )
        glue_edges.append(("r", j, ("c", j)))
    target, resolver = glue_segments(parts, glue_edges, one_cq)
    root_focus = resolver[("r", one_cq.focus)]

    approved: set[Node] = set()
    for j, child in extension.items():
        if GEdge(t0, j, child) in analysis.cuttable:
            approved.add(resolver[("r", one_cq.solitary_ts[j])])
        for j2 in child.buds:
            if all(
                GEdge(child, j2, w) in analysis.cuttable
                for w in successors(child, j2, k)
            ):
                approved.add(
                    resolver[(("c", j), one_cq.solitary_ts[j2])]
                )

    return _segment_cover_exists(
        one_cq,
        target,
        root_focus,
        approved,
        forbidden=None,
        root=True,
        session=session,
    )
