"""Hardness reductions as executable workload generators.

Theorem 7 (NL-hardness) reduces dag reachability to d-sirup evaluation:
given a dag ``G`` with source ``s`` and target ``t`` and a chosen solitary
pair ``(t_node, f_node)`` of the ditree CQ ``q``, every edge ``(u, v)`` of
``G`` is replaced by a fresh copy of ``q`` whose T node is glued onto
``u`` (relabelled ``A``) and whose F node is glued onto ``v`` (relabelled
``A``); finally ``T(s)`` and ``F(t)`` are asserted.  Then ``s -> t`` in
``G`` iff the certain answer to ``(Δ_q, G)`` over the instance is 'yes'.

Appendix G uses the same construction on *undirected* graphs for the
L-hardness of quasi-symmetric queries.  Both constructions double as
workload generators for the benchmark harness (experiments E9 and E13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.structure import A, BinaryFact, F, Node, Structure, T, UnaryFact
from .structure import DitreeCQ


@dataclass(frozen=True)
class Digraph:
    """A plain digraph used as a reduction input."""

    vertices: tuple[Node, ...]
    edges: tuple[tuple[Node, Node], ...]

    def successors(self, v: Node) -> list[Node]:
        return [b for a, b in self.edges if a == v]

    def reachable(self, start: Node) -> frozenset[Node]:
        seen = {start}
        stack = [start]
        while stack:
            v = stack.pop()
            for w in self.successors(v):
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return frozenset(seen)

    def undirected_reachable(self, start: Node) -> frozenset[Node]:
        adjacency: dict[Node, set[Node]] = {v: set() for v in self.vertices}
        for a, b in self.edges:
            adjacency[a].add(b)
            adjacency[b].add(a)
        seen = {start}
        stack = [start]
        while stack:
            v = stack.pop()
            for w in adjacency[v]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        return frozenset(seen)

    def is_dag(self) -> bool:
        indeg = {v: 0 for v in self.vertices}
        for _, b in self.edges:
            indeg[b] += 1
        queue = [v for v, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            v = queue.pop()
            seen += 1
            for w in self.successors(v):
                indeg[w] -= 1
                if indeg[w] == 0:
                    queue.append(w)
        return seen == len(self.vertices)


def pick_reduction_pair(cq: DitreeCQ) -> tuple[Node, Node]:
    """The solitary pair the Theorem 7 proof glues along.

    Case (i): a ≺-comparable pair with no solitary node strictly between;
    case (ii): a minimal-distance, ≺-incomparable, non-symmetric pair.
    Raises if neither case applies (the query is outside Theorem 7).
    """
    from ..core.cq import solitary_f_nodes, solitary_t_nodes

    solitary = solitary_f_nodes(cq.query) | solitary_t_nodes(cq.query)
    for t, f in cq.comparable_solitary_pairs():
        low, high = (t, f) if cq.leq(t, f) else (f, t)
        between = [
            z
            for z in solitary
            if z not in (low, high) and cq.lt(low, z) and cq.lt(z, high)
        ]
        if not between:
            return t, f
    for t, f in cq.minimal_distance_pairs():
        if not cq.comparable(t, f) and not cq.is_symmetric_pair(t, f):
            return t, f
    raise ValueError(
        "no reduction pair: the query is quasi-symmetric or twin-guarded "
        "(outside the scope of Theorem 7)"
    )


def _glued_copy(
    q: Structure, t_node: Node, f_node: Node, edge_id: int, u: Node, v: Node
) -> Structure:
    """A fresh copy of ``q`` with ``t_node -> u`` and ``f_node -> v``,
    both relabelled ``A``; all other variables made fresh."""
    mapping: dict[Node, Node] = {}
    for node in q.nodes:
        if node == t_node:
            mapping[node] = ("g", u)
        elif node == f_node:
            mapping[node] = ("g", v)
        else:
            mapping[node] = ("e", edge_id, node)
    unary = set()
    for fact in q.unary_facts:
        if fact.node == t_node and fact.label == T:
            unary.add(UnaryFact(A, mapping[t_node]))
        elif fact.node == f_node and fact.label == F:
            unary.add(UnaryFact(A, mapping[f_node]))
        else:
            unary.add(UnaryFact(fact.label, mapping[fact.node]))
    binary = {fact.rename(mapping) for fact in q.binary_facts}
    return Structure(set(mapping.values()), unary, binary)


def reachability_instance(
    cq: DitreeCQ,
    graph: Digraph,
    source: Node,
    target: Node,
    pair: tuple[Node, Node] | None = None,
) -> Structure:
    """The data instance ``D_G`` of the Theorem 7 / Appendix G reduction."""
    t_node, f_node = pair if pair is not None else pick_reduction_pair(cq)
    parts = [
        _glued_copy(cq.query, t_node, f_node, i, u, v)
        for i, (u, v) in enumerate(graph.edges)
    ]
    nodes: set[Node] = {("g", v) for v in graph.vertices}
    unary: set[UnaryFact] = {
        UnaryFact(T, ("g", source)),
        UnaryFact(F, ("g", target)),
    }
    binary: set[BinaryFact] = set()
    for part in parts:
        nodes |= part.nodes
        unary |= part.unary_facts
        binary |= part.binary_facts
    return Structure(nodes, unary, binary)


def grid_dag(width: int, height: int) -> Digraph:
    """A small acyclic grid digraph (edges right and down)."""
    vertices = [(x, y) for x in range(width) for y in range(height)]
    edges = []
    for x in range(width):
        for y in range(height):
            if x + 1 < width:
                edges.append(((x, y), (x + 1, y)))
            if y + 1 < height:
                edges.append(((x, y), (x, y + 1)))
    return Digraph(tuple(vertices), tuple(edges))


def layered_dag(
    layers: Sequence[Sequence[Node]],
    edges: Iterable[tuple[Node, Node]],
) -> Digraph:
    vertices = tuple(v for layer in layers for v in layer)
    return Digraph(vertices, tuple(edges))


def random_dag(n: int, p: float, seed: int) -> Digraph:
    """A random dag on 0..n-1 with forward edges of density ``p``."""
    import random

    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    ]
    return Digraph(tuple(range(n)), tuple(edges))


def random_graph(n: int, p: float, seed: int) -> Digraph:
    """A random (symmetric-intent) graph; used by the Appendix G reduction,
    which treats edges as undirected."""
    import random

    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    ]
    return Digraph(tuple(range(n)), tuple(edges))
