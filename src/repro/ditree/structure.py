"""Structure theory of ditree CQs (Section 4 of the paper).

For a rooted directed tree ``q`` with root ``r``:

* ``x ⪯ y`` iff there is a directed path from x to y (the tree order);
* ``inf(x, y)`` is the ⪯-greatest common ancestor;
* ``δ(x, y)`` is the edge distance along the tree order;
* ``∂(x, y) = δ(inf, x) + δ(inf, y)`` is the (undirected) distance.

A *solitary pair* ``(t, f)`` combines a solitary T node and a solitary F
node.  A ≺-incomparable pair is *symmetric* if stripping the F/T labels
from ``f``/``t`` and cutting the subtrees strictly below them leaves a CQ
with an automorphism swapping ``t`` and ``f``.  A ditree CQ is
*quasi-symmetric* if it has no ≺-comparable solitary pair and every
minimal-distance solitary pair is symmetric.

These notions drive the classifiers of Theorems 7, 9 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cq import solitary_f_nodes, solitary_t_nodes, twin_nodes
from ..core.homomorphism import has_homomorphism, iter_homomorphisms
from ..core.structure import F, Node, Structure, T


class DitreeError(ValueError):
    """Raised when an operation requires a rooted ditree CQ."""


@dataclass(frozen=True)
class DitreeCQ:
    """A ditree CQ with precomputed order/depth tables."""

    query: Structure
    root: Node
    parent: dict[Node, Node]
    depth: dict[Node, int]

    @classmethod
    def from_structure(cls, q: Structure) -> "DitreeCQ":
        if not q.is_ditree():
            raise DitreeError("query is not a rooted directed tree")
        root = q.ditree_root()
        parent: dict[Node, Node] = {}
        depth: dict[Node, int] = {root: 0}
        stack = [root]
        while stack:
            node = stack.pop()
            for child in q.successors(node):
                parent[child] = node
                depth[child] = depth[node] + 1
                stack.append(child)
        return cls(q, root, parent, depth)

    # -- order ---------------------------------------------------------

    def ancestors(self, node: Node) -> list[Node]:
        """Strict ancestors, nearest first."""
        out = []
        while node in self.parent:
            node = self.parent[node]
            out.append(node)
        return out

    def leq(self, x: Node, y: Node) -> bool:
        """``x ⪯ y``: x lies on the path from the root to y."""
        return x == y or x in self.ancestors(y)

    def lt(self, x: Node, y: Node) -> bool:
        return x != y and self.leq(x, y)

    def comparable(self, x: Node, y: Node) -> bool:
        return self.leq(x, y) or self.leq(y, x)

    def inf(self, x: Node, y: Node) -> Node:
        """The ⪯-greatest common ancestor ``inf(x, y)``."""
        xs = [x] + self.ancestors(x)
        ys = set([y] + self.ancestors(y))
        for node in xs:
            if node in ys:
                return node
        raise DitreeError("nodes share no ancestor (not a tree?)")

    def delta(self, x: Node, y: Node) -> int:
        """Edge count from x down to y; requires ``x ⪯ y``."""
        if not self.leq(x, y):
            raise DitreeError(f"δ requires {x!r} ⪯ {y!r}")
        return self.depth[y] - self.depth[x]

    def distance(self, x: Node, y: Node) -> int:
        """``∂(x, y)``: undirected tree distance."""
        m = self.inf(x, y)
        return self.delta(m, x) + self.delta(m, y)

    def subtree_nodes(self, node: Node) -> frozenset[Node]:
        """All descendants of ``node`` including itself (``q_x``)."""
        out = {node}
        stack = [node]
        while stack:
            current = stack.pop()
            for child in self.query.successors(current):
                out.add(child)
                stack.append(child)
        return frozenset(out)

    def subtree(self, node: Node) -> Structure:
        return self.query.restrict(self.subtree_nodes(node))

    def subtree_depth(self, node: Node) -> int:
        nodes = self.subtree_nodes(node)
        return max(self.depth[n] for n in nodes) - self.depth[node]

    # -- solitary pairs --------------------------------------------------

    def solitary_pairs(self) -> list[tuple[Node, Node]]:
        """All (t, f) pairs of solitary T and solitary F nodes."""
        ts = sorted(solitary_t_nodes(self.query), key=str)
        fs = sorted(solitary_f_nodes(self.query), key=str)
        return [(t, f) for t in ts for f in fs]

    def comparable_solitary_pairs(self) -> list[tuple[Node, Node]]:
        return [
            (t, f) for t, f in self.solitary_pairs() if self.comparable(t, f)
        ]

    def minimal_distance_pairs(self) -> list[tuple[Node, Node]]:
        pairs = self.solitary_pairs()
        if not pairs:
            return []
        best = min(self.distance(t, f) for t, f in pairs)
        return [
            (t, f) for t, f in pairs if self.distance(t, f) == best
        ]

    def trunk(self, t: Node, f: Node) -> Structure:
        """The CQ used in the symmetry test: strip the F/T labels from
        ``f``/``t`` and cut the branches strictly below them."""
        below = (self.subtree_nodes(t) - {t}) | (self.subtree_nodes(f) - {f})
        trimmed = self.query.without_nodes(below)
        trimmed = trimmed.relabel_node(t, remove=[T])
        trimmed = trimmed.relabel_node(f, remove=[F])
        return trimmed

    def is_symmetric_pair(self, t: Node, f: Node) -> bool:
        """A ≺-incomparable pair is symmetric if the trunk admits an
        automorphism (root-preserving isomorphism) swapping t and f."""
        if self.comparable(t, f):
            return False
        trunk = self.trunk(t, f)
        for hom in iter_homomorphisms(trunk, trunk, seed={t: f, f: t}):
            if len(set(hom.values())) == len(trunk.nodes):
                return True
        return False

    def is_quasi_symmetric(self) -> bool:
        """No ≺-comparable solitary pairs, and every minimal-distance
        solitary pair is symmetric."""
        if self.comparable_solitary_pairs():
            return False
        return all(
            self.is_symmetric_pair(t, f)
            for t, f in self.minimal_distance_pairs()
        )

    # -- Λ-CQs ----------------------------------------------------------

    def is_lambda_cq(self) -> bool:
        """A Λ-CQ: one solitary F, every solitary T ≺-incomparable
        with it (the fragment of Theorem 9)."""
        fs = solitary_f_nodes(self.query)
        if len(fs) != 1:
            return False
        (f,) = fs
        return all(
            not self.comparable(t, f)
            for t in solitary_t_nodes(self.query)
        )

    def span(self) -> int:
        return len(solitary_t_nodes(self.query))

    @property
    def twins(self) -> frozenset[Node]:
        return twin_nodes(self.query)


def is_minimal(q: Structure) -> bool:
    """Minimality of a CQ: no homomorphism into a proper sub-CQ.

    For tree-shaped CQs this is polynomial (we exploit that dropping a
    leaf preserves tree shape); the generic fallback drops any node.
    """
    for node in q.nodes:
        if has_homomorphism(q, q.without_nodes([node])):
            return False
    return True


def minimise(q: Structure) -> Structure:
    """Iteratively remove nodes while a retraction exists (the core)."""
    current = q
    changed = True
    while changed:
        changed = False
        for node in sorted(current.nodes, key=str):
            candidate = current.without_nodes([node])
            if has_homomorphism(current, candidate):
                current = candidate
                changed = True
                break
    return current


def ditree_pairs_summary(cq: DitreeCQ) -> dict[str, object]:
    """A structural report used by the classifiers and the examples."""
    pairs = cq.solitary_pairs()
    return {
        "root": cq.root,
        "solitary_pairs": len(pairs),
        "comparable_pairs": len(cq.comparable_solitary_pairs()),
        "min_distance": (
            min(cq.distance(t, f) for t, f in pairs) if pairs else None
        ),
        "twins": len(cq.twins),
        "quasi_symmetric": cq.is_quasi_symmetric(),
        "lambda_cq": cq.is_lambda_cq(),
        "span": cq.span(),
    }
