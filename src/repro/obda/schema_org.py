"""The Schema.org / DL-Lite_bool bridge (Section 3.6, Proposition 5).

A d-sirup ``(Δ_q, G)`` uses the covering rule ``T(x) ∨ F(x) <- A(x)``.
Replacing it with the Schema.org-style range constraint

    ``T(y) ∨ F(y) <- R_cov(x, y)``            (rule (9), fresh ``R_cov``)

yields the "ontology-mediated" variant ``(Δ'_q, G)``.  Proposition 5:
the two are FO-rewritable together; moreover (as the proof shows) they
agree on corresponding data instances under the back-and-forth
translations implemented here:

* :func:`data_to_schema_org` — replace every fact ``A(b)`` by
  ``R_cov(aux_b, b)``;
* :func:`data_from_schema_org` — add ``A(b)`` for every ``R_cov(a, b)``;
* :func:`rewrite_ucq_to_schema_org` / :func:`rewrite_ucq_from_schema_org`
  — the rewriting translations used in the proof.

Certain answers for ``(Δ'_q, G)`` are computed by completing the range
of ``R_cov`` in all possible ways (:func:`certain_answer_schema_org`).
The module also pretty-prints the DL-Lite_bool form of the ontology.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..core.dsirup import complete
from ..core.homomorphism import has_homomorphism
from ..core.structure import (
    A,
    BinaryFact,
    F,
    Node,
    Structure,
    T,
    UnaryFact,
)

COVER_ROLE = "R_cov"


def data_to_schema_org(data: Structure) -> Structure:
    """Replace every ``A(b)`` by ``R_cov(aux_b, b)`` (proof of Prop. 5)."""
    unary = {f for f in data.unary_facts if f.label != A}
    binary = set(data.binary_facts)
    nodes = set(data.nodes)
    for fact in data.unary_facts:
        if fact.label == A:
            aux = ("aux", fact.node)
            nodes.add(aux)
            binary.add(BinaryFact(COVER_ROLE, aux, fact.node))
    return Structure(nodes, unary, binary)


def data_from_schema_org(data: Structure) -> Structure:
    """Add ``A(b)`` for every ``R_cov(a, b)`` fact."""
    unary = set(data.unary_facts)
    for fact in data.binary_facts:
        if fact.pred == COVER_ROLE:
            unary.add(UnaryFact(A, fact.dst))
    return Structure(data.nodes, unary, data.binary_facts)


def _cover_targets(data: Structure) -> tuple[Node, ...]:
    targets = {
        fact.dst
        for fact in data.binary_facts
        if fact.pred == COVER_ROLE
    }
    return tuple(sorted(targets, key=str))


def iter_schema_org_completions(data: Structure) -> Iterator[Structure]:
    """All completions labelling each ``R_cov``-range element T or F."""
    targets = _cover_targets(data)
    for combo in itertools.product((T, F), repeat=len(targets)):
        yield complete(data, dict(zip(targets, combo)))


def certain_answer_schema_org(q: Structure, data: Structure) -> bool:
    """Certain answer to ``(Δ'_q, G)`` over a Schema.org data instance."""
    return all(
        has_homomorphism(q, model)
        for model in iter_schema_org_completions(data)
    )


def rewrite_ucq_to_schema_org(ucq: list[Structure]) -> list[Structure]:
    """Translate a UCQ-rewriting of ``(Δ_q, G)`` to one of ``(Δ'_q, G)``:
    replace each atom ``A(y)`` by ``∃x R_cov(x, y)``."""
    out = []
    for cq in ucq:
        unary = {f for f in cq.unary_facts if f.label != A}
        binary = set(cq.binary_facts)
        nodes = set(cq.nodes)
        for fact in cq.unary_facts:
            if fact.label == A:
                aux = ("aux", fact.node)
                nodes.add(aux)
                binary.add(BinaryFact(COVER_ROLE, aux, fact.node))
        out.append(Structure(nodes, unary, binary))
    return out


def rewrite_ucq_from_schema_org(ucq: list[Structure]) -> list[Structure]:
    """The converse translation: each ``R_cov(x, y)`` becomes ``A(y)``
    (dropping the auxiliary source variable when it becomes isolated)."""
    out = []
    for cq in ucq:
        unary = set(cq.unary_facts)
        binary = set()
        for fact in cq.binary_facts:
            if fact.pred == COVER_ROLE:
                unary.add(UnaryFact(A, fact.dst))
            else:
                binary.add(fact)
        used = {f.node for f in unary}
        used |= {f.src for f in binary} | {f.dst for f in binary}
        out.append(Structure(used, unary, binary))
    return out


def dl_lite_ontology(q: Structure) -> str:
    """The DL-Lite_bool rendering of Δ'_q (Section 3.6)."""
    lines = [
        f"∃{COVER_ROLE}⁻ ⊑ T ⊔ F",
        "-- goal CQ q:",
    ]
    lines.extend("  " + line for line in q.describe().splitlines())
    return "\n".join(lines)


def schema_org_rules(q: Structure) -> str:
    """The rule rendering (rules (9) and (2)) of Δ'_q."""
    lines = [f"T(y) ∨ F(y) <- {COVER_ROLE}(x, y)"]
    atoms = q.describe().replace("\n", ", ")
    lines.append(f"G <- {atoms}")
    return "\n".join(lines)


def decide_schema_org_fo_rewritability(q: Structure, probe_depth: int = 3):
    """Theorem 6 routing: FO-rewritability of the Schema.org OMQ.

    By Proposition 5, ``(Delta'_q, G)`` is FO-rewritable iff
    ``(Delta_q, G)`` is, so the question routes to the d-sirup deciders
    of :mod:`repro.decide`.  Theorem 6 is the statement that this very
    question is 2ExpTime-hard -- so for non-Lambda queries only probe
    evidence comes back.
    """
    from ..decide import decide_boundedness

    return decide_boundedness(q, probe_depth=probe_depth)
