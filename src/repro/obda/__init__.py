"""Schema.org / DL-Lite_bool ontology-mediated queries (Section 3.6)."""

from .schema_org import (
    COVER_ROLE,
    certain_answer_schema_org,
    data_from_schema_org,
    data_to_schema_org,
    dl_lite_ontology,
    iter_schema_org_completions,
    rewrite_ucq_from_schema_org,
    rewrite_ucq_to_schema_org,
    schema_org_rules,
)

__all__ = [
    "COVER_ROLE",
    "certain_answer_schema_org",
    "data_from_schema_org",
    "data_to_schema_org",
    "dl_lite_ontology",
    "iter_schema_org_completions",
    "rewrite_ucq_from_schema_org",
    "rewrite_ucq_to_schema_org",
    "schema_org_rules",
]
