"""Semiring-generic evaluation: axioms, cross-validation, wire codecs.

Three layers of confidence:

* every registered :class:`~repro.core.semiring.Semiring` instance is
  property-checked against the commutative-semiring axioms
  (associativity, commutativity, identities, distributivity,
  annihilation) over per-carrier hypothesis strategies;
* the COUNT instance is cross-validated against the legacy exact
  counting kernel on all four backends over zoo queries and random
  families, and every weighted backend path (decomp bag-value DP,
  matrix forest matvecs) is cross-validated against the naive weighted
  enumeration oracle;
* the typed surfaces (``Session.evaluate``, ``evaluate_batch`` with a
  semiring, the semiring-tagged hom-cache, the pool wire codec) are
  exercised end to end.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EngineConfig, Session, zoo
from repro.core.errors import UnknownSemiring
from repro.core.homengine import (
    _count_homomorphisms,
    iter_homomorphisms,
    semiring_evaluate,
)
from repro.core.runtime import parallel_semiring_batch
from repro.core.semiring import (
    BOOL,
    COUNT,
    MAXPLUS,
    MINPLUS,
    PROB,
    WHY,
    Evaluation,
    Semiring,
    freeze_weights,
    hom_weight,
    register_semiring,
    registered_semirings,
    resolve_semiring,
)
from repro.core.structure import BinaryFact, Structure, UnaryFact
from repro.workloads.generators import (
    instance_family,
    random_ditree_cq,
    random_instance,
)

BACKENDS = ("naive", "bitset", "matrix", "decomp")


# ----------------------------------------------------------------------
# Carrier strategies (exact arithmetic only: small-int-valued floats
# keep float ``+``/``*`` associative, so the axioms hold on the nose)
# ----------------------------------------------------------------------

_small_float = st.integers(0, 8).map(float)

_VALUE_STRATEGIES = {
    "bool": st.booleans(),
    "count": st.integers(0, 50),
    "prob": _small_float,
    "minplus": st.one_of(st.just(math.inf), _small_float),
    "maxplus": st.one_of(st.just(-math.inf), _small_float),
    "why": st.frozensets(
        st.frozensets(st.integers(0, 3), max_size=2), max_size=3
    ),
}


def _triples():
    """(semiring, a, b, c) across every registered instance."""
    missing = [
        sr.name for sr in registered_semirings()
        if sr.name not in _VALUE_STRATEGIES
    ]
    assert not missing, (
        f"no axiom strategy for registered semirings {missing}; "
        "add one to _VALUE_STRATEGIES"
    )

    @st.composite
    def triple(draw):
        sr = draw(st.sampled_from(registered_semirings()))
        vals = _VALUE_STRATEGIES[sr.name]
        return sr, draw(vals), draw(vals), draw(vals)

    return triple()


class TestSemiringAxioms:
    @given(_triples())
    @settings(max_examples=300, deadline=None)
    def test_axioms(self, tc):
        sr, a, b, c = tc
        plus, times = sr.plus, sr.times
        # ⊕: associative, commutative, identity zero
        assert plus(plus(a, b), c) == plus(a, plus(b, c))
        assert plus(a, b) == plus(b, a)
        assert plus(a, sr.zero) == a
        # ⊗: associative, commutative, identity one
        assert times(times(a, b), c) == times(a, times(b, c))
        assert times(a, b) == times(b, a)
        assert times(a, sr.one) == a
        # distributivity and annihilation
        assert times(a, plus(b, c)) == plus(times(a, b), times(a, c))
        assert times(a, sr.zero) == sr.zero

    @given(_triples())
    @settings(max_examples=100, deadline=None)
    def test_declared_flags(self, tc):
        sr, a, b, _ = tc
        if sr.is_idempotent:
            assert sr.plus(a, a) == a
        if sr.is_selective:
            assert sr.plus(a, b) in (a, b)

    def test_registry(self):
        for name in ("bool", "count", "prob", "minplus", "maxplus", "why"):
            assert resolve_semiring(name).name == name
        assert resolve_semiring(COUNT) is COUNT
        with pytest.raises(UnknownSemiring):
            resolve_semiring("auto")  # a dsirup strategy, not a semiring
        with pytest.raises(ValueError):
            register_semiring(
                Semiring("bool", False, True, lambda a, b: a or b,
                         lambda a, b: a and b)
            )

    def test_wire_codecs_roundtrip(self):
        facts = (
            UnaryFact("A", "x"),
            BinaryFact("R", "x", "y"),
            BinaryFact("R", "y", "x"),
        )
        value = frozenset(
            {frozenset({facts[0], facts[1]}), frozenset({facts[2]})}
        )
        assert WHY.decode(WHY.encode(value)) == value
        assert PROB.decode(PROB.encode(0.25)) == 0.25

    def test_freeze_weights(self):
        w = {BinaryFact("R", "a", "b"): 0.5, UnaryFact("A", "a"): 0.25}
        assert freeze_weights(w) == freeze_weights(dict(reversed(w.items())))
        assert freeze_weights(None) is None
        assert freeze_weights({BinaryFact("R", "a", "b"): [1, 2]}) is None


# ----------------------------------------------------------------------
# COUNT vs the legacy exact kernel, all four backends
# ----------------------------------------------------------------------


class TestCountCrossValidation:
    def test_zoo_queries_all_backends(self):
        s = Session()
        instances = instance_family(3, 7, 12, seed=5)
        for q in (zoo.q1(), zoo.q2(), zoo.q5()):
            for d in instances:
                want = _count_homomorphisms(
                    q, d, backend="naive", use_cache=False, session=s
                )
                for b in BACKENDS:
                    ev = s.evaluate(q, d, "count", backend=b, use_cache=False)
                    assert ev.value == want, (b, want, ev.value)
                    assert ev.semiring == "count" and ev.backend == b
                    assert ev.answer == (want > 0)

    def test_random_families(self):
        s = Session()
        rng = random.Random(11)
        cases = 0
        while cases < 12:
            q = random_ditree_cq(rng.randrange(2, 5), rng.randrange(10**6))
            if q is None:
                continue
            d = random_instance(
                rng.randrange(4, 9), rng.randrange(4, 16),
                rng.randrange(10**6), label_weights={"A": 2, "F": 2, "T": 2},
            )
            cases += 1
            want = _count_homomorphisms(
                q, d, backend="naive", use_cache=False, session=s
            )
            for b in BACKENDS:
                got = s.evaluate(q, d, "count", backend=b, use_cache=False)
                assert got.value == want

    def test_session_count_method_is_thin_count(self):
        s = Session()
        q, d = zoo.q1(), zoo.d1()
        assert s.count_homomorphisms(q, d) == s.evaluate(q, d, "count").value


# ----------------------------------------------------------------------
# Weighted evaluation vs the naive weighted oracle
# ----------------------------------------------------------------------


def _oracle(q, d, sr, weights, session):
    acc = sr.zero
    for hom in iter_homomorphisms(q, d, backend="naive", session=session):
        acc = sr.plus(acc, hom_weight(q, hom, sr, weights))
    return acc


def _random_weights(d, seed, draw):
    wrng = random.Random(seed)
    return {
        f: draw(wrng)
        for f in list(d.unary_facts) + list(d.binary_facts)
        if wrng.random() < 0.7
    }


class TestWeightedCrossValidation:
    @pytest.mark.parametrize("name", ["prob", "minplus", "maxplus", "bool"])
    def test_weighted_all_backends(self, name):
        s = Session()
        sr = resolve_semiring(name)
        rng = random.Random(23)
        cases = 0
        while cases < 10:
            q = random_ditree_cq(rng.randrange(2, 5), rng.randrange(10**6))
            if q is None:
                continue
            d = random_instance(
                rng.randrange(4, 9), rng.randrange(5, 18),
                rng.randrange(10**6), label_weights={"A": 2, "F": 2, "T": 2},
            )
            cases += 1
            if name == "bool":
                weights = _random_weights(d, cases, lambda r: r.random() < 0.8)
            else:
                weights = _random_weights(
                    d, cases, lambda r: round(r.uniform(0.1, 0.9), 3)
                )
            want = _oracle(q, d, sr, weights, s)
            for b in ("bitset", "matrix", "decomp"):
                ev = semiring_evaluate(
                    q, d, sr, weights=weights, backend=b,
                    use_cache=False, session=s,
                )
                if isinstance(want, float) and not math.isinf(want):
                    assert ev.value == pytest.approx(want, abs=1e-9), b
                else:
                    assert ev.value == want, b

    def test_why_provenance(self):
        s = Session()
        d = Structure(("a", "b", "c"), (), (
                BinaryFact("R", "a", "b"),
                BinaryFact("R", "a", "c"),
            ),
        )
        q = Structure(("x", "y"), (), (BinaryFact("R", "x", "y"),)
        )
        for b in BACKENDS:
            ev = semiring_evaluate(
                q, d, "why", backend=b, use_cache=False, session=s
            )
            assert ev.value == frozenset(
                {
                    frozenset({BinaryFact("R", "a", "b")}),
                    frozenset({BinaryFact("R", "a", "c")}),
                }
            ), b

    def test_minplus_witness_is_cheapest(self):
        s = Session()
        d = Structure(("a", "b", "c"), (), (
                BinaryFact("R", "a", "b"),
                BinaryFact("R", "a", "c"),
            ),
        )
        q = Structure(("x", "y"), (), (BinaryFact("R", "x", "y"),)
        )
        weights = {
            BinaryFact("R", "a", "b"): 5.0,
            BinaryFact("R", "a", "c"): 2.0,
        }
        ev = semiring_evaluate(
            q, d, "minplus", weights=weights, backend="bitset",
            use_cache=False, session=s,
        )
        assert ev.value == 2.0
        assert ev.witness is not None and ev.witness["y"] == "c"

    def test_prob_expected_witness_mass(self):
        # One query edge over two independent facts with marginals
        # 0.5/0.25: the expected number of witnesses is their sum.
        s = Session()
        d = Structure(("a", "b", "c"), (), (
                BinaryFact("R", "a", "b"),
                BinaryFact("R", "a", "c"),
            ),
        )
        q = Structure(("x", "y"), (), (BinaryFact("R", "x", "y"),)
        )
        weights = {
            BinaryFact("R", "a", "b"): 0.5,
            BinaryFact("R", "a", "c"): 0.25,
        }
        for b in BACKENDS:
            ev = semiring_evaluate(
                q, d, "prob", weights=weights, backend=b,
                use_cache=False, session=s,
            )
            assert ev.value == pytest.approx(0.75), b


# ----------------------------------------------------------------------
# The typed surface, the cache, and the pool wire
# ----------------------------------------------------------------------


class TestEvaluateSurface:
    def test_bool_matches_has_homomorphism(self):
        s = Session()
        for q, d in ((zoo.q1(), zoo.d1()), (zoo.q2(), zoo.d2())):
            ev = s.evaluate(q, d)  # semiring="bool" default
            assert ev.value is s.has_homomorphism(q, d)
            assert isinstance(ev, Evaluation)
            assert ev.known and ev.answer == ev.value

    def test_unknown_semiring_raises(self):
        s = Session()
        with pytest.raises(UnknownSemiring):
            s.evaluate(zoo.q1(), zoo.d1(), "tropical-typo")

    def test_semiring_cache_tagging(self):
        s = Session()
        q, d = zoo.q1(), zoo.d1()
        w = {f: 0.5 for f in d.binary_facts}
        first = semiring_evaluate(
            q, d, "prob", weights=w, backend="decomp", session=s
        )
        before = s.hom_cache_info().hits
        again = semiring_evaluate(
            q, d, "prob", weights=w, backend="decomp", session=s
        )
        assert again.value == first.value
        assert s.hom_cache_info().hits > before
        # A different weighting must not be answered from that entry.
        w2 = {f: 0.25 for f in d.binary_facts}
        other = semiring_evaluate(
            q, d, "prob", weights=w2, backend="decomp", session=s
        )
        assert other.value != first.value or first.value == 0.0

    def test_governed_evaluate_returns_reason(self):
        s = Session(EngineConfig(hom_fuel=1))
        d = random_instance(30, 120, seed=3)
        q = Structure(
            ("x", "y", "z"),
            (),
            (BinaryFact("R", "x", "y"), BinaryFact("R", "y", "z")),
        )
        ev = s.evaluate(q, d, "count", backend="bitset")
        assert ev.value is None and not ev.known
        assert ev.reason == "fuel"
        assert not ev.answer.known

    def test_parallel_semiring_batch_matches_serial(self):
        s = Session(EngineConfig(workers=2, parallel_min=1))
        q = zoo.q1()
        instances = instance_family(6, 6, 10, seed=9)
        w = {f: 0.5 for f in instances[0].binary_facts}
        par = parallel_semiring_batch(
            q, instances, "prob", weights=w, session=s
        )
        serial = [
            semiring_evaluate(
                q, d, "prob", weights=w, use_cache=False, session=s
            )
            for d in instances
        ]
        assert [e.value for e in par] == pytest.approx(
            [e.value for e in serial]
        )
        s.close()

    def test_parallel_semiring_batch_why_canonical(self):
        s = Session(EngineConfig(workers=2, parallel_min=1))
        q = zoo.q1()
        instances = instance_family(4, 6, 10, seed=9)
        par = parallel_semiring_batch(q, instances, "why", session=s)
        serial = [
            semiring_evaluate(q, d, "why", use_cache=False, session=s)
            for d in instances
        ]
        assert [e.value for e in par] == [e.value for e in serial]
        s.close()

    def test_unregistered_semiring_takes_serial_path(self):
        bespoke = Semiring(
            "bespoke-max", zero=-1, one=0,
            plus=max, times=lambda a, b: a + b, is_idempotent=True,
        )
        s = Session(EngineConfig(workers=2, parallel_min=1))
        q = zoo.q1()
        instances = instance_family(3, 6, 10, seed=9)
        out = parallel_semiring_batch(q, instances, bespoke, session=s)
        assert len(out) == len(instances)
        assert all(isinstance(e, Evaluation) for e in out)
        s.close()

    def test_evaluate_batch_semiring_routing(self):
        s = Session()
        q = zoo.q1()
        instances = instance_family(3, 6, 10, seed=9)
        plain = s.evaluate_batch(q, instances)
        assert all(isinstance(b, bool) for b in plain)
        counted = s.evaluate_batch(q, instances, semiring="count")
        assert [e.value > 0 for e in counted] == plain
