"""Unit and property tests for the pluggable homomorphism engine.

Covers the satellite requirements of the bitset-engine PR: backend
cross-validation on random instances, node interning, structure
fingerprints, hom-cache behaviour, and the batch APIs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import homengine
from repro.core.homengine import (
    BACKENDS,
    clear_hom_cache,
    _count_homomorphisms,
    covers_any,
    evaluate_batch,
    find_homomorphism,
    get_default_backend,
    has_homomorphism,
    hom_cache_info,
    iter_homomorphisms,
    set_default_backend,
)
from repro.core.homomorphism import is_core, is_homomorphism
from repro.core.structure import (
    BinaryFact,
    Structure,
    StructureBuilder,
    UnaryFact,
    path_structure,
)
from repro.workloads.generators import random_ditree_cq, random_instance


def canon(homs):
    """Order-insensitive canonical form of a hom enumeration."""
    return sorted(
        tuple(sorted(h.items(), key=lambda kv: str(kv[0]))) for h in homs
    )


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------


class TestBackendSwitch:
    def test_default_backend_is_valid(self):
        assert get_default_backend() in BACKENDS

    def test_set_and_restore(self):
        previous = set_default_backend("naive")
        try:
            assert get_default_backend() == "naive"
        finally:
            set_default_backend(previous)
        assert get_default_backend() == previous

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            set_default_backend("simd")
        q = path_structure(["T"])
        with pytest.raises(ValueError):
            list(iter_homomorphisms(q, q, backend="simd"))

    def test_per_call_override(self):
        q = path_structure(["", ""])
        d = path_structure(["", "", "", ""])
        for backend in BACKENDS:
            assert len(list(iter_homomorphisms(q, d, backend=backend))) == 3


# ----------------------------------------------------------------------
# Cross-validation: bitset vs naive (acceptance: >= 50 random instances)
# ----------------------------------------------------------------------


class TestCrossValidation:
    def test_verdicts_and_counts_agree_on_random_instances(self):
        """Identical hom-existence verdicts AND identical hom sets on 60
        random (query, instance) pairs from the workload generators."""
        agree = 0
        nonempty = 0
        for seed in range(60):
            q = random_ditree_cq(5, seed) or random_instance(
                4, 5, seed, preds=("R", "S")
            )
            d = random_instance(8, 14, seed + 10_000, preds=("R", "S"))
            naive = canon(iter_homomorphisms(q, d, backend="naive"))
            bitset = canon(iter_homomorphisms(q, d, backend="bitset"))
            assert naive == bitset, f"backend mismatch at seed {seed}"
            agree += 1
            nonempty += bool(naive)
        assert agree == 60
        assert nonempty > 0  # the sample is not vacuous

    def test_seeded_and_restricted_agree(self):
        for seed in range(25):
            q = random_instance(4, 6, seed, preds=("R",))
            d = random_instance(7, 12, seed + 500, preds=("R",))
            some_q = next(iter(sorted(q.nodes, key=str)))
            restrict = frozenset(list(sorted(d.nodes, key=str))[:4])
            for image in sorted(d.nodes, key=str):
                naive = canon(
                    iter_homomorphisms(
                        q,
                        d,
                        seed={some_q: image},
                        restrict_image=restrict,
                        backend="naive",
                    )
                )
                bitset = canon(
                    iter_homomorphisms(
                        q,
                        d,
                        seed={some_q: image},
                        restrict_image=restrict,
                        backend="bitset",
                    )
                )
                assert naive == bitset

    def test_node_domains_and_forbid_agree(self):
        for seed in range(25):
            q = random_instance(4, 5, seed)
            d = random_instance(7, 11, seed + 900)
            nodes_q = sorted(q.nodes, key=str)
            nodes_d = sorted(d.nodes, key=str)
            constraints = {
                "node_domains": {nodes_q[0]: frozenset(nodes_d[::2])},
                "forbid": frozenset(nodes_d[:2]),
            }
            results = [
                canon(iter_homomorphisms(q, d, backend=b, **constraints))
                for b in BACKENDS
            ]
            assert results[0] == results[1]
            # node_filter emulation agrees with the declarative form
            allowed = constraints["node_domains"][nodes_q[0]]
            forbidden = constraints["forbid"]

            def node_filter(x, v):
                if v in forbidden:
                    return False
                if x == nodes_q[0] and v not in allowed:
                    return False
                return True

            filtered = canon(
                iter_homomorphisms(q, d, node_filter=node_filter)
            )
            assert filtered == results[0]

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_property_existence_agrees(self, seed):
        q = random_instance(4, 6, seed)
        d = random_instance(6, 10, seed + 1)
        naive = has_homomorphism(q, d, backend="naive", use_cache=False)
        bitset = has_homomorphism(q, d, backend="bitset", use_cache=False)
        assert naive == bitset

    def test_every_bitset_hom_verifies(self):
        for seed in range(20):
            q = random_instance(4, 6, seed)
            d = random_instance(6, 12, seed + 77)
            for hom in iter_homomorphisms(q, d, backend="bitset"):
                assert is_homomorphism(q, d, hom)


# ----------------------------------------------------------------------
# Interning and fingerprints
# ----------------------------------------------------------------------


class TestInterning:
    def test_node_order_is_a_bijection(self):
        s = random_instance(9, 15, seed=3)
        order = s.node_order
        assert len(order) == len(s.nodes)
        assert set(order) == set(s.nodes)
        for i, node in enumerate(order):
            assert s.node_index[node] == i

    def test_node_order_memoised(self):
        s = random_instance(5, 6, seed=4)
        assert s.node_order is s.node_order
        assert s.bitset_index is s.bitset_index

    def test_bitset_index_masks(self):
        b = StructureBuilder()
        b.add_node("x", "T")
        b.add_node("y", "F")
        b.add_edge("x", "y", "R")
        s = b.build()
        idx = s.bitset_index
        xi, yi = idx.index["x"], idx.index["y"]
        assert idx.succ["R"][xi] == 1 << yi
        assert idx.pred["R"][yi] == 1 << xi
        assert idx.label_nodes["T"] == 1 << xi
        assert idx.has_out["R"] == 1 << xi
        assert idx.has_in["R"] == 1 << yi
        assert idx.mask_of(["x", "y", "zzz-not-a-node"]) == idx.full_mask

    def test_pred_indexed_neighbourhoods(self):
        b = StructureBuilder()
        b.add_edge("a", "b", "R")
        b.add_edge("a", "c", "R")
        b.add_edge("a", "b", "S")
        s = b.build()
        assert s.out_by_pred("a")["R"] == frozenset({"b", "c"})
        assert s.out_by_pred("a")["S"] == frozenset({"b"})
        assert s.in_by_pred("b")["R"] == frozenset({"a"})
        assert s.out_pred_set("a") == frozenset({"R", "S"})
        assert s.in_pred_set("a") == frozenset()


class TestFingerprint:
    def test_equal_structures_equal_fingerprints(self):
        kwargs = dict(
            nodes=["a", "b"],
            unary=[UnaryFact("T", "a")],
            binary=[BinaryFact("R", "a", "b")],
        )
        s1 = Structure(**kwargs)
        s2 = Structure(
            nodes=["b", "a"],
            unary=[UnaryFact("T", "a")],
            binary=[BinaryFact("R", "a", "b")],
        )
        assert s1 == s2
        assert s1.fingerprint == s2.fingerprint

    def test_different_structures_differ(self):
        s1 = path_structure(["T", "F"])
        s2 = path_structure(["F", "T"])
        s3 = path_structure(["T", "F"], preds=["S"])
        assert len({s1.fingerprint, s2.fingerprint, s3.fingerprint}) == 3

    def test_composite_node_names(self):
        # Cactus-style (segment, var) tuples and frozenset components
        # must fingerprint stably regardless of set iteration order.
        n1 = (frozenset({"u", "v", "w"}), 0)
        n2 = (frozenset({"w", "v", "u"}), 0)
        s1 = Structure(nodes=[n1], unary=[UnaryFact("T", n1)])
        s2 = Structure(nodes=[n2], unary=[UnaryFact("T", n2)])
        assert s1.fingerprint == s2.fingerprint

    def test_fingerprint_memoised(self):
        s = random_instance(6, 9, seed=11)
        assert s.fingerprint is s.fingerprint


# ----------------------------------------------------------------------
# Hom-cache
# ----------------------------------------------------------------------


@pytest.fixture
def fresh_cache():
    info = hom_cache_info()
    clear_hom_cache()
    homengine.configure_cache(enabled=True)
    yield
    clear_hom_cache()
    homengine.configure_cache(enabled=info.enabled, maxsize=info.maxsize)


class TestHomCache:
    def test_second_lookup_hits(self, fresh_cache):
        q = path_structure(["T", ""])
        d = path_structure(["T", "", ""])
        before = hom_cache_info()
        assert find_homomorphism(q, d) is not None
        assert find_homomorphism(q, d) is not None
        after = hom_cache_info()
        assert after.hits >= before.hits + 1

    def test_hits_across_equal_instances(self, fresh_cache):
        q = path_structure(["T", ""])
        d1 = path_structure(["T", "", ""])
        d2 = path_structure(["T", "", ""])  # distinct but equal instance
        assert d1 is not d2 and d1.fingerprint == d2.fingerprint
        find_homomorphism(q, d1)
        hits_before = hom_cache_info().hits
        find_homomorphism(q, d2)
        assert hom_cache_info().hits == hits_before + 1

    def test_distinct_seeds_not_conflated(self, fresh_cache):
        q = path_structure(["", ""], prefix="q")
        d = path_structure(["", "", ""], prefix="d")
        hom0 = find_homomorphism(q, d, seed={"q0": "d0"})
        hom1 = find_homomorphism(q, d, seed={"q0": "d1"})
        assert hom0["q0"] == "d0"
        assert hom1["q0"] == "d1"
        assert find_homomorphism(q, d, seed={"q0": "d2"}) is None

    def test_node_filter_bypasses_cache(self, fresh_cache):
        q = path_structure([""], prefix="q")
        d = path_structure(["", ""], prefix="d")
        info_before = hom_cache_info()
        find_homomorphism(q, d, node_filter=lambda x, v: v == "d1")
        info_after = hom_cache_info()
        assert info_after.size == info_before.size
        # and the filtered answer was not polluted by a cached unfiltered one
        hom = find_homomorphism(q, d, node_filter=lambda x, v: v == "d1")
        assert hom == {"q0": "d1"}

    def test_negative_answers_cached(self, fresh_cache):
        q = path_structure(["T"])
        d = path_structure(["F"])
        assert not has_homomorphism(q, d)
        hits_before = hom_cache_info().hits
        assert not has_homomorphism(q, d)
        assert hom_cache_info().hits == hits_before + 1

    def test_backend_override_not_served_cross_backend(self, fresh_cache):
        # A cached bitset answer must not satisfy an explicit naive
        # cross-validation call (naive is the correctness oracle).
        q = path_structure(["T", ""])
        d = path_structure(["T", "", ""])
        assert has_homomorphism(q, d, backend="bitset")
        hits_before = hom_cache_info().hits
        assert has_homomorphism(q, d, backend="naive")
        info = hom_cache_info()
        assert info.hits == hits_before  # miss: separate key per backend
        assert info.size >= 2

    def test_cache_disabled(self, fresh_cache):
        homengine.configure_cache(enabled=False)
        q = path_structure(["T"])
        d = path_structure(["T"])
        has_homomorphism(q, d)
        has_homomorphism(q, d)
        assert hom_cache_info().size == 0

    def test_lru_eviction(self, fresh_cache):
        homengine.configure_cache(maxsize=4)
        q = path_structure(["T"])
        targets = [
            random_instance(4, 5, seed=s, label_weights={"T": 1})
            for s in range(10)
        ]
        for d in targets:
            has_homomorphism(q, d)
        assert hom_cache_info().size <= 4


class TestCountCache:
    def test_count_matches_enumeration(self):
        for seed in range(15):
            q = random_instance(3, 4, seed)
            d = random_instance(6, 10, seed + 40)
            expected = len(list(iter_homomorphisms(q, d)))
            for backend in BACKENDS:
                assert (
                    _count_homomorphisms(
                        q, d, backend=backend, use_cache=False
                    )
                    == expected
                )

    def test_second_count_hits_cache(self, fresh_cache):
        q = path_structure(["T", ""])
        d = path_structure(["T", "", ""])
        first = _count_homomorphisms(q, d)
        hits_before = hom_cache_info().hits
        assert _count_homomorphisms(q, d) == first
        assert hom_cache_info().hits == hits_before + 1

    def test_count_seeds_find_cache(self, fresh_cache):
        # Counting enumerates every hom, so the find/has entry for the
        # same arguments is filled with the first witness for free.
        q = path_structure(["T", ""])
        d = path_structure(["T", "", ""])
        assert _count_homomorphisms(q, d) > 0
        hits_before = hom_cache_info().hits
        assert find_homomorphism(q, d) is not None
        assert hom_cache_info().hits == hits_before + 1

    def test_zero_count_seeds_negative_answer(self, fresh_cache):
        q = path_structure(["T"])
        d = path_structure(["F"])
        assert _count_homomorphisms(q, d) == 0
        hits_before = hom_cache_info().hits
        assert not has_homomorphism(q, d)
        assert hom_cache_info().hits == hits_before + 1

    def test_count_and_find_not_conflated(self, fresh_cache):
        # A cached witness must not be returned as a count, nor a count
        # as a witness: the keys are tagged apart.
        q = path_structure(["", ""], prefix="q")
        d = path_structure(["", "", ""], prefix="d")
        assert find_homomorphism(q, d) is not None
        assert _count_homomorphisms(q, d) == 2  # a fresh enumeration
        assert find_homomorphism(q, d) is not None

    def test_count_with_node_filter_bypasses_cache(self, fresh_cache):
        q = path_structure([""], prefix="q")
        d = path_structure(["", ""], prefix="d")
        size_before = hom_cache_info().size
        assert (
            _count_homomorphisms(q, d, node_filter=lambda x, v: v == "d1")
            == 1
        )
        assert hom_cache_info().size == size_before

    def test_count_per_backend_keys(self, fresh_cache):
        q = path_structure(["T", ""])
        d = path_structure(["T", "", ""])
        assert _count_homomorphisms(q, d, backend="bitset") == (
            _count_homomorphisms(q, d, backend="naive")
        )
        # Two backends, two count entries (plus the seeded find entries).
        assert hom_cache_info().size >= 4


# ----------------------------------------------------------------------
# Batch APIs
# ----------------------------------------------------------------------


class TestBatchAPIs:
    def test_covers_any_matches_individual_checks(self):
        target = random_instance(8, 14, seed=21)
        sources = [random_instance(3, 4, seed=s) for s in range(8)]
        expected = any(has_homomorphism(s, target) for s in sources)
        assert covers_any(target, sources) == expected

    def test_covers_any_with_seed_pairs(self):
        q = path_structure(["", ""], prefix="q")
        d = path_structure(["", "", ""], prefix="d")
        assert covers_any(d, [(q, {"q0": "d1"})])
        assert not covers_any(d, [(q, {"q0": "d2"})])

    def test_covers_any_parallel_seeds(self):
        q = path_structure(["", ""], prefix="q")
        d = path_structure(["", "", ""], prefix="d")
        assert covers_any(d, [q, q], seeds=[{"q0": "d2"}, {"q0": "d0"}])

    def test_covers_any_lazy_early_exit(self):
        d = path_structure(["", "", ""], prefix="d")
        consumed = []

        def produce():
            for i in range(100):
                consumed.append(i)
                yield path_structure([""], prefix="q")

        assert covers_any(d, produce())
        assert len(consumed) == 1

    def test_covers_any_empty_batch(self):
        assert not covers_any(path_structure(["T"]), [])

    def test_covers_any_rejects_mismatched_seeds(self):
        # A short seeds sequence must not silently truncate the batch
        # (a truncated scan could return a wrong False).
        q = path_structure(["T"], prefix="q")
        d = path_structure(["", ""], prefix="d")  # no hom: scan exhausts
        with pytest.raises(ValueError):
            covers_any(d, [q, q, q], seeds=[None])
        with pytest.raises(ValueError):
            covers_any(d, [(q, None)], seeds=[None])

    def test_evaluate_batch(self):
        q = path_structure(["T", "F"])
        instances = [
            path_structure(["T", "F"]),
            path_structure(["F", "T"]),
            path_structure([("T", "F"), ("T", "F")]),
        ]
        assert evaluate_batch(q, instances) == [True, False, True]
        for backend in BACKENDS:
            assert evaluate_batch(q, instances, backend=backend) == [
                True,
                False,
                True,
            ]


# ----------------------------------------------------------------------
# is_core profile pruning
# ----------------------------------------------------------------------


class TestIsCoreAgainstOracle:
    def _oracle_is_core(self, s):
        return not any(
            has_homomorphism(
                s, s.without_nodes([n]), backend="naive", use_cache=False
            )
            for n in s.nodes
        )

    def test_random_structures_agree_with_oracle(self):
        for seed in range(40):
            s = random_instance(5, 7, seed=seed)
            assert is_core(s) == self._oracle_is_core(s), f"seed {seed}"

    def test_redundant_copy_not_core(self):
        p1 = path_structure(["T", "F"], prefix="a")
        p2 = path_structure(["T", "F"], prefix="b")
        assert not is_core(p1.union(p2))

    def test_distinct_labels_core(self):
        assert is_core(path_structure(["T", "", "F"]))
