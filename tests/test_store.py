"""The durable state tier: crash-safe persistence, corruption handling,
and checkpoint/resume for screens and probes.

Four layers under test:

* **The key-value store itself** — round-trips across process-like
  reopens, checksummed reads, FIFO pruning, namespace maintenance.
* **Corruption discipline** — bit-flipped rows are dropped and treated
  as misses (never believed), truncated or version-skewed files are
  quarantined and rebuilt, strict durability raises instead, and an
  unusable directory degrades the session to memory-only.
* **The two-tier cache** — a second session over the same directory
  answers from disk with zero hom-cache misses, plans included, and
  pool workers share the file safely.
* **Checkpoint/resume** — a screen or probe killed mid-run (including
  a real ``kill -9`` of the parent) resumes in a fresh process with
  answers identical to an uninterrupted serial run, skipping the
  checkpointed work.
"""

import os
import signal
import sqlite3
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro import EngineConfig, OneCQ, Session, zoo
from repro.core.boundedness import probe_boundedness
from repro.core.errors import StoreCorruption
from repro.core.runtime import parallel_screen
from repro.core.store import (
    MISS,
    DurableStore,
    SCHEMA_VERSION,
    op_digest,
    resolve_store_path,
)
from repro.core.structure import path_structure
from repro.workloads import instance_family

SRC = str(Path(__file__).resolve().parent.parent / "src")

QUERIES = [path_structure(["T", "", "F"]), path_structure(["T", "F"])]
FAMILY = instance_family(12, 14, 26, seed=31)


def oracle_screen(queries, family):
    with Session(EngineConfig(workers=1)) as s:
        return [
            [s.has_homomorphism(q, d) for d in family] for q in queries
        ]


def open_store(tmp_path, **kwargs):
    kwargs.setdefault("cache_bytes", 1 << 20)
    return DurableStore.open(tmp_path / "cache", **kwargs)


# ----------------------------------------------------------------------
# The key-value tier
# ----------------------------------------------------------------------


class TestKeyValueTier:
    def test_round_trip_across_reopen(self, tmp_path):
        store = open_store(tmp_path)
        store.put("ns", ("k", 1), {"answer": True}, flush=True)
        store.put("ns", ("k", 2), [1, 2, 3])
        store.close()  # close flushes the buffered put too
        again = open_store(tmp_path)
        assert again.get("ns", ("k", 1)) == {"answer": True}
        assert again.get("ns", ("k", 2)) == [1, 2, 3]
        assert again.get("ns", ("k", 3)) is MISS
        assert again.get("other", ("k", 1)) is MISS
        again.close()

    def test_buffered_put_visible_before_flush(self, tmp_path):
        store = open_store(tmp_path)
        store.put("ns", "pending", 42)
        assert store.get("ns", "pending") == 42
        store.close()

    def test_write_rows_is_immediately_durable(self, tmp_path):
        store = open_store(tmp_path)
        store.write_rows("ckpt:x", [(0, True), (1, False)])
        # A *different* handle over the same file sees the rows without
        # any flush/close on the writer: they were committed.
        reader = open_store(tmp_path)
        assert reader.load_ns("ckpt:x") == {0: True, 1: False}
        reader.close()
        store.close()

    def test_clear_ns_and_clear(self, tmp_path):
        store = open_store(tmp_path)
        store.write_rows("a", [(1, 1), (2, 2)])
        store.write_rows("b", [(1, 1)])
        assert store.clear_ns("a") == 2
        assert store.load_ns("a") == {}
        assert store.load_ns("b") == {1: 1}
        assert store.clear() == 1
        assert store.stats().entries == 0
        store.close()

    def test_prune_keeps_file_under_cap(self, tmp_path):
        cap = 16 * 1024
        store = open_store(tmp_path, cache_bytes=cap)
        for i in range(200):
            store.put("ns", i, os.urandom(512), flush=True)
        assert store.stats().total_bytes <= cap
        # The newest entries survive FIFO pruning.
        assert store.get("ns", 199) is not MISS
        store.close()

    def test_unpicklable_put_is_skipped(self, tmp_path):
        store = open_store(tmp_path)
        store.put("ns", "bad", lambda: None, flush=True)
        assert store.get("ns", "bad") is MISS
        assert store.enabled  # degrade only, never crash
        store.close()

    def test_op_digest_stable_and_discriminating(self):
        assert op_digest("screen", ("a", "b"), 3) == op_digest(
            "screen", ("a", "b"), 3
        )
        assert op_digest("screen", ("a", "b"), 3) != op_digest(
            "screen", ("a", "b"), 4
        )
        assert op_digest("probe", "fp") != op_digest("screen", "fp")

    def test_resolve_store_path(self, tmp_path):
        assert resolve_store_path(None) is None
        assert resolve_store_path("") is None
        p = resolve_store_path(tmp_path / "c")
        assert p is not None and p.name == "repro_store.sqlite"


# ----------------------------------------------------------------------
# Corruption discipline
# ----------------------------------------------------------------------


def corrupt_row(path, ns):
    """Bit-flip every payload in ``ns`` behind the store's back."""
    conn = sqlite3.connect(str(path))
    with conn:
        conn.execute(
            "UPDATE kv SET value = X'00DEADBEEF' WHERE ns = ?", (ns,)
        )
    conn.close()


class TestCorruption:
    def test_bit_flipped_row_is_dropped_not_believed(self, tmp_path):
        store = open_store(tmp_path)
        store.put("hom", "key", True, flush=True)
        store.close()
        corrupt_row(resolve_store_path(tmp_path / "cache"), "hom")
        again = open_store(tmp_path)
        assert again.get("hom", "key") is MISS
        assert again.stats().corrupt_dropped == 1
        # The bad row was deleted: a recompute-and-put heals it.
        again.put("hom", "key", True, flush=True)
        assert again.get("hom", "key") is True
        again.close()

    def test_strict_durability_raises_on_checksum_failure(self, tmp_path):
        store = open_store(tmp_path)
        store.put("hom", "key", True, flush=True)
        store.close()
        corrupt_row(resolve_store_path(tmp_path / "cache"), "hom")
        strict = open_store(tmp_path, durability="strict")
        with pytest.raises(StoreCorruption):
            strict.get("hom", "key")
        strict.close()

    def test_verify_sweeps_corrupt_rows(self, tmp_path):
        store = open_store(tmp_path)
        store.write_rows("good", [(i, i) for i in range(5)])
        store.write_rows("bad", [(i, i) for i in range(3)])
        store.close()
        corrupt_row(resolve_store_path(tmp_path / "cache"), "bad")
        again = open_store(tmp_path)
        checked, dropped = again.verify()
        assert (checked, dropped) == (8, 3)
        assert again.verify() == (5, 0)  # second sweep is clean
        again.close()

    def test_schema_mismatch_quarantines_and_rebuilds(self, tmp_path):
        store = open_store(tmp_path)
        store.put("ns", "k", 1, flush=True)
        store.close()
        path = resolve_store_path(tmp_path / "cache")
        conn = sqlite3.connect(str(path))
        with conn:
            conn.execute("UPDATE meta SET v = '999' WHERE k = 'schema'")
        conn.close()
        again = open_store(tmp_path)
        assert again.enabled
        assert again.get("ns", "k") is MISS  # never read from the old file
        assert Path(f"{path}.quarantined-0").exists()
        assert again.stats().quarantined == 1
        assert again.stats().schema_version == SCHEMA_VERSION
        again.close()

    def test_torn_write_truncated_file_never_lies(self, tmp_path):
        store = open_store(tmp_path)
        originals = {i: os.urandom(256) for i in range(200)}
        store.write_rows("ns", list(originals.items()))
        store.close()
        path = resolve_store_path(tmp_path / "cache")
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(int(size * 0.6))
        again = open_store(tmp_path)  # must not raise
        for i, want in originals.items():
            got = again.get("ns", i)
            # Every answer from the torn file is MISS or exact; a
            # structural error mid-read quarantines and rebuilds.
            assert got is MISS or got == want
        again.verify()
        again.put("ns", "fresh", 7, flush=True)
        if again.enabled:
            assert again.get("ns", "fresh") == 7
        again.close()

    def test_unusable_directory_degrades_to_memory_only(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        store = DurableStore.open(
            blocker / "sub", cache_bytes=1 << 20
        )
        assert store is not None and not store.enabled
        store.put("ns", "k", 1, flush=True)  # all no-ops, no crash
        assert store.get("ns", "k") is MISS
        with pytest.raises(StoreCorruption):
            DurableStore.open(
                blocker / "sub", cache_bytes=1 << 20, durability="strict"
            )
        # A session over the same bad directory runs memory-only with
        # answers identical to no cache_dir at all.
        with Session(
            EngineConfig(cache_dir=str(blocker / "sub"), workers=1)
        ) as s:
            got = [s.has_homomorphism(QUERIES[0], d) for d in FAMILY]
        assert got == oracle_screen(QUERIES[:1], FAMILY)[0]

    def test_disabled_store_handle_is_inert(self, tmp_path):
        store = open_store(tmp_path)
        store.close()
        assert store.get("ns", "k") is MISS
        store.put("ns", "k", 1)
        store.write_rows("ns", [(1, 1)])
        assert store.load_ns("ns") == {}
        assert store.verify() == (0, 0)
        assert store.clear() == 0
        store.close()  # idempotent


# ----------------------------------------------------------------------
# The two-tier session cache
# ----------------------------------------------------------------------


class TestTwoTierCache:
    def test_second_session_answers_from_disk(self, tmp_path):
        cfg = EngineConfig(cache_dir=str(tmp_path / "cache"), workers=1)
        with Session(cfg) as cold:
            want = [
                [cold.has_homomorphism(q, d) for d in FAMILY]
                for q in QUERIES
            ]
        with Session(cfg) as warm:
            got = [
                [warm.has_homomorphism(q, d) for d in FAMILY]
                for q in QUERIES
            ]
            info = warm.hom.cache_info()
        assert got == want == oracle_screen(QUERIES, FAMILY)
        # Every lookup was a memory miss promoted from the disk tier.
        assert info.misses == 0
        assert info.hits == len(QUERIES) * len(FAMILY)

    def test_clear_cache_keeps_disk_tier(self, tmp_path):
        cfg = EngineConfig(cache_dir=str(tmp_path / "cache"), workers=1)
        with Session(cfg) as s:
            want = s.has_homomorphism(QUERIES[0], FAMILY[0])
            s.hom.clear_cache()
            assert s.has_homomorphism(QUERIES[0], FAMILY[0]) == want
            assert s.hom.cache_info().misses == 0

    def test_pool_workers_share_the_store(self, tmp_path):
        want = oracle_screen(QUERIES, FAMILY)
        cfg = EngineConfig(
            cache_dir=str(tmp_path / "cache"),
            workers=2,
            parallel_min=4,
        )
        with Session(cfg) as s:
            got = parallel_screen(QUERIES, FAMILY, session=s)
            checked, dropped = s.store.verify()
        assert got == want
        assert checked > 0 and dropped == 0


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------


class TestCheckpointResume:
    def test_screen_resumes_from_checkpoint(self, tmp_path):
        cfg = EngineConfig(cache_dir=str(tmp_path / "cache"), workers=1)
        with Session(cfg) as cold:
            want = cold.screen(QUERIES, FAMILY)
        with Session(cfg) as warm:
            got = warm.screen(QUERIES, FAMILY)
            info = warm.hom.cache_info()
        assert got == want == oracle_screen(QUERIES, FAMILY)
        # The checkpoint replay never consulted the hom engine at all.
        assert info.hits == 0 and info.misses == 0

    def test_streaming_screen_replays_checkpoint(self, tmp_path):
        cfg = EngineConfig(cache_dir=str(tmp_path / "cache"), workers=1)
        with Session(cfg) as cold:
            want = cold.screen(QUERIES, FAMILY)
        with Session(cfg) as warm:
            shards = sorted(
                warm.screen(QUERIES, FAMILY, stream=True),
                key=lambda sh: sh.start,
            )
        got = [[] for _ in QUERIES]
        for shard in shards:
            for qi, row in enumerate(shard.answers):
                got[qi].extend(row)
        assert got == want

    def test_governed_partial_then_ungoverned_resume(self, tmp_path):
        cache = str(tmp_path / "cache")
        with Session(
            EngineConfig(cache_dir=cache, workers=1, hom_fuel=150)
        ) as starved:
            partial = starved.screen(QUERIES, FAMILY)
        settled = sum(
            isinstance(e, bool) for row in partial for e in row
        )
        with Session(EngineConfig(cache_dir=cache, workers=1)) as resumed:
            got = resumed.screen(QUERIES, FAMILY)
        want = oracle_screen(QUERIES, FAMILY)
        assert got == want
        # Whatever the starved run settled must already agree.
        for prow, wrow in zip(partial, want):
            for p, w in zip(prow, wrow):
                if isinstance(p, bool):
                    assert p == w
        assert settled >= 0  # any prefix may have settled before the trip

    def test_probe_resumes_with_identical_result(self, tmp_path):
        cfg = EngineConfig(cache_dir=str(tmp_path / "cache"), workers=1)
        cq = OneCQ.from_structure(zoo.q5())
        with Session(cfg) as cold_s:
            cold = probe_boundedness(cq, 3, session=cold_s)
        with Session(cfg) as warm_s:
            warm = probe_boundedness(cq, 3, session=warm_s)
            info = warm_s.hom.cache_info()
        assert (warm.verdict, warm.depth, warm.uncovered) == (
            cold.verdict, cold.depth, cold.uncovered
        )
        assert warm.cactuses_examined == cold.cactuses_examined
        assert info.hits == 0 and info.misses == 0  # pure replay

    def test_checkpoints_can_be_disabled(self, tmp_path):
        cfg = EngineConfig(
            cache_dir=str(tmp_path / "cache"),
            workers=1,
            durable_checkpoints=False,
        )
        with Session(cfg) as s:
            got = s.screen(QUERIES, FAMILY)
            stats = s.store.stats()
        assert got == oracle_screen(QUERIES, FAMILY)
        assert not any(
            ns.startswith("ckpt:") for ns, _ in stats.namespaces
        )

    def test_kill_9_mid_screen_then_resume(self, tmp_path):
        """The acceptance scenario: SIGKILL the parent mid-screen, then
        rerun against the same cache_dir — identical answers, with the
        checkpointed shards skipped."""
        cache = str(tmp_path / "cache")
        script = tmp_path / "killed_screen.py"
        script.write_text(textwrap.dedent(f"""
            import os, signal, sys
            sys.path.insert(0, {SRC!r})
            from repro import EngineConfig, Session
            from repro.core.structure import path_structure
            from repro.workloads import instance_family

            queries = [path_structure(["T", "", "F"]),
                       path_structure(["T", "F"])]
            family = instance_family(12, 14, 26, seed=31)
            session = Session(
                EngineConfig(cache_dir={cache!r}, workers=1)
            )
            store = session.store
            orig = store.write_rows
            state = {{"rows": 0}}

            def killing_write(ns, rows):
                rows = list(rows)
                orig(ns, rows)
                if ns.startswith("ckpt:"):
                    state["rows"] += len(rows)
                    if state["rows"] >= 5:
                        os.kill(os.getpid(), signal.SIGKILL)

            store.write_rows = killing_write
            session.screen(queries, family)
            print("UNREACHABLE")
        """))
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL
        assert "UNREACHABLE" not in proc.stdout

        # The committed checkpoint rows survived the kill.
        with Session(EngineConfig(cache_dir=cache, workers=1)) as s:
            stats = s.store.stats()
            ckpt = [
                count
                for ns, count in stats.namespaces
                if ns.startswith("ckpt:")
            ]
            assert ckpt and sum(ckpt) >= 5
            got = s.screen(QUERIES, FAMILY)
            resumed_info = s.hom.cache_info()
            checked, dropped = s.store.verify()
        assert got == oracle_screen(QUERIES, FAMILY)
        assert dropped == 0 and checked >= 5
        # Resume did strictly less hom work than a cold serial screen:
        # at least the five checkpointed instances were skipped.
        full = len(QUERIES) * len(FAMILY)
        assert resumed_info.hits + resumed_info.misses <= full - 5
