"""Conformance suite for the outermost-surface contract.

One tri-state convention (documented in :mod:`repro.core.errors`)
across every outermost ``Session`` surface:

* scalar surfaces return a plain ``bool`` when settled and
  ``Answer.unknown(reason)`` when a governed budget trips — never an
  exception, never a silent ``False``;
* batch surfaces return lists whose settled entries are plain bools
  and whose unsettled entries are ``Answer`` UNKNOWNs, preserving the
  settled prefix;
* structured results expose the same tri-state through an ``answer``
  property (``ProbeResult.answer``, ``Evaluation.answer``);
* ungoverned sessions always return settled values.
"""

import pytest

from repro import Answer, EngineConfig, Session, path_structure, zoo
from repro.core.boundedness import ProbeResult, Verdict
from repro.core.errors import EngineError, ResourceExhausted
from repro.core.semiring import Evaluation
from repro.workloads.generators import instance_family


def _starved() -> Session:
    """A session whose budget trips almost immediately (fuel 1)."""
    return Session(EngineConfig(hom_fuel=1))


def _path_q():
    """Unlabeled 3-node R-path: never quick-rejects, so governed
    evaluation always reaches the search and burns fuel."""
    return path_structure(["", "", ""])


def _dense_instances(count=3):
    return instance_family(count, 30, 120, seed=3)


class TestScalarSurfaces:
    def test_certain_answer_ungoverned_is_plain_bool(self):
        s = Session()
        out = s.certain_answer(zoo.q2(), zoo.d2())
        assert isinstance(out, bool) and out is True

    def test_certain_answer_governed_returns_unknown(self):
        s = _starved()
        out = s.certain_answer(zoo.q2(), zoo.d2())
        assert isinstance(out, Answer) and not out.known
        assert out.reason == "fuel"
        with pytest.raises(EngineError):
            bool(out)  # UNKNOWN refuses to lean either way

    def test_evaluate_governed_never_raises(self):
        s = _starved()
        ev = s.evaluate(_path_q(), _dense_instances(1)[0], "count")
        assert isinstance(ev, Evaluation)
        assert ev.value is None and ev.reason == "fuel"
        assert isinstance(ev.answer, Answer) and not ev.answer.known

    def test_evaluate_ungoverned_always_settled(self):
        s = Session()
        ev = s.evaluate(zoo.q1(), zoo.d1())
        assert ev.known and ev.reason is None
        assert ev.answer.known


class TestBatchSurfaces:
    def test_evaluate_batch_governed_entries(self):
        s = _starved()
        instances = _dense_instances(4)
        out = s.evaluate_batch(_path_q(), instances)
        assert len(out) == len(instances)
        for entry in out:
            # Settled entries are plain bools; unsettled ones are
            # Answer UNKNOWNs — never a downgraded False.
            assert isinstance(entry, bool) or (
                isinstance(entry, Answer) and not entry.known
            )
        assert any(isinstance(e, Answer) for e in out)

    def test_evaluate_batch_ungoverned_all_bools(self):
        s = Session()
        instances = _dense_instances(4)
        out = s.evaluate_batch(_path_q(), instances)
        assert all(isinstance(e, bool) for e in out)

    def test_semiring_batch_entries_expose_answer(self):
        s = _starved()
        instances = _dense_instances(3)
        out = s.evaluate_batch(_path_q(), instances, semiring="count")
        assert all(isinstance(e, Evaluation) for e in out)
        assert any(e.reason for e in out)
        assert all(not e.answer.known for e in out if e.reason)

    def test_ucq_certain_answers_governed_entries(self):
        s = _starved()
        out = s.ucq_certain_answers([_path_q()], _dense_instances(3))
        assert len(out) == 3
        for entry in out:
            assert isinstance(entry, bool) or (
                isinstance(entry, Answer) and not entry.known
            )
        assert any(isinstance(e, Answer) for e in out)


class TestStructuredResults:
    def test_probe_result_answer_mapping(self):
        bounded = ProbeResult(Verdict.BOUNDED, 1, 3, 4, ())
        assert bounded.answer == Answer.TRUE and bool(bounded.answer)
        unbounded = ProbeResult(
            Verdict.UNBOUNDED_EVIDENCE, None, 3, 4, ("s",)
        )
        assert unbounded.answer == Answer.FALSE
        shallow = ProbeResult(Verdict.INCONCLUSIVE, None, 1, 1, ("s",))
        assert not shallow.answer.known
        assert shallow.answer.reason == "probe-depth"
        starved = ProbeResult(
            Verdict.INCONCLUSIVE, None, 1, 0, (), reason="deadline"
        )
        assert starved.answer.reason == "deadline"

    def test_probe_answer_agrees_with_verdict_end_to_end(self):
        from repro.core.cq import OneCQ

        s = Session()
        probe = s.probe_boundedness(OneCQ.from_structure(zoo.q2()), 3)
        assert (probe.answer == Answer.TRUE) == (
            probe.verdict is Verdict.BOUNDED
        )

    def test_evaluation_answer_nonzero_semantics(self):
        s = Session()
        ev = s.evaluate(zoo.q1(), zoo.d1(), "count")
        assert ev.answer == (ev.value > 0)

    def test_inner_surfaces_still_raise(self):
        # The contract is about *outermost* methods: the structured
        # d-sirup evaluator is an inner surface and must keep raising,
        # so callers composing it can share one budget.
        s = _starved()
        with pytest.raises(ResourceExhausted):
            s.evaluate_dsirup(zoo.q2(), zoo.d2())
