"""Tests for the Theorem 7 / Corollary 8 / Theorem 11 classifiers."""

import pytest

from repro import zoo
from repro.core import StructureBuilder
from repro.core.structure import F, T
from repro.ditree import (
    Complexity,
    DitreeCQ,
    classify_disjoint,
    classify_plain,
    contact_models_admit_q,
    theorem7_applies,
    theorem11_trichotomy,
)


def tree(edges, labels):
    b = StructureBuilder()
    for node, labs in labels.items():
        b.add_node(node, *labs)
    for src, dst in edges:
        b.add_edge(src, dst)
    return b.build()


class TestTheorem7:
    def test_q3_case_i(self):
        applies, why = theorem7_applies(DitreeCQ.from_structure(zoo.q3()))
        assert applies
        assert "case (i)" in why

    def test_asymmetric_twin_free_case_ii(self):
        q = tree(
            [("y", "x"), ("y", "m"), ("m", "z")],
            {"x": [F], "y": [], "m": [], "z": [T]},
        )
        applies, why = theorem7_applies(DitreeCQ.from_structure(q))
        assert applies
        assert "case (ii)" in why

    def test_q4_not_covered(self):
        applies, why = theorem7_applies(DitreeCQ.from_structure(zoo.q4()))
        assert not applies

    def test_q5_not_covered_due_to_twins(self):
        # q5 is not quasi-symmetric but has twins: Theorem 7 is silent.
        applies, _ = theorem7_applies(DitreeCQ.from_structure(zoo.q5()))
        assert not applies

    def test_missing_solitary_nodes(self):
        q = tree([("r", "a")], {"r": [F], "a": []})
        applies, why = theorem7_applies(DitreeCQ.from_structure(q))
        assert not applies
        assert "solitary" in why


class TestTheorem11:
    def test_q3_nl(self):
        # q3 has two solitary Ts, so restrict to a comparable sub-case:
        # T -> T -> F is outside Thm 11; use T -> F instead.
        q = tree([("a", "b")], {"a": [T], "b": [F]})
        result = theorem11_trichotomy(DitreeCQ.from_structure(q))
        assert result.complexity is Complexity.NL

    def test_q4_l(self):
        result = theorem11_trichotomy(DitreeCQ.from_structure(zoo.q4()))
        assert result.complexity is Complexity.L

    def test_q5_fo(self):
        result = theorem11_trichotomy(DitreeCQ.from_structure(zoo.q5()))
        assert result.complexity is Complexity.AC0

    def test_asymmetric_twin_free_nl(self):
        q = tree(
            [("y", "x"), ("y", "m"), ("m", "z")],
            {"x": [F], "y": [], "m": [], "z": [T]},
        )
        result = theorem11_trichotomy(DitreeCQ.from_structure(q))
        assert result.complexity is Complexity.NL

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            theorem11_trichotomy(DitreeCQ.from_structure(zoo.q3()))

    def test_contact_models(self):
        admits_f, admits_t = contact_models_admit_q(
            DitreeCQ.from_structure(zoo.q5())
        )
        assert admits_f or admits_t
        admits_f4, admits_t4 = contact_models_admit_q(
            DitreeCQ.from_structure(zoo.q4())
        )
        assert not admits_f4 and not admits_t4

    def test_trichotomy_matches_probe_on_q5(self):
        """Cross-check: Thm 11 FO verdict agrees with the Prop. 2 probe."""
        from repro.core import OneCQ, Verdict, probe_boundedness

        result = theorem11_trichotomy(DitreeCQ.from_structure(zoo.q5()))
        probe = probe_boundedness(OneCQ.from_structure(zoo.q5()), 5)
        assert (result.complexity is Complexity.AC0) == (
            probe.verdict is Verdict.BOUNDED
        )


class TestCorollary8:
    def test_twinful_fo(self):
        result = classify_disjoint(DitreeCQ.from_structure(zoo.q5()))
        assert result.complexity is Complexity.AC0

    def test_quasi_symmetric_l_hard(self):
        result = classify_disjoint(DitreeCQ.from_structure(zoo.q4()))
        assert result.complexity is Complexity.L_HARD

    def test_otherwise_nl_hard(self):
        result = classify_disjoint(DitreeCQ.from_structure(zoo.q3()))
        assert result.complexity is Complexity.NL_HARD

    def test_no_solitary_fo(self):
        q = tree([("r", "a")], {"r": [T], "a": []})
        result = classify_disjoint(DitreeCQ.from_structure(q))
        assert result.complexity is Complexity.AC0


class TestClassifyPlain:
    def test_no_solitary_f(self):
        q = tree([("r", "a")], {"r": [T], "a": [T]})
        result = classify_plain(DitreeCQ.from_structure(q))
        assert result.complexity is Complexity.AC0

    def test_one_one_dispatches_to_theorem11(self):
        result = classify_plain(DitreeCQ.from_structure(zoo.q4()))
        assert result.complexity is Complexity.L

    def test_q3_nl_hard_in_p(self):
        result = classify_plain(DitreeCQ.from_structure(zoo.q3()))
        assert result.complexity is Complexity.NL_HARD

    def test_non_minimal_warning(self):
        q = tree(
            [("r", "a"), ("r", "b"), ("a", "x"), ("b", "y")],
            {"r": [F], "a": [], "b": [], "x": [T], "y": [T]},
        )
        result = classify_plain(DitreeCQ.from_structure(q))
        assert any("minimal" in reason for reason in result.reasons)

    def test_describe(self):
        result = classify_plain(DitreeCQ.from_structure(zoo.q4()))
        assert "L-complete" in result.describe()
