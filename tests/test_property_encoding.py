"""Property-based tests on the 01-tree encoding layer (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atm.encoding import (
    ZeroOneTree,
    gamma_paths,
    gamma_tree,
    is_main_path,
    read_config_bits,
    suffix_decomposition,
)
from repro.atm.machine import Configuration, toy_scanner_machine
from repro.atm.params import EncodingParams, decode_configuration, encode_configuration


def scanner_params(cells=2):
    return EncodingParams.from_machine(toy_scanner_machine(), cells)


@st.composite
def configurations(draw, cells=2):
    machine = toy_scanner_machine()
    state = draw(st.sampled_from(machine.states))
    head = draw(st.integers(0, cells - 1))
    tape = tuple(
        draw(st.sampled_from(machine.alphabet)) for _ in range(cells)
    )
    return Configuration(state, head, tape)


class TestCodecProperties:
    @given(configurations(), st.integers(0, 1))
    @settings(max_examples=60)
    def test_roundtrip(self, config, parent):
        params = scanner_params()
        bits = encode_configuration(params, config, parent)
        assert decode_configuration(params, bits) == (config, parent)

    @given(configurations(cells=4), st.integers(0, 1))
    @settings(max_examples=40)
    def test_roundtrip_four_cells(self, config, parent):
        params = scanner_params(cells=4)
        bits = encode_configuration(params, config, parent)
        assert decode_configuration(params, bits) == (config, parent)

    @given(configurations(), st.integers(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_gamma_tree_stores_exactly_the_bits(self, config, parent):
        params = scanner_params()
        bits = encode_configuration(params, config, parent)
        tree = gamma_tree(params, bits)
        read = read_config_bits(params, tree, ())
        assert tuple(read[i] for i in range(params.seq_len)) == bits

    @given(configurations(), st.integers(0, 1))
    @settings(max_examples=30, deadline=None)
    def test_gamma_paths_unique_per_address(self, config, parent):
        params = scanner_params()
        paths = gamma_paths(params, encode_configuration(params, config, parent))
        assert len(paths) == params.seq_len
        assert len(set(paths)) == params.seq_len
        # All paths have the uniform gamma length 4(d+1).
        assert {len(p) for p in paths} == {4 * (params.d + 1)}


class TestSuffixProperties:
    @given(st.lists(st.integers(0, 1), min_size=0, max_size=24))
    @settings(max_examples=150)
    def test_decomposition_consistency(self, labels):
        labels = tuple(labels)
        shape = suffix_decomposition(labels)
        if shape is None:
            # No anchor: no 001* pattern anywhere.
            assert not any(
                labels[j : j + 3] == (0, 0, 1) and j + 4 <= len(labels)
                for j in range(len(labels))
            )
            return
        # The anchor really is a 001* pattern...
        assert labels[shape.anchor : shape.anchor + 3] == (0, 0, 1)
        assert shape.anchor + 4 <= len(labels)
        # ...and it is the last one.
        assert not any(
            labels[j : j + 3] == (0, 0, 1) and j + 4 <= len(labels)
            for j in range(shape.anchor + 1, len(labels))
        )
        # k accounts for everything after the anchor.
        assert shape.anchor + shape.k() == len(labels)

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=16))
    @settings(max_examples=100)
    def test_main_path_detection(self, labels):
        labels = tuple(labels)
        assert is_main_path(labels) == (labels[-4:-1] == (0, 0, 1))


class TestTreeProperties:
    @given(
        st.lists(
            st.lists(st.integers(0, 1), min_size=0, max_size=8),
            min_size=0,
            max_size=8,
        )
    )
    @settings(max_examples=80)
    def test_prefix_closure_invariant(self, raw_paths):
        tree = ZeroOneTree(map(tuple, raw_paths))
        for path in tree.paths:
            assert path[:-1] in tree or path == ()

    @given(
        st.lists(
            st.lists(st.integers(0, 1), min_size=1, max_size=8),
            min_size=1,
            max_size=8,
        ),
        st.integers(0, 8),
    )
    @settings(max_examples=80)
    def test_cut_bounds_depth(self, raw_paths, depth):
        tree = ZeroOneTree(map(tuple, raw_paths))
        cut = tree.cut(depth)
        assert cut.depth() <= depth
        assert cut.paths <= tree.paths

    @given(
        st.lists(
            st.lists(st.integers(0, 1), min_size=1, max_size=6),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=60)
    def test_subtree_roundtrip(self, raw_paths):
        tree = ZeroOneTree(map(tuple, raw_paths))
        for child in tree.children(()):
            sub = tree.subtree((child,))
            for path in sub.paths:
                assert (child,) + path in tree
