"""Tests for shapes, cactus construction and Proposition 1."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    A,
    F,
    OneCQ,
    StructureBuilder,
    T,
    build_cactus,
    chain_shape,
    full_cactus,
    full_shape,
    goal_certain_via_cactuses,
    goal_holds,
    has_homomorphism,
    initial_cactus,
    iter_cactuses,
    iter_shapes,
    path_structure,
    sirup_certain_via_cactuses,
    structurally_focused,
)
from repro.core.cactus import Shape
from repro.core.sirup import compile_programs
from repro import zoo


def q_ttf() -> OneCQ:
    """q3: T -> T -> F (span 2)."""
    return OneCQ.from_structure(path_structure(["T", "T", "F"]))


def q_tf() -> OneCQ:
    """T -> F (span 1)."""
    return OneCQ.from_structure(path_structure(["T", "F"]))


class TestShapes:
    def test_leaf_shape(self):
        s = Shape.leaf()
        assert s.depth == 0
        assert s.segment_count() == 1
        assert s.budded == ()

    def test_chain_shape(self):
        s = chain_shape([0, 0, 0])
        assert s.depth == 3
        assert s.segment_count() == 4

    def test_full_shape_span2(self):
        s = full_shape(2, 2)
        assert s.depth == 2
        assert s.segment_count() == 1 + 2 + 4

    def test_iter_shapes_counts_span1(self):
        # span 1: shapes of depth <= d are chains of length 0..d.
        assert len(list(iter_shapes(1, 0))) == 1
        assert len(list(iter_shapes(1, 1))) == 2
        assert len(list(iter_shapes(1, 3))) == 4

    def test_iter_shapes_counts_span2(self):
        # g(d) = (1 + g(d-1))^2, g(0) = 1 -> g(1) = 4, g(2) = 25.
        assert len(list(iter_shapes(2, 1))) == 4
        assert len(list(iter_shapes(2, 2))) == 25

    def test_span0_single_shape(self):
        assert len(list(iter_shapes(0, 5))) == 1

    def test_describe_distinguishes(self):
        shapes = {s.describe() for s in iter_shapes(2, 1)}
        assert len(shapes) == 4


class TestCactusConstruction:
    def test_initial_cactus_is_query(self):
        cq = q_tf()
        c = initial_cactus(cq)
        assert c.depth == 0
        assert len(c.segments) == 1
        assert has_homomorphism(cq.query, c.structure)
        assert has_homomorphism(c.structure, cq.query)

    def test_root_focus_is_solitary_f(self):
        c = initial_cactus(q_tf())
        assert c.structure.has_label(c.root_focus, F)
        assert not c.structure.has_label(c.root_focus, T)

    def test_bud_glues_a_node(self):
        cq = q_tf()
        c = build_cactus(cq, chain_shape([0]))
        assert c.depth == 1
        assert len(c.segments) == 2
        glue = c.segment_focus(1)
        assert c.structure.has_label(glue, A)
        assert not c.structure.has_label(glue, T)
        assert not c.structure.has_label(glue, F)

    def test_chain_cactus_structure(self):
        cq = q_tf()
        c = build_cactus(cq, chain_shape([0, 0]))
        # T -> A -> A -> F chain: 4 nodes.
        assert len(c.structure) == 4
        assert len(c.structure.nodes_with_label(A)) == 2
        assert len(c.structure.nodes_with_label(T)) == 1
        assert len(c.structure.nodes_with_label(F)) == 1

    def test_full_cactus_span2(self):
        cq = q_ttf()
        c = full_cactus(cq, 2)
        assert len(c.segments) == 7
        assert c.depth == 2

    def test_unbudded_ts_stay(self):
        cq = q_ttf()
        c = build_cactus(cq, Shape.make({0: Shape.leaf()}))
        # Root budded index 0 only; index 1's T remains in the root.
        root_map = c.segments[0].var_map
        t1 = root_map[cq.solitary_ts[1]]
        assert c.structure.has_label(t1, T)

    def test_skeleton_edges(self):
        cq = q_ttf()
        c = build_cactus(cq, Shape.make({0: Shape.leaf(), 1: Shape.leaf()}))
        edges = c.skeleton_edges()
        assert len(edges) == 2
        assert {e[2] for e in edges} == {0, 1}

    def test_leaf_segments(self):
        cq = q_tf()
        c = build_cactus(cq, chain_shape([0, 0]))
        assert c.leaf_segments() == [2]

    def test_sigma_structure_relabels_root(self):
        cq = q_tf()
        c = initial_cactus(cq)
        sigma = c.sigma_structure()
        assert sigma.has_label(c.root_focus, A)
        assert not sigma.has_label(c.root_focus, F)

    def test_iter_cactuses_no_duplicates(self):
        cq = q_ttf()
        seen = set()
        for c in iter_cactuses(cq, 2):
            key = c.shape.describe()
            assert key not in seen
            seen.add(key)

    def test_max_count_truncates(self):
        cq = q_ttf()
        assert len(list(iter_cactuses(cq, 3, max_count=10))) == 10

    def test_describe(self):
        c = full_cactus(q_tf(), 2)
        assert "depth=2" in c.describe()


class TestD2IsACactus:
    def test_d2_matches_chain_cactus_of_q2(self):
        """Example 3: D2 is the cactus of q2 obtained by budding twice."""
        d2 = zoo.d2()
        assert len(d2.nodes_with_label(A)) == 2
        assert len(d2.nodes_with_label(F)) == 1
        # Budding twice from a 3-node query adds 2 nodes per bud.
        assert len(d2) == 7


class TestProposition1:
    def test_goal_via_cactuses_matches_datalog(self):
        cq = q_ttf()
        compiled = compile_programs(cq)
        instances = [
            path_structure(["T", "T", "F"], prefix="d"),
            path_structure(["T", "A", "F"], prefix="d"),
            path_structure(["T", "A", "A", "F"], prefix="d"),
            path_structure(["A", "A", "F"], prefix="d"),
            path_structure(["T", "F"], prefix="d"),
        ]
        for data in instances:
            via_cactus = goal_certain_via_cactuses(cq, data, max_depth=3)
            via_datalog = goal_holds(compiled.pi, data)
            assert via_cactus == via_datalog, data.describe()

    def test_sirup_via_cactuses_matches_datalog(self):
        from repro.core.datalog import certain_answers

        cq = q_tf()
        compiled = compile_programs(cq)
        data = path_structure(["T", "A", "A", "F"], prefix="d")
        answers = certain_answers(compiled.sigma, data, "P")
        for node in data.nodes:
            assert sirup_certain_via_cactuses(
                cq, data, node, max_depth=4
            ) == (node in answers)

    def test_t_node_always_p(self):
        cq = q_tf()
        data = path_structure(["T"], prefix="d")
        assert sirup_certain_via_cactuses(cq, data, "d0", 2)


class TestFocusedness:
    def test_q5_structurally_focusable_query_from_thm3_style(self):
        b = StructureBuilder()
        b.add_node("f", F)
        b.add_node("t", T)
        b.add_node("w")
        b.add_node("twin", F, T)
        b.add_edge("f", "w")
        b.add_edge("w", "t")
        b.add_edge("w", "twin")
        cq = OneCQ.from_structure(b.build())
        assert structurally_focused(cq)

    def test_twin_with_successor_not_structurally_focused(self):
        b = StructureBuilder()
        b.add_node("f", F)
        b.add_node("t", T)
        b.add_node("twin", F, T)
        b.add_edge("f", "t")
        b.add_edge("twin", "t")
        cq = OneCQ.from_structure(b.build())
        assert not structurally_focused(cq)


class TestCactusProperties:
    @given(st.lists(st.integers(0, 1), min_size=0, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_chain_cactus_size_linear(self, indices):
        cq = q_ttf()
        indices = [i % cq.span for i in indices]
        c = build_cactus(cq, chain_shape(indices))
        assert c.depth == len(indices)
        # Each bud glues one node and adds |q| - 1 fresh ones.
        assert len(c.structure) == 3 + 2 * len(indices)

    @given(st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_query_always_maps_into_sigma_completion(self, depth):
        """Any cactus admits a hom from q after relabelling all A to T
        (the 'all-true' completion satisfies the goal)."""
        cq = q_tf()
        c = full_cactus(cq, depth)
        completed = c.structure
        for node in completed.nodes_with_label(A):
            completed = completed.relabel_node(node, add=[T])
        assert has_homomorphism(cq.query, completed)
